//! The discrete-event engine with threads-as-actors.
//!
//! Actor (rank) code runs on ordinary OS threads and *blocks* in
//! communication calls, exactly like an MPI program. Virtual time advances
//! only inside the engine: the event loop pops the earliest event **only when
//! every registered actor is parked**, which makes the simulation a
//! conservative discrete-event simulation regardless of how the OS schedules
//! the threads.
//!
//! # Determinism
//!
//! Event ordering is a total order on [`EventKey`] `(time, class, origin,
//! seq)`. Actor-posted events carry the actor's id and a per-actor sequence
//! number; engine-posted events carry [`ENGINE_ORIGIN`] and an engine
//! counter. Because actors may only schedule events at or after their own
//! local clock, and the engine only advances when all actors are parked, the
//! popped sequence — and therefore every virtual timestamp — is identical
//! across runs and independent of thread scheduling.
//!
//! # Lock ordering
//!
//! `Engine`'s core mutex and each [`ParkCell`]'s mutex are never held
//! simultaneously. Higher layers (simmpi) take their own state lock *before*
//! calling into the engine; engine callbacks run with the core lock
//! released.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::flow::{FlowId, FlowNet, FlowSpec, ResourceId, ResourceKind, ResourceStats};
use crate::time::{SimDur, SimTime};
use crate::trace::{Trace, TraceEdge, TraceSpan};

/// Origin id used for events scheduled by the engine itself (flow
/// completions, timer chains created inside callbacks).
pub const ENGINE_ORIGIN: u32 = u32::MAX;

/// Event class for flow-completion events (sorts after same-time actor
/// events so that, e.g., a wake posted "at" a flow's completion instant is
/// handled deterministically).
pub const CLASS_FLOW: u8 = 200;

/// A callback run by the event loop at its scheduled virtual time, with the
/// core lock released.
pub type Action = Box<dyn FnOnce(&Engine) + Send>;

/// Total ordering key for events: `(time, class, origin, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Virtual time the event fires.
    pub time: SimTime,
    /// Secondary ordering class; lower classes fire first at equal times.
    pub class: u8,
    /// Posting actor (or [`ENGINE_ORIGIN`]).
    pub origin: u32,
    /// Per-origin monotonic sequence number.
    pub seq: u64,
}

enum Slot {
    Call(Action),
    FlowDone(FlowId),
}

struct FlowMeta {
    key: EventKey,
    on_complete: Option<Action>,
    /// When the flow started, for queueing-delay accounting.
    started: SimTime,
    /// Seconds the flow would take at its full per-flow cap with no
    /// contention; the excess of actual over this is queueing delay.
    ideal_secs: f64,
}

/// Snapshot of one resource's registration and accumulated utilization.
#[derive(Debug, Clone)]
pub struct ResourceEntry {
    /// What the resource models.
    pub kind: ResourceKind,
    /// Registered capacity in bytes/second.
    pub capacity: f64,
    /// Busy/overlap time integrals, bytes carried, concurrency high-water.
    pub stats: ResourceStats,
}

/// Snapshot of network-level accounting, taken via [`Engine::net_stats`].
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// All registered resources, in registration order.
    pub resources: Vec<ResourceEntry>,
    /// Flows that ran to completion.
    pub completed_flows: u64,
    /// Sum over completed flows of (actual duration − contention-free
    /// duration at the flow's own cap), in seconds.
    pub total_queue_delay_secs: f64,
    /// Largest single-flow queueing delay, in seconds.
    pub max_queue_delay_secs: f64,
}

/// How a parked actor was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// Normal wake; the actor's clock becomes the wake time.
    Normal,
    /// The simulation deadlocked: no runnable actor and no pending event.
    Deadlock,
}

#[derive(Default)]
struct CellState {
    pending: Option<SimTime>,
    deadlock: bool,
}

/// Per-actor parking spot. An actor parks on its cell inside blocking
/// calls; event callbacks release it via [`Engine::wake`].
pub struct ParkCell {
    state: Mutex<CellState>,
    cv: Condvar,
}

impl Default for ParkCell {
    fn default() -> Self {
        Self::new()
    }
}

impl ParkCell {
    /// Fresh, unarmed cell.
    pub fn new() -> ParkCell {
        ParkCell {
            state: Mutex::new(CellState::default()),
            cv: Condvar::new(),
        }
    }

    /// Block the calling thread until woken; returns the wake time.
    /// Must be preceded by [`Engine::park_begin`].
    fn wait(&self) -> (SimTime, WakeKind) {
        let mut st = self.state.lock();
        loop {
            if st.deadlock {
                return (SimTime::ZERO, WakeKind::Deadlock);
            }
            if let Some(t) = st.pending.take() {
                return (t, WakeKind::Normal);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Engine-free wake: deposit a pending wake at `t` (repeated wakes merge
    /// to the latest time) and notify any parked thread. For wall-clock
    /// runtimes that reuse the cell as a plain parking spot without the
    /// virtual-time engine's runnable bookkeeping. Never mix the `_direct`
    /// methods with [`Engine::park`]/[`Engine::wake`] on the same cell.
    pub fn wake_direct(&self, t: SimTime) {
        let mut st = self.state.lock();
        st.pending = Some(st.pending.map_or(t, |p| p.max(t)));
        drop(st);
        self.cv.notify_all();
    }

    /// Engine-free park: block until a pending wake is deposited, returning
    /// the wake time.
    pub fn park_direct(&self) -> SimTime {
        let mut st = self.state.lock();
        loop {
            if let Some(t) = st.pending.take() {
                return t;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Engine-free park with a timeout: block until a pending wake arrives
    /// or `timeout` elapses. Returns the wake time, or `None` on timeout —
    /// wall-clock runtimes use the timeout to poll an abort flag so a real
    /// deadlock does not hang the process forever.
    pub fn park_timeout_direct(&self, timeout: std::time::Duration) -> Option<SimTime> {
        let mut st = self.state.lock();
        loop {
            if let Some(t) = st.pending.take() {
                return Some(t);
            }
            if self.cv.wait_for(&mut st, timeout).timed_out() {
                return st.pending.take();
            }
        }
    }

    /// Engine-free: consume a pending wake without sleeping, if one exists.
    pub fn take_pending_direct(&self) -> Option<SimTime> {
        self.state.lock().pending.take()
    }
}

struct Core {
    now: SimTime,
    queue: BTreeMap<EventKey, Slot>,
    runnable: usize,
    live: usize,
    engine_seq: u64,
    flows: FlowNet,
    flow_meta: BTreeMap<FlowId, FlowMeta>,
    flows_settled_at: SimTime,
    actors: BTreeMap<u32, Arc<ParkCell>>,
    trace: Option<Trace>,
    completed_flows: u64,
    total_queue_delay_secs: f64,
    max_queue_delay_secs: f64,
    deadlocked: bool,
    /// Actor ids that were parked when deadlock was declared.
    deadlock_actors: Vec<u32>,
    stopped: bool,
}

/// The virtual-time discrete-event engine. Shared by reference between the
/// event-loop thread and all actor threads.
pub struct Engine {
    core: Mutex<Core>,
    cv: Condvar,
}

impl Engine {
    /// New engine at virtual time zero with no resources or actors.
    pub fn new() -> Engine {
        Engine {
            core: Mutex::new(Core {
                now: SimTime::ZERO,
                queue: BTreeMap::new(),
                runnable: 0,
                live: 0,
                engine_seq: 0,
                flows: FlowNet::new(),
                flow_meta: BTreeMap::new(),
                flows_settled_at: SimTime::ZERO,
                actors: BTreeMap::new(),
                trace: None,
                completed_flows: 0,
                total_queue_delay_secs: 0.0,
                max_queue_delay_secs: 0.0,
                deadlocked: false,
                deadlock_actors: Vec::new(),
                stopped: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enable span tracing (for Fig.-6-style timelines).
    pub fn enable_trace(&self) {
        self.core.lock().trace = Some(Trace::new());
    }

    /// Record a span if tracing is enabled.
    pub fn record_span(&self, span: TraceSpan) {
        if let Some(t) = self.core.lock().trace.as_mut() {
            t.push(span);
        }
    }

    /// Record a happens-before edge if tracing is enabled.
    pub fn record_edge(&self, edge: TraceEdge) {
        if let Some(t) = self.core.lock().trace.as_mut() {
            t.push_edge(edge);
        }
    }

    /// Take the accumulated trace, if tracing was enabled.
    pub fn take_trace(&self) -> Option<Trace> {
        self.core.lock().trace.take()
    }

    /// Register a network resource (must happen before flows use it).
    pub fn add_resource(&self, capacity: f64) -> ResourceId {
        self.core.lock().flows.add_resource(capacity)
    }

    /// Register a network resource labeled with what it models, for
    /// utilization accounting (see [`Engine::net_stats`]).
    pub fn add_resource_kind(&self, capacity: f64, kind: ResourceKind) -> ResourceId {
        self.core.lock().flows.add_resource_kind(capacity, kind)
    }

    /// Snapshot per-resource utilization and flow-level queueing-delay
    /// accounting. Utilization integrals are settled up to the engine's
    /// current virtual time before the snapshot is taken.
    pub fn net_stats(&self) -> NetStats {
        let mut core = self.core.lock();
        let now = core.now;
        core.settle_flows(now);
        NetStats {
            resources: core
                .flows
                .resources()
                .map(|(_, kind, capacity, stats)| ResourceEntry {
                    kind,
                    capacity,
                    stats,
                })
                .collect(),
            completed_flows: core.completed_flows,
            total_queue_delay_secs: core.total_queue_delay_secs,
            max_queue_delay_secs: core.max_queue_delay_secs,
        }
    }

    /// Number of trace spans that were clamped on insertion (end before
    /// start). Zero when tracing is off. See [`Trace::clamped`].
    pub fn clamped_spans(&self) -> usize {
        self.core.lock().trace.as_ref().map_or(0, Trace::clamped)
    }

    /// Current virtual time of the event loop. Actor threads should use
    /// their own local clocks; this is primarily for event callbacks.
    pub fn now(&self) -> SimTime {
        self.core.lock().now
    }

    /// Whether the run ended in deadlock.
    pub fn deadlocked(&self) -> bool {
        self.core.lock().deadlocked
    }

    /// Actor ids that were parked when deadlock was declared (empty if the
    /// run did not deadlock). Higher layers use this to build wait-for
    /// diagnoses.
    pub fn deadlocked_actors(&self) -> Vec<u32> {
        self.core.lock().deadlock_actors.clone()
    }

    /// Register an actor and its park cell. The actor starts runnable.
    pub fn register_actor(&self, id: u32, cell: Arc<ParkCell>) {
        let mut core = self.core.lock();
        assert!(
            core.actors.insert(id, cell).is_none(),
            "actor {id} registered twice"
        );
        core.live += 1;
        core.runnable += 1;
    }

    /// Mark an actor finished (called from the actor thread, including on
    /// unwind). The actor must currently be runnable.
    // An unknown id here is engine-state corruption; crashing is correct.
    #[allow(clippy::expect_used)]
    pub fn actor_finished(&self, id: u32) {
        let mut core = self.core.lock();
        core.actors.remove(&id).expect("finishing unknown actor");
        core.live -= 1;
        core.runnable -= 1;
        if core.runnable == 0 {
            self.cv.notify_all();
        }
    }

    /// Schedule an action at an explicit key. Panics on key collision —
    /// callers must use unique per-origin sequence numbers.
    pub fn schedule(&self, key: EventKey, action: Action) {
        let mut core = self.core.lock();
        assert!(!core.stopped, "scheduling after the simulation has stopped");
        let prev = core.queue.insert(key, Slot::Call(action));
        assert!(prev.is_none(), "event key collision: {key:?}");
    }

    /// Schedule an action with an engine-assigned sequence number.
    pub fn schedule_engine(&self, time: SimTime, class: u8, action: Action) -> EventKey {
        let mut core = self.core.lock();
        assert!(!core.stopped, "scheduling after stop");
        let key = EventKey {
            time,
            class,
            origin: ENGINE_ORIGIN,
            seq: core.engine_seq,
        };
        core.engine_seq += 1;
        let prev = core.queue.insert(key, Slot::Call(action));
        debug_assert!(prev.is_none());
        key
    }

    /// Cancel a previously scheduled action. Returns it if it had not fired.
    pub fn cancel(&self, key: EventKey) -> Option<Action> {
        match self.core.lock().queue.remove(&key) {
            Some(Slot::Call(a)) => Some(a),
            Some(Slot::FlowDone(_)) => panic!("cannot cancel a flow event"),
            None => None,
        }
    }

    /// Start a bulk transfer. Must be called from an event callback (so that
    /// the flow starts exactly at the callback's virtual time);
    /// `on_complete` runs when the last byte arrives.
    ///
    /// Returns the flow id (useful only for diagnostics).
    pub fn start_flow(
        &self,
        resources: Vec<ResourceId>,
        cap: f64,
        bytes: f64,
        on_complete: Action,
    ) -> FlowId {
        let mut core = self.core.lock();
        assert!(!core.stopped, "starting a flow after stop");
        let now = core.now;
        core.settle_flows(now);
        let id = core.flows.add(FlowSpec {
            resources,
            cap,
            bytes,
        });
        let seq = core.engine_seq;
        core.engine_seq += 1;
        core.flow_meta.insert(
            id,
            FlowMeta {
                // Placeholder; fixed up by reschedule_flows below.
                key: EventKey {
                    time: now,
                    class: CLASS_FLOW,
                    origin: ENGINE_ORIGIN,
                    seq,
                },
                on_complete: Some(on_complete),
                started: now,
                ideal_secs: if cap > 0.0 { bytes / cap } else { 0.0 },
            },
        );
        core.queue.insert(
            EventKey {
                time: now,
                class: CLASS_FLOW,
                origin: ENGINE_ORIGIN,
                seq,
            },
            Slot::FlowDone(id),
        );
        core.reschedule_flows();
        id
    }

    /// Release a parked actor at virtual time `t`. May be called before the
    /// actor has actually gone to sleep (the wake is then consumed
    /// immediately); repeated wakes merge to the latest time.
    pub fn wake(&self, cell: &ParkCell, t: SimTime) {
        let mut st = cell.state.lock();
        let was_pending = st.pending.is_some();
        st.pending = Some(st.pending.map_or(t, |p| p.max(t)));
        drop(st);
        if !was_pending {
            self.core.lock().runnable += 1;
        }
        cell.cv.notify_all();
    }

    /// Consume a pending wake on `cell` without sleeping, decrementing the
    /// runnable count that the wake added. Waiters that find their condition
    /// satisfied *without* parking must call this before returning, or the
    /// engine would believe an extra actor is runnable forever.
    pub fn consume_pending(&self, cell: &ParkCell) -> Option<SimTime> {
        let t = cell.state.lock().pending.take();
        if t.is_some() {
            let mut core = self.core.lock();
            core.runnable -= 1;
            if core.runnable == 0 {
                self.cv.notify_all();
            }
        }
        t
    }

    /// Declare the calling actor blocked, then sleep on `cell` until woken.
    /// Returns the wake time; panics with a diagnostic if the simulation
    /// deadlocked.
    pub fn park(&self, cell: &ParkCell) -> SimTime {
        {
            let mut core = self.core.lock();
            core.runnable -= 1;
            if core.runnable == 0 {
                self.cv.notify_all();
            }
        }
        match cell.wait() {
            (t, WakeKind::Normal) => t,
            (_, WakeKind::Deadlock) => {
                // Restore the runnable count so that the unwinding actor's
                // `actor_finished` (run from a drop guard) doesn't underflow.
                self.core.lock().runnable += 1;
                panic!(
                    "simulation deadlock: every rank is blocked and no event is pending \
                     (mismatched send/recv or collective call order?)"
                )
            }
        }
    }

    /// Run the event loop until all actors have finished (or deadlock).
    /// Typically run on the caller's thread while actor threads execute.
    // The `expect`s below assert queue/flow-table agreement — invariants
    // whose violation means the engine itself is broken, not user error.
    #[allow(clippy::expect_used)]
    pub fn run_loop(&self) {
        loop {
            let work: Action = {
                let mut core = self.core.lock();
                loop {
                    if core.stopped {
                        return;
                    }
                    if core.runnable > 0 {
                        self.cv.wait(&mut core);
                        continue;
                    }
                    if core.live == 0 {
                        core.stopped = true;
                        return;
                    }
                    if core.queue.is_empty() {
                        // Deadlock: release everyone with a diagnostic.
                        core.deadlocked = true;
                        core.deadlock_actors = core.actors.keys().copied().collect();
                        core.stopped = true;
                        let cells: Vec<Arc<ParkCell>> = core.actors.values().cloned().collect();
                        drop(core);
                        for cell in cells {
                            let mut st = cell.state.lock();
                            st.deadlock = true;
                            cell.cv.notify_all();
                        }
                        return;
                    }
                    let (key, slot) = core.queue.pop_first().expect("queue non-empty");
                    debug_assert!(key.time >= core.now, "event in the past: {key:?}");
                    core.now = key.time;
                    match slot {
                        Slot::Call(a) => break a,
                        Slot::FlowDone(id) => {
                            let now = core.now;
                            core.settle_flows(now);
                            let mut meta = core.flow_meta.remove(&id).expect("flow meta missing");
                            core.flows.remove(id);
                            core.reschedule_flows();
                            let actual = now.saturating_since(meta.started).as_secs_f64();
                            let delay = (actual - meta.ideal_secs).max(0.0);
                            core.completed_flows += 1;
                            core.total_queue_delay_secs += delay;
                            core.max_queue_delay_secs = core.max_queue_delay_secs.max(delay);
                            let cb = meta.on_complete.take().expect("flow callback missing");
                            break cb;
                        }
                    }
                }
            };
            work(self);
        }
    }

    /// Number of flows currently in the network (diagnostics).
    pub fn active_flows(&self) -> usize {
        self.core.lock().flows.num_flows()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Core {
    fn settle_flows(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.flows_settled_at);
        if dt > SimDur::ZERO {
            self.flows.progress(dt.as_secs_f64());
        }
        self.flows_settled_at = now;
    }

    /// Recompute completion events after any change to the flow set.
    // Every active flow has a meta entry and a queued completion event by
    // construction; a miss is engine-state corruption.
    #[allow(clippy::expect_used)]
    fn reschedule_flows(&mut self) {
        let now = self.flows_settled_at;
        let ids: Vec<FlowId> = self.flows.flow_ids().collect();
        for id in ids {
            let eta = self.flows.eta_secs(id);
            assert!(
                eta.is_finite(),
                "flow {id:?} has infinite ETA (zero rate with bytes remaining)"
            );
            let t = now + SimDur::from_secs_f64(eta);
            let meta = self.flow_meta.get_mut(&id).expect("meta for active flow");
            if meta.key.time != t {
                let slot = self
                    .queue
                    .remove(&meta.key)
                    .expect("flow completion event missing");
                debug_assert!(matches!(slot, Slot::FlowDone(_)));
                meta.key.time = t;
                let prev = self.queue.insert(meta.key, slot);
                debug_assert!(prev.is_none(), "flow key collision");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    /// Drive a single-actor simulation: the actor body gets (engine, cell).
    fn run_one_actor<F>(engine: Arc<Engine>, body: F)
    where
        F: FnOnce(&Engine, &ParkCell) + Send + 'static,
    {
        let cell = Arc::new(ParkCell::new());
        engine.register_actor(0, cell.clone());
        let eng2 = engine.clone();
        let t = thread::spawn(move || {
            body(&eng2, &cell);
            eng2.actor_finished(0);
        });
        engine.run_loop();
        t.join().unwrap();
    }

    #[test]
    fn timer_event_wakes_actor_at_scheduled_time() {
        let engine = Arc::new(Engine::new());
        let woke_at = Arc::new(AtomicU64::new(0));
        let woke_at2 = woke_at.clone();
        run_one_actor(engine, move |eng, _| {
            // Schedule a wake at t = 5us, then park.
            let cell = Arc::new(ParkCell::new());
            let cell_for_event = cell.clone();
            eng.schedule(
                EventKey {
                    time: SimTime(5_000),
                    class: 0,
                    origin: 0,
                    seq: 0,
                },
                Box::new(move |e| {
                    e.wake(&cell_for_event, SimTime(5_000));
                }),
            );
            let t = eng.park(&cell);
            woke_at2.store(t.as_nanos(), Ordering::SeqCst);
        });
        assert_eq!(woke_at.load(Ordering::SeqCst), 5_000);
    }

    #[test]
    fn events_fire_in_key_order() {
        let engine = Arc::new(Engine::new());
        let order = Arc::new(Mutex::new(Vec::<u32>::new()));
        let order2 = order.clone();
        run_one_actor(engine, move |eng, _| {
            let cell = Arc::new(ParkCell::new());
            for (i, t) in [(0u32, 9_000u64), (1, 3_000), (2, 3_000)] {
                let order3 = order2.clone();
                let cell2 = cell.clone();
                eng.schedule(
                    EventKey {
                        time: SimTime(t),
                        class: 0,
                        origin: 0,
                        seq: i as u64,
                    },
                    Box::new(move |e| {
                        order3.lock().push(i);
                        if i == 0 {
                            // Last event by time: release the actor.
                            e.wake(&cell2, SimTime(9_000));
                        }
                    }),
                );
            }
            eng.park(&cell);
        });
        // Same-time events (1, 2) fire in seq order, then the later one (0).
        assert_eq!(*order.lock(), vec![1, 2, 0]);
    }

    #[test]
    fn flow_completion_time_matches_bandwidth() {
        let engine = Arc::new(Engine::new());
        let nic = engine.add_resource(1e9); // 1 GB/s
        let done_at = Arc::new(AtomicU64::new(0));
        let done_at2 = done_at.clone();
        run_one_actor(engine, move |eng, _| {
            let cell = Arc::new(ParkCell::new());
            let cell2 = cell.clone();
            // Kick off the flow from an event so it starts at t=0 exactly.
            eng.schedule(
                EventKey {
                    time: SimTime(0),
                    class: 0,
                    origin: 0,
                    seq: 0,
                },
                Box::new(move |e| {
                    let cell3 = cell2.clone();
                    e.start_flow(
                        vec![nic],
                        1e9,
                        1_000_000.0, // 1 MB at 1 GB/s = 1 ms
                        Box::new(move |e2| {
                            e2.wake(&cell3, e2.now());
                        }),
                    );
                }),
            );
            let t = eng.park(&cell);
            done_at2.store(t.as_nanos(), Ordering::SeqCst);
        });
        let t = done_at.load(Ordering::SeqCst);
        assert!((t as i64 - 1_000_000).abs() < 10, "flow done at {t}ns");
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Two 1 MB flows on one 1 GB/s NIC started together: each runs at
        // 0.5 GB/s and finishes at 2 ms (fair sharing, work conservation).
        let engine = Arc::new(Engine::new());
        let nic = engine.add_resource(1e9);
        let done = Arc::new(Mutex::new(Vec::<u64>::new()));
        let done2 = done.clone();
        run_one_actor(engine, move |eng, _| {
            let cell = Arc::new(ParkCell::new());
            let cell2 = cell.clone();
            let done3 = done2.clone();
            eng.schedule(
                EventKey {
                    time: SimTime(0),
                    class: 0,
                    origin: 0,
                    seq: 0,
                },
                Box::new(move |e| {
                    let remaining = Arc::new(AtomicU64::new(2));
                    for _ in 0..2 {
                        let done4 = done3.clone();
                        let cell3 = cell2.clone();
                        let rem = remaining.clone();
                        e.start_flow(
                            vec![nic],
                            1e9,
                            1_000_000.0,
                            Box::new(move |e2| {
                                done4.lock().push(e2.now().as_nanos());
                                if rem.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    e2.wake(&cell3, e2.now());
                                }
                            }),
                        );
                    }
                }),
            );
            eng.park(&cell);
        });
        let times = done.lock().clone();
        assert_eq!(times.len(), 2);
        for t in times {
            assert!((t as i64 - 2_000_000).abs() < 10, "finished at {t}ns");
        }
    }

    #[test]
    fn deadlock_is_detected_and_panics_parked_actor() {
        let engine = Arc::new(Engine::new());
        let cell = Arc::new(ParkCell::new());
        engine.register_actor(0, cell.clone());
        let eng2 = engine.clone();
        let t = thread::spawn(move || {
            // Park with nothing scheduled: guaranteed deadlock.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng2.park(&cell);
            }));
            eng2.actor_finished(0);
            assert!(result.is_err(), "park should panic on deadlock");
        });
        engine.run_loop();
        t.join().unwrap();
        assert!(engine.deadlocked());
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        let engine = Arc::new(Engine::new());
        run_one_actor(engine, move |eng, _| {
            let cell = Arc::new(ParkCell::new());
            // Wake first (e.g. a request completed before the waiter looked).
            eng.wake(&cell, SimTime(42));
            let t = eng.park(&cell);
            assert_eq!(t.as_nanos(), 42);
        });
    }

    #[test]
    fn merged_wakes_keep_latest_time() {
        let engine = Arc::new(Engine::new());
        run_one_actor(engine, move |eng, _| {
            let cell = Arc::new(ParkCell::new());
            eng.wake(&cell, SimTime(10));
            eng.wake(&cell, SimTime(30));
            eng.wake(&cell, SimTime(20));
            assert_eq!(eng.park(&cell).as_nanos(), 30);
        });
    }
}
