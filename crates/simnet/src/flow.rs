//! Max–min fair flow-level network model.
//!
//! A *flow* is a bulk data transfer that consumes capacity on a set of
//! *resources* (NIC transmit/receive sides, intra-node memory channels,
//! fabric links, …) and is additionally limited by a per-flow rate cap (the
//! "single stream" bandwidth — the reason one MPI process cannot saturate a
//! NIC, which is the root motivation of the paper, §V-A / Fig. 3).
//!
//! Rates are assigned by progressive filling (max–min fairness): repeatedly
//! find the most-constrained bottleneck — either a resource whose fair share
//! is smallest or a flow whose own cap is below every share — fix the
//! affected flows at that rate, remove the consumed capacity, and continue.
//!
//! The allocator is deterministic: flows are iterated in `FlowId` order and
//! resources in index order, so equal inputs always produce equal rates.
//!
//! # Lazy settlement
//!
//! The model is designed for simulations with tens of thousands of mostly
//! independent flows, so nothing is done eagerly per time step:
//!
//! * [`FlowNet::progress`] is O(1): it only advances the model's clock.
//!   Remaining-byte counters are *settled* on demand (when a flow's rate
//!   changes, when it is removed, or when [`FlowNet::settle_all`] is called
//!   before reading statistics).
//! * [`FlowNet::add`] takes a fast path when every resource the new flow
//!   touches has spare capacity for the full per-flow cap: the flow simply
//!   runs at its cap and no other rate changes. Likewise [`FlowNet::remove`]
//!   skips recomputation when none of the flow's resources is saturated
//!   (removing a flow from an unsaturated resource cannot raise anyone
//!   else's max–min rate). Only contended events trigger a full progressive
//!   filling pass.
//! * Rate changes are recorded in a dirty set the caller drains with
//!   [`FlowNet::take_rate_changes`] to re-key completion events, instead of
//!   re-deriving every flow's ETA after every change.
//!
//! Per-resource busy/overlap integrals are maintained incrementally from
//! activity transition counts, so they are exact (not sampled) while still
//! being O(changes), not O(flows · steps).

use std::collections::{BTreeMap, HashMap};

/// Identifies a capacity-constrained resource (e.g. one NIC direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

/// What a resource models, for utilization accounting. Purely a label: the
/// allocator treats all resources identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Transmit side of the NIC of node `node`.
    NicTx(u32),
    /// Receive side of the NIC of node `node`.
    NicRx(u32),
    /// Intra-node memory channel of node `node`.
    Mem(u32),
    /// Per-rank CPU resource (e.g. the reduction-compute stream of `rank`).
    Cpu(u32),
    /// A fabric link (leaf uplink, spine trunk, dragonfly local/global
    /// connection, …). The payload is an opaque link index assigned by the
    /// topology builder.
    Link(u32),
    /// Unlabeled resource.
    Other,
}

impl ResourceKind {
    /// True for either direction of a NIC.
    pub fn is_nic(&self) -> bool {
        matches!(self, ResourceKind::NicTx(_) | ResourceKind::NicRx(_))
    }

    /// Stable display label, e.g. `"nic_tx/3"`.
    pub fn label(&self) -> String {
        match self {
            ResourceKind::NicTx(n) => format!("nic_tx/{n}"),
            ResourceKind::NicRx(n) => format!("nic_rx/{n}"),
            ResourceKind::Mem(n) => format!("mem/{n}"),
            ResourceKind::Cpu(r) => format!("cpu/{r}"),
            ResourceKind::Link(l) => format!("link/{l}"),
            ResourceKind::Other => "other".to_string(),
        }
    }
}

/// Utilization accounting for one resource, integrated over virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceStats {
    /// Seconds during which at least one flow was actively moving bytes
    /// through this resource.
    pub busy_secs: f64,
    /// Seconds during which at least two flows were concurrently moving
    /// bytes through this resource — the paper's "overlapped communication"
    /// condition.
    pub overlap2_secs: f64,
    /// Total bytes carried through this resource.
    pub bytes: f64,
    /// High-water mark of concurrently attached flows.
    pub max_concurrent: u32,
}

/// Identifies an active flow. Ids are assigned monotonically and never
/// reused, so `FlowId` order is creation order — part of the determinism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Description of a new flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Resources this flow consumes capacity on (typically source NIC tx and
    /// destination NIC rx, plus any fabric links on the route, or a node
    /// memory channel for intra-node flows). Duplicates are allowed and are
    /// counted once.
    pub resources: Vec<ResourceId>,
    /// Per-flow rate cap in bytes/second (single-stream bandwidth).
    pub cap: f64,
    /// Bytes to transfer.
    pub bytes: f64,
}

#[derive(Debug)]
struct Flow {
    /// Sorted, deduplicated.
    resources: Vec<ResourceId>,
    cap: f64,
    /// Bytes still to transfer as of `settled_at`.
    remaining: f64,
    /// Current max–min fair rate in bytes/second.
    rate: f64,
    /// Model time this flow's `remaining` was last brought up to date.
    settled_at: f64,
    /// Whether this flow currently counts toward its resources' busy /
    /// overlap integrals (rate > 0 and bytes remaining).
    active: bool,
}

#[derive(Debug)]
struct Res {
    capacity: f64,
    kind: ResourceKind,
    stats: ResourceStats,
    /// Flows currently attached (active or not).
    nflows: u32,
    /// Sum of attached flows' current rates.
    rate_sum: f64,
    /// Attached flows currently moving bytes.
    active: u32,
    /// Model time the busy/overlap integrals were last brought up to date.
    integrated_at: f64,
    /// Ids of the attached flows, kept sorted for deterministic traversal.
    /// Used to walk the flow↔resource sharing graph so contended
    /// recomputation can stay scoped to one connected component.
    attached: std::collections::BTreeSet<FlowId>,
}

/// The set of active flows plus the fixed resource capacities.
///
/// `FlowNet` keeps its own clock, advanced by the caller (the engine) via
/// [`FlowNet::progress`]; all per-flow byte accounting is lazy against that
/// clock (see the module docs).
#[derive(Debug, Default)]
pub struct FlowNet {
    res: Vec<Res>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    now: f64,
    /// Flows whose rate changed since the last `take_rate_changes`. May
    /// contain duplicates and ids that have since completed.
    dirty: Vec<FlowId>,
}

/// Relative tolerance when deciding whether a resource has room for one more
/// cap-rate flow (fast-path add) or is saturated (slow-path remove). Much
/// larger than the ~1e-13 relative drift incremental `rate_sum` updates can
/// accumulate, and much smaller than any physically meaningful share.
const SAT_EPS: f64 = 1e-9;

/// Bring one flow's `remaining` up to `now`, crediting moved bytes to its
/// resources. Free function so callers can split borrows of the flow map and
/// the resource table.
fn settle_flow(res: &mut [Res], f: &mut Flow, now: f64) {
    let dt = now - f.settled_at;
    if dt > 0.0 {
        let moved = (f.rate * dt).min(f.remaining);
        if moved > 0.0 {
            for r in &f.resources {
                res[r.0 as usize].stats.bytes += moved;
            }
        }
        f.remaining -= moved;
    }
    f.settled_at = now;
}

/// Bring one resource's busy/overlap integrals up to `now` at its current
/// activity level. Must be called *before* the activity count changes.
fn integrate_res(r: &mut Res, now: f64) {
    let dt = now - r.integrated_at;
    if dt > 0.0 {
        if r.active >= 1 {
            r.stats.busy_secs += dt;
        }
        if r.active >= 2 {
            r.stats.overlap2_secs += dt;
        }
    }
    r.integrated_at = now;
}

impl FlowNet {
    /// Create an empty network with no resources.
    pub fn new() -> FlowNet {
        FlowNet::default()
    }

    /// Register a resource with the given capacity (bytes/second) and return
    /// its id. Capacities are fixed for the lifetime of the network.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        self.add_resource_kind(capacity, ResourceKind::Other)
    }

    /// Register a resource labeled with what it models (NIC side, memory
    /// channel, CPU, fabric link). The label only affects utilization
    /// reporting.
    pub fn add_resource_kind(&mut self, capacity: f64, kind: ResourceKind) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId(self.res.len() as u32);
        self.res.push(Res {
            capacity,
            kind,
            stats: ResourceStats::default(),
            nflows: 0,
            rate_sum: 0.0,
            active: 0,
            integrated_at: self.now,
            attached: std::collections::BTreeSet::new(),
        });
        id
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.res.len()
    }

    /// Number of active flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Add a flow and assign its rate (recomputing other flows' rates only
    /// if the new flow contends with them). Returns the new flow's id.
    ///
    /// A zero-byte flow is legal; it will report an ETA of zero.
    pub fn add(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            spec.cap.is_finite() && spec.cap > 0.0,
            "flow cap must be positive and finite, got {}",
            spec.cap
        );
        assert!(
            spec.bytes.is_finite() && spec.bytes >= 0.0,
            "flow size must be non-negative, got {}",
            spec.bytes
        );
        let mut resources = spec.resources;
        resources.sort_unstable();
        resources.dedup();
        for r in &resources {
            assert!((r.0 as usize) < self.res.len(), "unknown resource {r:?}");
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let now = self.now;

        // Fast path: every touched resource has room for a full cap-rate
        // flow, so the new flow runs at its cap and nobody else changes.
        let fits = resources.iter().all(|r| {
            let res = &self.res[r.0 as usize];
            res.rate_sum + spec.cap <= res.capacity * (1.0 + SAT_EPS)
        });

        let mut flow = Flow {
            resources,
            cap: spec.cap,
            remaining: spec.bytes,
            rate: 0.0,
            settled_at: now,
            active: false,
        };
        for r in &flow.resources {
            let res = &mut self.res[r.0 as usize];
            res.nflows += 1;
            res.stats.max_concurrent = res.stats.max_concurrent.max(res.nflows);
            res.attached.insert(id);
        }
        if fits {
            flow.rate = spec.cap;
            flow.active = flow.remaining > 0.0;
            for r in &flow.resources {
                let res = &mut self.res[r.0 as usize];
                res.rate_sum += spec.cap;
                if flow.active {
                    integrate_res(res, now);
                    res.active += 1;
                }
            }
            self.dirty.push(id);
            self.flows.insert(id, flow);
        } else {
            let seeds = flow.resources.clone();
            self.flows.insert(id, flow);
            self.recompute_component(&seeds);
        }
        id
    }

    /// Remove a flow (complete or cancelled), recomputing other flows' rates
    /// only if the removed flow was crossing a saturated resource. Returns
    /// the bytes it still had outstanding.
    // Removing an id the table does not hold is caller-side corruption.
    #[allow(clippy::expect_used)]
    pub fn remove(&mut self, id: FlowId) -> f64 {
        let now = self.now;
        let mut flow = self.flows.remove(&id).expect("removing unknown flow");
        settle_flow(&mut self.res, &mut flow, now);
        // If none of the flow's resources is saturated, no other flow is
        // bottlenecked there, so removing this flow cannot raise anyone's
        // max–min rate: detach incrementally and skip the global pass.
        let saturated = flow.resources.iter().any(|r| {
            let res = &self.res[r.0 as usize];
            res.rate_sum >= res.capacity * (1.0 - SAT_EPS)
        });
        for r in &flow.resources {
            let res = &mut self.res[r.0 as usize];
            res.nflows -= 1;
            res.rate_sum -= flow.rate;
            if flow.active {
                integrate_res(res, now);
                res.active -= 1;
            }
            res.attached.remove(&id);
        }
        if saturated {
            self.recompute_component(&flow.resources);
        }
        flow.remaining
    }

    /// Advance the model clock by `dt_secs`. O(1): remaining-byte counters
    /// and utilization integrals are settled lazily (see the module docs).
    pub fn progress(&mut self, dt_secs: f64) {
        debug_assert!(dt_secs >= 0.0);
        self.now += dt_secs;
    }

    /// Settle every flow's remaining-byte counter and every resource's
    /// utilization integrals up to the current model time. Call before
    /// reading [`FlowNet::resource_stats`]-style aggregates for a snapshot
    /// that includes the interval since the last rate change.
    pub fn settle_all(&mut self) {
        let now = self.now;
        for f in self.flows.values_mut() {
            settle_flow(&mut self.res, f, now);
        }
        for r in &mut self.res {
            integrate_res(r, now);
        }
    }

    /// Drain the set of flows whose rate changed since the last call,
    /// deduplicated, in id order, restricted to flows still present. The
    /// caller uses this to re-key completion events after an add/remove.
    pub fn take_rate_changes(&mut self) -> Vec<FlowId> {
        let mut d = std::mem::take(&mut self.dirty);
        d.sort_unstable();
        d.dedup();
        d.retain(|id| self.flows.contains_key(id));
        d
    }

    /// Current rate of a flow in bytes/second.
    pub fn rate(&self, id: FlowId) -> f64 {
        self.flows[&id].rate
    }

    /// Bytes outstanding as of the current model time.
    pub fn remaining(&self, id: FlowId) -> f64 {
        let f = &self.flows[&id];
        let dt = (self.now - f.settled_at).max(0.0);
        (f.remaining - f.rate * dt).max(0.0)
    }

    /// Seconds from now until the flow finishes at its current rate
    /// (`f64::INFINITY` if its rate is zero and bytes remain; zero-byte
    /// flows finish immediately).
    pub fn eta_secs(&self, id: FlowId) -> f64 {
        let rem = self.remaining(id);
        let rate = self.flows[&id].rate;
        if rem <= 0.0 {
            0.0
        } else if rate <= 0.0 {
            f64::INFINITY
        } else {
            rem / rate
        }
    }

    /// Iterate over active flow ids in creation order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// The kind label a resource was registered with.
    pub fn resource_kind(&self, id: ResourceId) -> ResourceKind {
        self.res[id.0 as usize].kind
    }

    /// The fixed capacity a resource was registered with (bytes/second).
    pub fn resource_capacity(&self, id: ResourceId) -> f64 {
        self.res[id.0 as usize].capacity
    }

    /// Accumulated utilization of one resource, settled up to the current
    /// model time.
    pub fn resource_stats(&mut self, id: ResourceId) -> ResourceStats {
        self.settle_all();
        self.res[id.0 as usize].stats
    }

    /// Iterate `(id, kind, capacity, stats)` over all registered resources.
    /// Stats reflect the last settlement point; call
    /// [`FlowNet::settle_all`] first for an up-to-the-instant snapshot.
    pub fn resources(
        &self,
    ) -> impl Iterator<Item = (ResourceId, ResourceKind, f64, ResourceStats)> + '_ {
        self.res
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i as u32), r.kind, r.capacity, r.stats))
    }

    /// Progressive-filling max–min fair rate allocation, scoped to the
    /// connected component of the flow↔resource sharing graph reachable
    /// from `seeds`.
    ///
    /// Max–min rates decompose exactly across connected components: a flow
    /// that shares no resource (transitively) with a changed flow keeps its
    /// rate bit-for-bit, so only the affected component is settled and
    /// refilled. Within the component the pass is identical to a global
    /// progressive fill — flows are visited in `FlowId` order and resources
    /// in index order, so results are deterministic and equal to what a
    /// whole-network recomputation would assign. This is what keeps
    /// contended bursts (thousands of simultaneous collective messages)
    /// from costing Θ(total flows) per flow event.
    // Flow ids looked up during the pass come from the map's own key set.
    #[allow(clippy::expect_used)]
    fn recompute_component(&mut self, seeds: &[ResourceId]) {
        let now = self.now;

        // Breadth-first walk over resources ↔ attached flows.
        let mut touched: Vec<usize> = Vec::new();
        let mut res_seen = vec![false; self.res.len()];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp: std::collections::BTreeSet<FlowId> = std::collections::BTreeSet::new();
        for r in seeds {
            let r = r.0 as usize;
            if !res_seen[r] {
                res_seen[r] = true;
                stack.push(r);
            }
        }
        while let Some(r) = stack.pop() {
            touched.push(r);
            for &id in &self.res[r].attached {
                if comp.insert(id) {
                    for rr in &self.flows[&id].resources {
                        let rr = rr.0 as usize;
                        if !res_seen[rr] {
                            res_seen[rr] = true;
                            stack.push(rr);
                        }
                    }
                }
            }
        }
        touched.sort_unstable();

        for id in &comp {
            let f = self.flows.get_mut(id).expect("component flow present");
            settle_flow(&mut self.res, f, now);
        }

        // Dense scratch over only the component's resources, indexed by
        // slot; iteration is over the sorted `touched` list, so the pass is
        // deterministic.
        let mut slot_of: HashMap<u32, usize> = HashMap::with_capacity(touched.len());
        for (i, &r) in touched.iter().enumerate() {
            slot_of.insert(r as u32, i);
        }
        let mut rem_cap: Vec<f64> = touched.iter().map(|&r| self.res[r].capacity).collect();
        let mut count: Vec<usize> = vec![0; touched.len()];
        let mut unfixed: Vec<FlowId> = comp.iter().copied().collect();
        for id in &unfixed {
            for r in &self.flows[id].resources {
                count[slot_of[&r.0]] += 1;
            }
        }
        if unfixed.is_empty() {
            // Seeds can point at now-empty resources (last flow removed).
            for &r in &touched {
                self.res[r].rate_sum = 0.0;
            }
            return;
        }

        let mut assigned: Vec<(FlowId, f64)> = Vec::with_capacity(unfixed.len());
        while !unfixed.is_empty() {
            // Bottleneck share over resources that still carry unfixed flows.
            let mut share = f64::INFINITY;
            for i in 0..touched.len() {
                if count[i] > 0 {
                    share = share.min(rem_cap[i].max(0.0) / count[i] as f64);
                }
            }
            // A flow with no resources is limited only by its own cap.
            // This round's rate: the smaller of the bottleneck share and the
            // smallest unfixed per-flow cap.
            let min_cap = unfixed
                .iter()
                .map(|id| self.flows[id].cap)
                .fold(f64::INFINITY, f64::min);
            let level = share.min(min_cap);
            debug_assert!(level.is_finite(), "no constraint bound any flow");

            // Fix every flow that is pinned at this level: either its cap is
            // the binding constraint, or it crosses a bottleneck resource.
            let mut fixed_any = false;
            let mut still: Vec<FlowId> = Vec::with_capacity(unfixed.len());
            for id in unfixed.drain(..) {
                let flow = &self.flows[&id];
                let at_cap = flow.cap <= level + level * 1e-12;
                let at_bottleneck = flow.resources.iter().any(|r| {
                    let i = slot_of[&r.0];
                    count[i] > 0 && rem_cap[i].max(0.0) / count[i] as f64 <= level + level * 1e-12
                });
                if at_cap || at_bottleneck {
                    fixed_any = true;
                    for r in &flow.resources {
                        let i = slot_of[&r.0];
                        rem_cap[i] -= level;
                        count[i] -= 1;
                    }
                    assigned.push((id, level));
                } else {
                    still.push(id);
                }
            }
            unfixed = still;
            assert!(fixed_any, "max-min allocation failed to make progress");
        }

        for (id, rate) in assigned {
            let f = self.flows.get_mut(&id).expect("assigned flow present");
            if f.rate != rate {
                f.rate = rate;
                self.dirty.push(id);
            }
            let want = f.rate > 0.0 && f.remaining > 0.0;
            if want != f.active {
                f.active = want;
                for r in &f.resources {
                    let res = &mut self.res[r.0 as usize];
                    integrate_res(res, now);
                    if want {
                        res.active += 1;
                    } else {
                        res.active -= 1;
                    }
                }
            }
        }

        for &r in &touched {
            self.res[r].rate_sum = 0.0;
        }
        for id in &comp {
            let f = &self.flows[id];
            for r in &f.resources {
                self.res[r.0 as usize].rate_sum += f.rate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(resources: &[ResourceId], cap: f64, bytes: f64) -> FlowSpec {
        FlowSpec {
            resources: resources.to_vec(),
            cap,
            bytes,
        }
    }

    #[test]
    fn single_flow_capped_by_stream_cap() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let f = net.add(spec(&[nic], 9e9, 1e6));
        assert_eq!(net.rate(f), 9e9);
    }

    #[test]
    fn single_flow_capped_by_resource() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(5e9);
        let f = net.add(spec(&[nic], 9e9, 1e6));
        assert_eq!(net.rate(f), 5e9);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let a = net.add(spec(&[nic], 9e9, 1e6));
        let b = net.add(spec(&[nic], 9e9, 1e6));
        assert!((net.rate(a) - 6e9).abs() < 1.0);
        assert!((net.rate(b) - 6e9).abs() < 1.0);
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        // One flow capped at 2 GB/s on a 12 GB/s NIC; the other (cap 11)
        // should get the remaining 10 GB/s, not the naive 6.
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let slow = net.add(spec(&[nic], 2e9, 1e6));
        let fast = net.add(spec(&[nic], 11e9, 1e6));
        assert!((net.rate(slow) - 2e9).abs() < 1.0);
        assert!((net.rate(fast) - 10e9).abs() < 1e3);
    }

    #[test]
    fn multi_resource_bottleneck() {
        // tx capacity 12, rx capacity 4: flow crossing both is limited by rx.
        let mut net = FlowNet::new();
        let tx = net.add_resource(12e9);
        let rx = net.add_resource(4e9);
        let f = net.add(spec(&[tx, rx], 20e9, 1e6));
        assert!((net.rate(f) - 4e9).abs() < 1.0);
    }

    #[test]
    fn incast_shares_receiver() {
        // Four senders (distinct tx NICs) into one rx NIC of 12 GB/s:
        // each should get 3 GB/s.
        let mut net = FlowNet::new();
        let rx = net.add_resource(12e9);
        let mut flows = Vec::new();
        for _ in 0..4 {
            let tx = net.add_resource(12e9);
            flows.push(net.add(spec(&[tx, rx], 10e9, 1e6)));
        }
        for f in flows {
            assert!((net.rate(f) - 3e9).abs() < 1e3);
        }
    }

    #[test]
    fn progress_and_eta() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10.0); // 10 B/s for easy math
        let f = net.add(spec(&[nic], 100.0, 50.0));
        assert!((net.eta_secs(f) - 5.0).abs() < 1e-12);
        net.progress(2.0);
        assert!((net.remaining(f) - 30.0).abs() < 1e-12);
        assert!((net.eta_secs(f) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn removal_restores_capacity() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let a = net.add(spec(&[nic], 12e9, 1e6));
        let b = net.add(spec(&[nic], 12e9, 1e6));
        assert!((net.rate(a) - 6e9).abs() < 1.0);
        net.remove(b);
        assert!((net.rate(a) - 12e9).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_has_zero_eta() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let f = net.add(spec(&[nic], 12e9, 0.0));
        assert_eq!(net.eta_secs(f), 0.0);
    }

    #[test]
    fn duplicate_resources_counted_once() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10e9);
        let f = net.add(spec(&[nic, nic], 20e9, 1.0));
        assert!((net.rate(f) - 10e9).abs() < 1.0);
    }

    #[test]
    fn work_conservation_on_shared_resource() {
        // Sum of rates on the shared NIC must equal its capacity when demand
        // exceeds it.
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let flows: Vec<_> = (0..5).map(|_| net.add(spec(&[nic], 9e9, 1.0))).collect();
        let total: f64 = flows.iter().map(|&f| net.rate(f)).sum();
        assert!((total - 12e9).abs() < 1e3, "total {total}");
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut net = FlowNet::new();
        net.add(spec(&[ResourceId(7)], 1e9, 1.0));
    }

    #[test]
    fn resource_stats_accumulate_busy_and_overlap() {
        let mut net = FlowNet::new();
        let nic = net.add_resource_kind(10.0, ResourceKind::NicTx(0));
        let a = net.add(spec(&[nic], 100.0, 100.0));
        net.progress(2.0); // one active flow: busy only
        let b = net.add(spec(&[nic], 100.0, 100.0));
        net.progress(3.0); // two active flows: busy + overlap
        let s = net.resource_stats(nic);
        assert!((s.busy_secs - 5.0).abs() < 1e-12, "busy {}", s.busy_secs);
        assert!(
            (s.overlap2_secs - 3.0).abs() < 1e-12,
            "overlap {}",
            s.overlap2_secs
        );
        // 10 B/s for 2 s solo + 10 B/s aggregate for 3 s shared.
        assert!((s.bytes - 50.0).abs() < 1e-9, "bytes {}", s.bytes);
        assert_eq!(s.max_concurrent, 2);
        assert_eq!(net.resource_kind(nic), ResourceKind::NicTx(0));
        assert!(net.resource_kind(nic).is_nic());
        assert_eq!(net.resource_capacity(nic), 10.0);
        let _ = (a, b);
    }

    #[test]
    fn idle_resource_accumulates_nothing() {
        let mut net = FlowNet::new();
        let busy = net.add_resource(10.0);
        let idle = net.add_resource_kind(10.0, ResourceKind::Mem(1));
        net.add(spec(&[busy], 100.0, 100.0));
        net.progress(1.0);
        let s = net.resource_stats(idle);
        assert_eq!(s.busy_secs, 0.0);
        assert_eq!(s.bytes, 0.0);
        assert_eq!(s.max_concurrent, 0);
        assert_eq!(net.resources().count(), 2);
    }

    #[test]
    fn fast_path_add_leaves_other_rates_alone() {
        // Two flows on disjoint NICs, third on its own NIC: no rate of an
        // existing flow may appear in the dirty set when the add does not
        // contend.
        let mut net = FlowNet::new();
        let n0 = net.add_resource(10e9);
        let n1 = net.add_resource(10e9);
        let a = net.add(spec(&[n0], 5e9, 1e6));
        net.take_rate_changes();
        let b = net.add(spec(&[n1], 5e9, 1e6));
        assert_eq!(net.take_rate_changes(), vec![b]);
        assert_eq!(net.rate(a), 5e9);
        assert_eq!(net.rate(b), 5e9);
    }

    #[test]
    fn take_rate_changes_reports_contended_adds() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10e9);
        let a = net.add(spec(&[nic], 8e9, 1e6));
        net.take_rate_changes();
        let b = net.add(spec(&[nic], 8e9, 1e6));
        let changed = net.take_rate_changes();
        assert_eq!(changed, vec![a, b]);
        assert!((net.rate(a) - 5e9).abs() < 1.0);
        assert!((net.rate(b) - 5e9).abs() < 1.0);
        // Uncontended removal of `b` leaves... no: nic was saturated, so
        // removing b restores a to its cap and must mark it dirty.
        net.remove(b);
        assert_eq!(net.take_rate_changes(), vec![a]);
        assert!((net.rate(a) - 8e9).abs() < 1.0);
    }

    #[test]
    fn uncontended_removal_skips_recompute_and_dirty() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10e9);
        let a = net.add(spec(&[nic], 3e9, 1e6));
        let b = net.add(spec(&[nic], 3e9, 1e6));
        net.take_rate_changes();
        net.remove(b);
        assert!(net.take_rate_changes().is_empty());
        assert_eq!(net.rate(a), 3e9);
    }

    #[test]
    fn lazy_settlement_matches_eager_byte_accounting() {
        // Drive a small scenario with rate changes mid-flight and verify the
        // lazily settled remaining-bytes match hand-computed values.
        let mut net = FlowNet::new();
        let nic = net.add_resource(10.0);
        let a = net.add(spec(&[nic], 100.0, 100.0)); // rate 10
        net.progress(4.0); // a moved 40, 60 left
        let b = net.add(spec(&[nic], 100.0, 30.0)); // both now rate 5
        assert!((net.remaining(a) - 60.0).abs() < 1e-9);
        net.progress(2.0); // a: 50 left, b: 20 left
        assert!((net.remaining(a) - 50.0).abs() < 1e-9);
        assert!((net.remaining(b) - 20.0).abs() < 1e-9);
        net.progress(4.0); // b done exactly now (20 / 5)
        assert!(net.remaining(b).abs() < 1e-9);
        assert_eq!(net.eta_secs(b), 0.0);
        net.remove(b);
        // a back to rate 10 with 30 left.
        assert!((net.rate(a) - 10.0).abs() < 1e-9);
        assert!((net.remaining(a) - 30.0).abs() < 1e-9);
        assert!((net.eta_secs(a) - 3.0).abs() < 1e-9);
    }

    /// From-scratch max–min reference allocator, structured independently of
    /// the incremental implementation, for the randomized equivalence test.
    fn reference_rates(caps: &[f64], flows: &[(Vec<usize>, f64)]) -> Vec<f64> {
        let n = flows.len();
        let mut rate = vec![0.0f64; n];
        let mut fixed = vec![false; n];
        let mut rem = caps.to_vec();
        loop {
            let mut count = vec![0usize; caps.len()];
            for (i, (res, _)) in flows.iter().enumerate() {
                if !fixed[i] {
                    for &r in res {
                        count[r] += 1;
                    }
                }
            }
            if fixed.iter().all(|&f| f) {
                break;
            }
            let mut level = f64::INFINITY;
            for r in 0..caps.len() {
                if count[r] > 0 {
                    level = level.min(rem[r].max(0.0) / count[r] as f64);
                }
            }
            for (i, (_, cap)) in flows.iter().enumerate() {
                if !fixed[i] {
                    level = level.min(*cap);
                }
            }
            // Decide this round's pinned set against the round-start
            // rem/count snapshot, then apply the subtractions (mutating
            // `rem` mid-sweep with a stale `count` would falsely pin
            // late-checked flows).
            let pinned: Vec<usize> = (0..n)
                .filter(|&i| !fixed[i])
                .filter(|&i| {
                    let (res, cap) = &flows[i];
                    *cap <= level * (1.0 + 1e-9)
                        || res.iter().any(|&r| {
                            count[r] > 0
                                && rem[r].max(0.0) / count[r] as f64 <= level * (1.0 + 1e-9)
                        })
                })
                .collect();
            assert!(!pinned.is_empty());
            for i in pinned {
                fixed[i] = true;
                rate[i] = level;
                for &r in &flows[i].0 {
                    rem[r] -= level;
                }
            }
        }
        rate
    }

    #[test]
    fn randomized_incremental_matches_from_scratch_reference() {
        // Pseudo-random add/remove churn; after every step, every live
        // flow's incremental rate must match a from-scratch allocation of
        // the current flow set.
        let mut seed = 0x2545F491_4F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut net = FlowNet::new();
        let caps: Vec<f64> = (0..6).map(|i| 4e9 + 1e9 * i as f64).collect();
        let rids: Vec<ResourceId> = caps.iter().map(|&c| net.add_resource(c)).collect();
        let mut live: Vec<(FlowId, Vec<usize>, f64)> = Vec::new();
        for step in 0..200 {
            if live.is_empty() || rng() % 3 != 0 {
                let nres = 1 + (rng() % 3) as usize;
                let mut res: Vec<usize> = (0..nres).map(|_| (rng() % 6) as usize).collect();
                res.sort_unstable();
                res.dedup();
                let cap = 1e9 + (rng() % 10) as f64 * 1e9;
                let id = net.add(spec(
                    &res.iter().map(|&r| rids[r]).collect::<Vec<_>>(),
                    cap,
                    1e6,
                ));
                live.push((id, res, cap));
            } else {
                let victim = (rng() as usize) % live.len();
                let (id, _, _) = live.swap_remove(victim);
                net.remove(id);
            }
            net.progress(1e-6);
            // Compare against the reference, which is ignorant of the
            // incremental bookkeeping.
            live.sort_by_key(|(id, _, _)| *id);
            let flows: Vec<(Vec<usize>, f64)> = live
                .iter()
                .map(|(_, res, cap)| (res.clone(), *cap))
                .collect();
            let expect = reference_rates(&caps, &flows);
            for ((id, _, _), want) in live.iter().zip(expect) {
                let got = net.rate(*id);
                assert!(
                    (got - want).abs() <= want.abs() * 1e-6 + 1.0,
                    "step {step}: flow {id:?} rate {got} != reference {want}"
                );
            }
        }
    }
}
