//! Max–min fair flow-level network model.
//!
//! A *flow* is a bulk data transfer that consumes capacity on a set of
//! *resources* (NIC transmit/receive sides, intra-node memory channels, …)
//! and is additionally limited by a per-flow rate cap (the "single stream"
//! bandwidth — the reason one MPI process cannot saturate a NIC, which is the
//! root motivation of the paper, §V-A / Fig. 3).
//!
//! Rates are assigned by progressive filling (max–min fairness): repeatedly
//! find the most-constrained bottleneck — either a resource whose fair share
//! is smallest or a flow whose own cap is below every share — fix the
//! affected flows at that rate, remove the consumed capacity, and continue.
//!
//! The allocator is deterministic: flows are iterated in `FlowId` order and
//! resources in index order, so equal inputs always produce equal rates.

use std::collections::BTreeMap;

/// Identifies a capacity-constrained resource (e.g. one NIC direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

/// Identifies an active flow. Ids are assigned monotonically and never
/// reused, so `FlowId` order is creation order — part of the determinism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Description of a new flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Resources this flow consumes capacity on (typically source NIC tx and
    /// destination NIC rx, or a node memory channel for intra-node flows).
    /// Duplicates are allowed and are counted once.
    pub resources: Vec<ResourceId>,
    /// Per-flow rate cap in bytes/second (single-stream bandwidth).
    pub cap: f64,
    /// Bytes to transfer.
    pub bytes: f64,
}

#[derive(Debug)]
struct Flow {
    resources: Vec<ResourceId>,
    cap: f64,
    /// Bytes still to transfer as of `FlowNet::progress`' last call.
    remaining: f64,
    /// Current max–min fair rate in bytes/second.
    rate: f64,
}

/// The set of active flows plus the fixed resource capacities.
///
/// `FlowNet` is a pure model: it knows nothing about virtual time. The
/// caller (the engine) drives it by calling [`FlowNet::progress`] with
/// elapsed durations and re-reading per-flow rates/ETAs after each
/// [`FlowNet::add`]/[`FlowNet::remove`].
#[derive(Debug, Default)]
pub struct FlowNet {
    capacity: Vec<f64>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
}

impl FlowNet {
    /// Create an empty network with no resources.
    pub fn new() -> FlowNet {
        FlowNet::default()
    }

    /// Register a resource with the given capacity (bytes/second) and return
    /// its id. Capacities are fixed for the lifetime of the network.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId(self.capacity.len() as u32);
        self.capacity.push(capacity);
        id
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.capacity.len()
    }

    /// Number of active flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Add a flow and recompute all rates. Returns the new flow's id.
    ///
    /// A zero-byte flow is legal; it will report an ETA of zero.
    pub fn add(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            spec.cap.is_finite() && spec.cap > 0.0,
            "flow cap must be positive and finite, got {}",
            spec.cap
        );
        assert!(
            spec.bytes.is_finite() && spec.bytes >= 0.0,
            "flow size must be non-negative, got {}",
            spec.bytes
        );
        let mut resources = spec.resources;
        resources.sort_unstable();
        resources.dedup();
        for r in &resources {
            assert!(
                (r.0 as usize) < self.capacity.len(),
                "unknown resource {r:?}"
            );
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                resources,
                cap: spec.cap,
                remaining: spec.bytes,
                rate: 0.0,
            },
        );
        self.recompute();
        id
    }

    /// Remove a flow (complete or cancelled) and recompute rates.
    /// Returns the bytes it still had outstanding.
    pub fn remove(&mut self, id: FlowId) -> f64 {
        let flow = self.flows.remove(&id).expect("removing unknown flow");
        self.recompute();
        flow.remaining
    }

    /// Advance every flow by `dt_secs`, decrementing remaining bytes at the
    /// current rates. Rates themselves do not change here.
    pub fn progress(&mut self, dt_secs: f64) {
        debug_assert!(dt_secs >= 0.0);
        for flow in self.flows.values_mut() {
            flow.remaining = (flow.remaining - flow.rate * dt_secs).max(0.0);
        }
    }

    /// Current rate of a flow in bytes/second.
    pub fn rate(&self, id: FlowId) -> f64 {
        self.flows[&id].rate
    }

    /// Bytes outstanding as of the last `progress` call.
    pub fn remaining(&self, id: FlowId) -> f64 {
        self.flows[&id].remaining
    }

    /// Seconds from now until the flow finishes at its current rate
    /// (`f64::INFINITY` if its rate is zero and bytes remain; zero-byte
    /// flows finish immediately).
    pub fn eta_secs(&self, id: FlowId) -> f64 {
        let f = &self.flows[&id];
        if f.remaining <= 0.0 {
            0.0
        } else if f.rate <= 0.0 {
            f64::INFINITY
        } else {
            f.remaining / f.rate
        }
    }

    /// Iterate over active flow ids in creation order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// Progressive-filling max–min fair rate allocation.
    fn recompute(&mut self) {
        let nres = self.capacity.len();
        let mut remaining_cap = self.capacity.clone();
        let mut count = vec![0usize; nres];
        // Unfixed flows, in deterministic id order.
        let mut unfixed: Vec<FlowId> = self.flows.keys().copied().collect();
        for id in &unfixed {
            for r in &self.flows[id].resources {
                count[r.0 as usize] += 1;
            }
        }

        while !unfixed.is_empty() {
            // Bottleneck share over resources that still carry unfixed flows.
            let mut share = f64::INFINITY;
            for r in 0..nres {
                if count[r] > 0 {
                    share = share.min(remaining_cap[r].max(0.0) / count[r] as f64);
                }
            }
            // A flow with no resources is limited only by its own cap.
            // Determine this round's rate: the smaller of the bottleneck
            // share and the smallest unfixed per-flow cap.
            let min_cap = unfixed
                .iter()
                .map(|id| self.flows[id].cap)
                .fold(f64::INFINITY, f64::min);
            let level = share.min(min_cap);
            debug_assert!(level.is_finite(), "no constraint bound any flow");

            // Fix every flow that is pinned at this level: either its cap is
            // the binding constraint, or it crosses a bottleneck resource.
            let mut fixed_any = false;
            let mut still: Vec<FlowId> = Vec::with_capacity(unfixed.len());
            for id in unfixed.drain(..) {
                let flow = &self.flows[&id];
                let at_cap = flow.cap <= level + level * 1e-12;
                let at_bottleneck = flow.resources.iter().any(|r| {
                    let r = r.0 as usize;
                    count[r] > 0
                        && remaining_cap[r].max(0.0) / count[r] as f64 <= level + level * 1e-12
                });
                if at_cap || at_bottleneck {
                    fixed_any = true;
                    let resources = flow.resources.clone();
                    self.flows.get_mut(&id).unwrap().rate = level;
                    for r in resources {
                        let r = r.0 as usize;
                        remaining_cap[r] -= level;
                        count[r] -= 1;
                    }
                } else {
                    still.push(id);
                }
            }
            unfixed = still;
            assert!(fixed_any, "max-min allocation failed to make progress");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(resources: &[ResourceId], cap: f64, bytes: f64) -> FlowSpec {
        FlowSpec {
            resources: resources.to_vec(),
            cap,
            bytes,
        }
    }

    #[test]
    fn single_flow_capped_by_stream_cap() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let f = net.add(spec(&[nic], 9e9, 1e6));
        assert_eq!(net.rate(f), 9e9);
    }

    #[test]
    fn single_flow_capped_by_resource() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(5e9);
        let f = net.add(spec(&[nic], 9e9, 1e6));
        assert_eq!(net.rate(f), 5e9);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let a = net.add(spec(&[nic], 9e9, 1e6));
        let b = net.add(spec(&[nic], 9e9, 1e6));
        assert!((net.rate(a) - 6e9).abs() < 1.0);
        assert!((net.rate(b) - 6e9).abs() < 1.0);
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        // One flow capped at 2 GB/s on a 12 GB/s NIC; the other (cap 11)
        // should get the remaining 10 GB/s, not the naive 6.
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let slow = net.add(spec(&[nic], 2e9, 1e6));
        let fast = net.add(spec(&[nic], 11e9, 1e6));
        assert!((net.rate(slow) - 2e9).abs() < 1.0);
        assert!((net.rate(fast) - 10e9).abs() < 1e3);
    }

    #[test]
    fn multi_resource_bottleneck() {
        // tx capacity 12, rx capacity 4: flow crossing both is limited by rx.
        let mut net = FlowNet::new();
        let tx = net.add_resource(12e9);
        let rx = net.add_resource(4e9);
        let f = net.add(spec(&[tx, rx], 20e9, 1e6));
        assert!((net.rate(f) - 4e9).abs() < 1.0);
    }

    #[test]
    fn incast_shares_receiver() {
        // Four senders (distinct tx NICs) into one rx NIC of 12 GB/s:
        // each should get 3 GB/s.
        let mut net = FlowNet::new();
        let rx = net.add_resource(12e9);
        let mut flows = Vec::new();
        for _ in 0..4 {
            let tx = net.add_resource(12e9);
            flows.push(net.add(spec(&[tx, rx], 10e9, 1e6)));
        }
        for f in flows {
            assert!((net.rate(f) - 3e9).abs() < 1e3);
        }
    }

    #[test]
    fn progress_and_eta() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10.0); // 10 B/s for easy math
        let f = net.add(spec(&[nic], 100.0, 50.0));
        assert!((net.eta_secs(f) - 5.0).abs() < 1e-12);
        net.progress(2.0);
        assert!((net.remaining(f) - 30.0).abs() < 1e-12);
        assert!((net.eta_secs(f) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn removal_restores_capacity() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let a = net.add(spec(&[nic], 12e9, 1e6));
        let b = net.add(spec(&[nic], 12e9, 1e6));
        assert!((net.rate(a) - 6e9).abs() < 1.0);
        net.remove(b);
        assert!((net.rate(a) - 12e9).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_has_zero_eta() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let f = net.add(spec(&[nic], 12e9, 0.0));
        assert_eq!(net.eta_secs(f), 0.0);
    }

    #[test]
    fn duplicate_resources_counted_once() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10e9);
        let f = net.add(spec(&[nic, nic], 20e9, 1.0));
        assert!((net.rate(f) - 10e9).abs() < 1.0);
    }

    #[test]
    fn work_conservation_on_shared_resource() {
        // Sum of rates on the shared NIC must equal its capacity when demand
        // exceeds it.
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let flows: Vec<_> = (0..5).map(|_| net.add(spec(&[nic], 9e9, 1.0))).collect();
        let total: f64 = flows.iter().map(|&f| net.rate(f)).sum();
        assert!((total - 12e9).abs() < 1e3, "total {total}");
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut net = FlowNet::new();
        net.add(spec(&[ResourceId(7)], 1e9, 1.0));
    }
}
