//! Max–min fair flow-level network model.
//!
//! A *flow* is a bulk data transfer that consumes capacity on a set of
//! *resources* (NIC transmit/receive sides, intra-node memory channels, …)
//! and is additionally limited by a per-flow rate cap (the "single stream"
//! bandwidth — the reason one MPI process cannot saturate a NIC, which is the
//! root motivation of the paper, §V-A / Fig. 3).
//!
//! Rates are assigned by progressive filling (max–min fairness): repeatedly
//! find the most-constrained bottleneck — either a resource whose fair share
//! is smallest or a flow whose own cap is below every share — fix the
//! affected flows at that rate, remove the consumed capacity, and continue.
//!
//! The allocator is deterministic: flows are iterated in `FlowId` order and
//! resources in index order, so equal inputs always produce equal rates.

use std::collections::BTreeMap;

/// Identifies a capacity-constrained resource (e.g. one NIC direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

/// What a resource models, for utilization accounting. Purely a label: the
/// allocator treats all resources identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Transmit side of the NIC of node `node`.
    NicTx(u32),
    /// Receive side of the NIC of node `node`.
    NicRx(u32),
    /// Intra-node memory channel of node `node`.
    Mem(u32),
    /// Per-rank CPU resource (e.g. the reduction-compute stream of `rank`).
    Cpu(u32),
    /// Unlabeled resource.
    Other,
}

impl ResourceKind {
    /// True for either direction of a NIC.
    pub fn is_nic(&self) -> bool {
        matches!(self, ResourceKind::NicTx(_) | ResourceKind::NicRx(_))
    }

    /// Stable display label, e.g. `"nic_tx/3"`.
    pub fn label(&self) -> String {
        match self {
            ResourceKind::NicTx(n) => format!("nic_tx/{n}"),
            ResourceKind::NicRx(n) => format!("nic_rx/{n}"),
            ResourceKind::Mem(n) => format!("mem/{n}"),
            ResourceKind::Cpu(r) => format!("cpu/{r}"),
            ResourceKind::Other => "other".to_string(),
        }
    }
}

/// Utilization accounting for one resource, integrated over virtual time by
/// [`FlowNet::progress`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceStats {
    /// Seconds during which at least one flow was actively moving bytes
    /// through this resource.
    pub busy_secs: f64,
    /// Seconds during which at least two flows were concurrently moving
    /// bytes through this resource — the paper's "overlapped communication"
    /// condition.
    pub overlap2_secs: f64,
    /// Total bytes carried through this resource.
    pub bytes: f64,
    /// High-water mark of concurrently attached flows.
    pub max_concurrent: u32,
}

/// Identifies an active flow. Ids are assigned monotonically and never
/// reused, so `FlowId` order is creation order — part of the determinism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Description of a new flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Resources this flow consumes capacity on (typically source NIC tx and
    /// destination NIC rx, or a node memory channel for intra-node flows).
    /// Duplicates are allowed and are counted once.
    pub resources: Vec<ResourceId>,
    /// Per-flow rate cap in bytes/second (single-stream bandwidth).
    pub cap: f64,
    /// Bytes to transfer.
    pub bytes: f64,
}

#[derive(Debug)]
struct Flow {
    resources: Vec<ResourceId>,
    cap: f64,
    /// Bytes still to transfer as of `FlowNet::progress`' last call.
    remaining: f64,
    /// Current max–min fair rate in bytes/second.
    rate: f64,
}

/// The set of active flows plus the fixed resource capacities.
///
/// `FlowNet` is a pure model: it knows nothing about virtual time. The
/// caller (the engine) drives it by calling [`FlowNet::progress`] with
/// elapsed durations and re-reading per-flow rates/ETAs after each
/// [`FlowNet::add`]/[`FlowNet::remove`].
#[derive(Debug, Default)]
pub struct FlowNet {
    capacity: Vec<f64>,
    kinds: Vec<ResourceKind>,
    stats: Vec<ResourceStats>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
}

impl FlowNet {
    /// Create an empty network with no resources.
    pub fn new() -> FlowNet {
        FlowNet::default()
    }

    /// Register a resource with the given capacity (bytes/second) and return
    /// its id. Capacities are fixed for the lifetime of the network.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        self.add_resource_kind(capacity, ResourceKind::Other)
    }

    /// Register a resource labeled with what it models (NIC side, memory
    /// channel, CPU). The label only affects utilization reporting.
    pub fn add_resource_kind(&mut self, capacity: f64, kind: ResourceKind) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId(self.capacity.len() as u32);
        self.capacity.push(capacity);
        self.kinds.push(kind);
        self.stats.push(ResourceStats::default());
        id
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.capacity.len()
    }

    /// Number of active flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Add a flow and recompute all rates. Returns the new flow's id.
    ///
    /// A zero-byte flow is legal; it will report an ETA of zero.
    pub fn add(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            spec.cap.is_finite() && spec.cap > 0.0,
            "flow cap must be positive and finite, got {}",
            spec.cap
        );
        assert!(
            spec.bytes.is_finite() && spec.bytes >= 0.0,
            "flow size must be non-negative, got {}",
            spec.bytes
        );
        let mut resources = spec.resources;
        resources.sort_unstable();
        resources.dedup();
        for r in &resources {
            assert!(
                (r.0 as usize) < self.capacity.len(),
                "unknown resource {r:?}"
            );
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                resources,
                cap: spec.cap,
                remaining: spec.bytes,
                rate: 0.0,
            },
        );
        self.recompute();
        self.update_high_water();
        id
    }

    /// Record the concurrent-flow high-water mark per resource.
    fn update_high_water(&mut self) {
        let mut attached = vec![0u32; self.capacity.len()];
        for flow in self.flows.values() {
            for r in &flow.resources {
                attached[r.0 as usize] += 1;
            }
        }
        for (stat, n) in self.stats.iter_mut().zip(attached) {
            stat.max_concurrent = stat.max_concurrent.max(n);
        }
    }

    /// Remove a flow (complete or cancelled) and recompute rates.
    /// Returns the bytes it still had outstanding.
    // Removing an id the table does not hold is caller-side corruption.
    #[allow(clippy::expect_used)]
    pub fn remove(&mut self, id: FlowId) -> f64 {
        let flow = self.flows.remove(&id).expect("removing unknown flow");
        self.recompute();
        flow.remaining
    }

    /// Advance every flow by `dt_secs`, decrementing remaining bytes at the
    /// current rates. Rates themselves do not change here.
    ///
    /// This is also where per-resource utilization integrals accumulate: a
    /// resource is *busy* for this interval if at least one attached flow is
    /// actively moving bytes, and *overlapped* if at least two are.
    pub fn progress(&mut self, dt_secs: f64) {
        debug_assert!(dt_secs >= 0.0);
        let mut active = vec![0u32; self.capacity.len()];
        for flow in self.flows.values_mut() {
            let moved = (flow.rate * dt_secs).min(flow.remaining);
            flow.remaining -= moved;
            if flow.rate > 0.0 && moved > 0.0 {
                for r in &flow.resources {
                    let r = r.0 as usize;
                    active[r] += 1;
                    self.stats[r].bytes += moved;
                }
            }
        }
        if dt_secs > 0.0 {
            for (stat, n) in self.stats.iter_mut().zip(active) {
                if n >= 1 {
                    stat.busy_secs += dt_secs;
                }
                if n >= 2 {
                    stat.overlap2_secs += dt_secs;
                }
            }
        }
    }

    /// Current rate of a flow in bytes/second.
    pub fn rate(&self, id: FlowId) -> f64 {
        self.flows[&id].rate
    }

    /// Bytes outstanding as of the last `progress` call.
    pub fn remaining(&self, id: FlowId) -> f64 {
        self.flows[&id].remaining
    }

    /// Seconds from now until the flow finishes at its current rate
    /// (`f64::INFINITY` if its rate is zero and bytes remain; zero-byte
    /// flows finish immediately).
    pub fn eta_secs(&self, id: FlowId) -> f64 {
        let f = &self.flows[&id];
        if f.remaining <= 0.0 {
            0.0
        } else if f.rate <= 0.0 {
            f64::INFINITY
        } else {
            f.remaining / f.rate
        }
    }

    /// Iterate over active flow ids in creation order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// The kind label a resource was registered with.
    pub fn resource_kind(&self, id: ResourceId) -> ResourceKind {
        self.kinds[id.0 as usize]
    }

    /// The fixed capacity a resource was registered with (bytes/second).
    pub fn resource_capacity(&self, id: ResourceId) -> f64 {
        self.capacity[id.0 as usize]
    }

    /// Accumulated utilization of one resource.
    pub fn resource_stats(&self, id: ResourceId) -> ResourceStats {
        self.stats[id.0 as usize]
    }

    /// Iterate `(id, kind, capacity, stats)` over all registered resources.
    pub fn resources(
        &self,
    ) -> impl Iterator<Item = (ResourceId, ResourceKind, f64, ResourceStats)> + '_ {
        (0..self.capacity.len()).map(move |i| {
            (
                ResourceId(i as u32),
                self.kinds[i],
                self.capacity[i],
                self.stats[i],
            )
        })
    }

    /// Progressive-filling max–min fair rate allocation.
    fn recompute(&mut self) {
        let nres = self.capacity.len();
        let mut remaining_cap = self.capacity.clone();
        let mut count = vec![0usize; nres];
        // Unfixed flows, in deterministic id order.
        let mut unfixed: Vec<FlowId> = self.flows.keys().copied().collect();
        for id in &unfixed {
            for r in &self.flows[id].resources {
                count[r.0 as usize] += 1;
            }
        }

        while !unfixed.is_empty() {
            // Bottleneck share over resources that still carry unfixed flows.
            let mut share = f64::INFINITY;
            for r in 0..nres {
                if count[r] > 0 {
                    share = share.min(remaining_cap[r].max(0.0) / count[r] as f64);
                }
            }
            // A flow with no resources is limited only by its own cap.
            // Determine this round's rate: the smaller of the bottleneck
            // share and the smallest unfixed per-flow cap.
            let min_cap = unfixed
                .iter()
                .map(|id| self.flows[id].cap)
                .fold(f64::INFINITY, f64::min);
            let level = share.min(min_cap);
            debug_assert!(level.is_finite(), "no constraint bound any flow");

            // Fix every flow that is pinned at this level: either its cap is
            // the binding constraint, or it crosses a bottleneck resource.
            let mut fixed_any = false;
            let mut still: Vec<FlowId> = Vec::with_capacity(unfixed.len());
            for id in unfixed.drain(..) {
                let flow = &self.flows[&id];
                let at_cap = flow.cap <= level + level * 1e-12;
                let at_bottleneck = flow.resources.iter().any(|r| {
                    let r = r.0 as usize;
                    count[r] > 0
                        && remaining_cap[r].max(0.0) / count[r] as f64 <= level + level * 1e-12
                });
                if at_cap || at_bottleneck {
                    fixed_any = true;
                    let resources = flow.resources.clone();
                    if let Some(f) = self.flows.get_mut(&id) {
                        f.rate = level;
                    }
                    for r in resources {
                        let r = r.0 as usize;
                        remaining_cap[r] -= level;
                        count[r] -= 1;
                    }
                } else {
                    still.push(id);
                }
            }
            unfixed = still;
            assert!(fixed_any, "max-min allocation failed to make progress");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(resources: &[ResourceId], cap: f64, bytes: f64) -> FlowSpec {
        FlowSpec {
            resources: resources.to_vec(),
            cap,
            bytes,
        }
    }

    #[test]
    fn single_flow_capped_by_stream_cap() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let f = net.add(spec(&[nic], 9e9, 1e6));
        assert_eq!(net.rate(f), 9e9);
    }

    #[test]
    fn single_flow_capped_by_resource() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(5e9);
        let f = net.add(spec(&[nic], 9e9, 1e6));
        assert_eq!(net.rate(f), 5e9);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let a = net.add(spec(&[nic], 9e9, 1e6));
        let b = net.add(spec(&[nic], 9e9, 1e6));
        assert!((net.rate(a) - 6e9).abs() < 1.0);
        assert!((net.rate(b) - 6e9).abs() < 1.0);
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        // One flow capped at 2 GB/s on a 12 GB/s NIC; the other (cap 11)
        // should get the remaining 10 GB/s, not the naive 6.
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let slow = net.add(spec(&[nic], 2e9, 1e6));
        let fast = net.add(spec(&[nic], 11e9, 1e6));
        assert!((net.rate(slow) - 2e9).abs() < 1.0);
        assert!((net.rate(fast) - 10e9).abs() < 1e3);
    }

    #[test]
    fn multi_resource_bottleneck() {
        // tx capacity 12, rx capacity 4: flow crossing both is limited by rx.
        let mut net = FlowNet::new();
        let tx = net.add_resource(12e9);
        let rx = net.add_resource(4e9);
        let f = net.add(spec(&[tx, rx], 20e9, 1e6));
        assert!((net.rate(f) - 4e9).abs() < 1.0);
    }

    #[test]
    fn incast_shares_receiver() {
        // Four senders (distinct tx NICs) into one rx NIC of 12 GB/s:
        // each should get 3 GB/s.
        let mut net = FlowNet::new();
        let rx = net.add_resource(12e9);
        let mut flows = Vec::new();
        for _ in 0..4 {
            let tx = net.add_resource(12e9);
            flows.push(net.add(spec(&[tx, rx], 10e9, 1e6)));
        }
        for f in flows {
            assert!((net.rate(f) - 3e9).abs() < 1e3);
        }
    }

    #[test]
    fn progress_and_eta() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10.0); // 10 B/s for easy math
        let f = net.add(spec(&[nic], 100.0, 50.0));
        assert!((net.eta_secs(f) - 5.0).abs() < 1e-12);
        net.progress(2.0);
        assert!((net.remaining(f) - 30.0).abs() < 1e-12);
        assert!((net.eta_secs(f) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn removal_restores_capacity() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let a = net.add(spec(&[nic], 12e9, 1e6));
        let b = net.add(spec(&[nic], 12e9, 1e6));
        assert!((net.rate(a) - 6e9).abs() < 1.0);
        net.remove(b);
        assert!((net.rate(a) - 12e9).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_has_zero_eta() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let f = net.add(spec(&[nic], 12e9, 0.0));
        assert_eq!(net.eta_secs(f), 0.0);
    }

    #[test]
    fn duplicate_resources_counted_once() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(10e9);
        let f = net.add(spec(&[nic, nic], 20e9, 1.0));
        assert!((net.rate(f) - 10e9).abs() < 1.0);
    }

    #[test]
    fn work_conservation_on_shared_resource() {
        // Sum of rates on the shared NIC must equal its capacity when demand
        // exceeds it.
        let mut net = FlowNet::new();
        let nic = net.add_resource(12e9);
        let flows: Vec<_> = (0..5).map(|_| net.add(spec(&[nic], 9e9, 1.0))).collect();
        let total: f64 = flows.iter().map(|&f| net.rate(f)).sum();
        assert!((total - 12e9).abs() < 1e3, "total {total}");
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut net = FlowNet::new();
        net.add(spec(&[ResourceId(7)], 1e9, 1.0));
    }

    #[test]
    fn resource_stats_accumulate_busy_and_overlap() {
        let mut net = FlowNet::new();
        let nic = net.add_resource_kind(10.0, ResourceKind::NicTx(0));
        let a = net.add(spec(&[nic], 100.0, 100.0));
        net.progress(2.0); // one active flow: busy only
        let b = net.add(spec(&[nic], 100.0, 100.0));
        net.progress(3.0); // two active flows: busy + overlap
        let s = net.resource_stats(nic);
        assert!((s.busy_secs - 5.0).abs() < 1e-12, "busy {}", s.busy_secs);
        assert!(
            (s.overlap2_secs - 3.0).abs() < 1e-12,
            "overlap {}",
            s.overlap2_secs
        );
        // 10 B/s for 2 s solo + 10 B/s aggregate for 3 s shared.
        assert!((s.bytes - 50.0).abs() < 1e-9, "bytes {}", s.bytes);
        assert_eq!(s.max_concurrent, 2);
        assert_eq!(net.resource_kind(nic), ResourceKind::NicTx(0));
        assert!(net.resource_kind(nic).is_nic());
        assert_eq!(net.resource_capacity(nic), 10.0);
        let _ = (a, b);
    }

    #[test]
    fn idle_resource_accumulates_nothing() {
        let mut net = FlowNet::new();
        let busy = net.add_resource(10.0);
        let idle = net.add_resource_kind(10.0, ResourceKind::Mem(1));
        net.add(spec(&[busy], 100.0, 100.0));
        net.progress(1.0);
        let s = net.resource_stats(idle);
        assert_eq!(s.busy_secs, 0.0);
        assert_eq!(s.bytes, 0.0);
        assert_eq!(s.max_concurrent, 0);
        assert_eq!(net.resources().count(), 2);
    }
}
