//! Span tracing for timeline diagrams (the paper's Fig. 6).
//!
//! Components record `TraceSpan`s — an actor id, a category, a label and a
//! virtual start/end — and the bench harness renders them as per-operation
//! time bars ("posting MPI_Ireduce", "waiting for MPI_Ibcast", …).

use crate::time::SimTime;

/// Coarse category of a traced span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Time spent inside a blocking communication call.
    BlockingCall,
    /// Time spent posting a nonblocking operation.
    Post,
    /// Time spent waiting for a nonblocking operation to complete.
    Wait,
    /// Modeled local computation.
    Compute,
    /// A coarse algorithm phase (e.g. one SUMMA step or a purification
    /// iteration) that groups finer spans beneath it on a timeline.
    Phase,
    /// One primitive step of a collective schedule (`CollPlan`), emitted
    /// uniformly by the plan executor — send, recv, local reduce, slack.
    CollStep,
    /// Anything else worth showing on a timeline.
    Other,
}

impl SpanKind {
    /// Stable lowercase name, used as the Perfetto category string and in
    /// metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::BlockingCall => "blocking",
            SpanKind::Post => "post",
            SpanKind::Wait => "wait",
            SpanKind::Compute => "compute",
            SpanKind::Phase => "phase",
            SpanKind::CollStep => "collstep",
            SpanKind::Other => "other",
        }
    }
}

/// Kind of a cross-actor happens-before edge recorded alongside spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A message delivery: the sender's injection enables the receiver's
    /// completion. `from` is the sending rank, `to` the receiving rank.
    SendRecv,
    /// A nonblocking operation finishing: the operation agent's completion
    /// enables the posting rank's wait to return. `from` is the operation
    /// actor, `to` the rank that waits on it.
    PostWait,
}

impl EdgeKind {
    /// Stable lowercase name for serialization.
    pub fn name(&self) -> &'static str {
        match self {
            EdgeKind::SendRecv => "sendrecv",
            EdgeKind::PostWait => "postwait",
        }
    }
}

/// A happens-before edge between two actors' timelines: an event at
/// `from_time` on `from_actor` enabled an event at `to_time` on `to_actor`.
/// Together with the per-actor span sequences these edges reconstruct the
/// run's execution DAG for critical-path analysis.
#[derive(Debug, Clone)]
pub struct TraceEdge {
    /// Edge category.
    pub kind: EdgeKind,
    /// Actor on which the enabling event occurred.
    pub from_actor: u32,
    /// Time of the enabling event.
    pub from_time: SimTime,
    /// Actor whose progress the edge enabled.
    pub to_actor: u32,
    /// Time at which the enabled event occurred (`>= from_time` modulo
    /// clock skew between OS threads on the wall-clock backend).
    pub to_time: SimTime,
}

/// One bar on a per-rank timeline.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Actor (rank) the span belongs to.
    pub actor: u32,
    /// Category, used for grouping/coloring.
    pub kind: SpanKind,
    /// Human-readable label, e.g. `"MPI_Ireduce post"`.
    pub label: String,
    /// Pipeline chunk index this span belongs to, if any. Structured
    /// replacement for the old `"… c=2"` free-text convention.
    pub chunk: Option<u32>,
    /// Span start on the virtual clock.
    pub start: SimTime,
    /// Span end on the virtual clock.
    pub end: SimTime,
}

impl TraceSpan {
    /// Span length in microseconds (the unit of the paper's Fig. 6).
    pub fn micros(&self) -> f64 {
        self.end.saturating_since(self.start).as_micros_f64()
    }
}

/// An append-only collection of spans for one simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    spans: Vec<TraceSpan>,
    edges: Vec<TraceEdge>,
    clamped: usize,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record a span. A span whose `end` precedes its `start` (a recording
    /// bug, e.g. clock skew between agents) is clamped to zero length at
    /// `start` and counted — see [`Trace::clamped`] — rather than silently
    /// corrupting downstream timeline math in release builds.
    pub fn push(&mut self, mut span: TraceSpan) {
        if span.end < span.start {
            span.end = span.start;
            self.clamped += 1;
        }
        self.spans.push(span);
    }

    /// Number of spans whose end preceded their start and were clamped to
    /// zero length on insertion. Non-zero indicates an instrumentation bug.
    pub fn clamped(&self) -> usize {
        self.clamped
    }

    /// Record a happens-before edge.
    pub fn push_edge(&mut self, edge: TraceEdge) {
        self.edges.push(edge);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// All happens-before edges, in recording order.
    pub fn edges(&self) -> &[TraceEdge] {
        &self.edges
    }

    /// Spans of one actor, in recording order.
    pub fn for_actor(&self, actor: u32) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(move |s| s.actor == actor)
    }

    /// Consume the trace, returning the spans.
    pub fn into_spans(self) -> Vec<TraceSpan> {
        self.spans
    }

    /// Consume the trace, returning spans and happens-before edges.
    pub fn into_parts(self) -> (Vec<TraceSpan>, Vec<TraceEdge>) {
        (self.spans, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters_spans() {
        let mut t = Trace::new();
        t.push(TraceSpan {
            actor: 0,
            kind: SpanKind::Post,
            label: "post".into(),
            chunk: None,
            start: SimTime(0),
            end: SimTime(1_000),
        });
        t.push(TraceSpan {
            actor: 1,
            kind: SpanKind::Wait,
            label: "wait".into(),
            chunk: Some(2),
            start: SimTime(1_000),
            end: SimTime(3_000),
        });
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.for_actor(1).count(), 1);
        assert!((t.spans()[1].micros() - 2.0).abs() < 1e-12);
        assert_eq!(t.spans()[1].chunk, Some(2));
        assert_eq!(t.clamped(), 0);
    }

    #[test]
    fn inverted_span_is_clamped_not_dropped() {
        let mut t = Trace::new();
        t.push(TraceSpan {
            actor: 0,
            kind: SpanKind::Other,
            label: "inverted".into(),
            chunk: None,
            start: SimTime(5_000),
            end: SimTime(1_000),
        });
        assert_eq!(t.clamped(), 1);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].start, t.spans()[0].end);
        assert_eq!(t.spans()[0].micros(), 0.0);
    }
}
