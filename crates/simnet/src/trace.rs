//! Span tracing for timeline diagrams (the paper's Fig. 6).
//!
//! Components record `TraceSpan`s — an actor id, a category, a label and a
//! virtual start/end — and the bench harness renders them as per-operation
//! time bars ("posting MPI_Ireduce", "waiting for MPI_Ibcast", …).

use crate::time::SimTime;

/// Coarse category of a traced span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Time spent inside a blocking communication call.
    BlockingCall,
    /// Time spent posting a nonblocking operation.
    Post,
    /// Time spent waiting for a nonblocking operation to complete.
    Wait,
    /// Modeled local computation.
    Compute,
    /// Anything else worth showing on a timeline.
    Other,
}

/// One bar on a per-rank timeline.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Actor (rank) the span belongs to.
    pub actor: u32,
    /// Category, used for grouping/coloring.
    pub kind: SpanKind,
    /// Human-readable label, e.g. `"MPI_Ireduce post c=2"`.
    pub label: String,
    /// Span start on the virtual clock.
    pub start: SimTime,
    /// Span end on the virtual clock.
    pub end: SimTime,
}

impl TraceSpan {
    /// Span length in microseconds (the unit of the paper's Fig. 6).
    pub fn micros(&self) -> f64 {
        self.end.saturating_since(self.start).as_micros_f64()
    }
}

/// An append-only collection of spans for one simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    spans: Vec<TraceSpan>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record a span.
    pub fn push(&mut self, span: TraceSpan) {
        debug_assert!(span.start <= span.end, "span ends before it starts");
        self.spans.push(span);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Spans of one actor, in recording order.
    pub fn for_actor(&self, actor: u32) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(move |s| s.actor == actor)
    }

    /// Consume the trace, returning the spans.
    pub fn into_spans(self) -> Vec<TraceSpan> {
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters_spans() {
        let mut t = Trace::new();
        t.push(TraceSpan {
            actor: 0,
            kind: SpanKind::Post,
            label: "post".into(),
            start: SimTime(0),
            end: SimTime(1_000),
        });
        t.push(TraceSpan {
            actor: 1,
            kind: SpanKind::Wait,
            label: "wait".into(),
            start: SimTime(1_000),
            end: SimTime(3_000),
        });
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.for_actor(1).count(), 1);
        assert!((t.spans()[1].micros() - 2.0).abs() < 1e-12);
    }
}
