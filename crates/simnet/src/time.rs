//! Virtual time for the discrete-event simulation.
//!
//! All simulator clocks are [`SimTime`] values: nanoseconds since the start of
//! the run, stored as `u64`. Durations are [`SimDur`]. One nanosecond of
//! granularity is ample for cluster-network modelling (link latencies are
//! microseconds) while `u64` nanoseconds covers ~584 years of virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the virtual clock (nanoseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since run start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier` is
    /// actually later (never panics — useful in lazily-updated flow math).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDur {
    /// Zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> SimDur {
        SimDur(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> SimDur {
        SimDur(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> SimDur {
        SimDur(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding up to the next nanosecond
    /// so that a nonzero physical duration never becomes a zero virtual one.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDur {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDur((secs * 1e9).ceil() as u64)
    }

    /// Nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Microseconds, as `f64` (the unit the paper's Fig. 6 uses).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    // Overflowing u64 nanoseconds (~585 years of virtual time) is a bug
    // worth crashing on, not saturating through.
    #[allow(clippy::expect_used)]
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual clock overflow"))
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    #[allow(clippy::expect_used)]
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(
            self.0
                .checked_add(rhs.0)
                .expect("virtual duration overflow"),
        )
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDur;
    #[inline]
    // Subtracting a later time from an earlier one is a causality bug.
    #[allow(clippy::expect_used)]
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.4}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_roundtrip() {
        assert_eq!(SimDur::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDur::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDur::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        let t = SimTime::ZERO + SimDur::from_secs_f64(0.25);
        assert!((t.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1.5 ns worth of seconds must not truncate to 1 ns silently; it
        // rounds *up* so tiny positive costs remain positive.
        assert_eq!(SimDur::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDur::from_secs_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a.saturating_since(b).as_nanos(), 60);
        assert_eq!(b.saturating_since(a).as_nanos(), 0);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(1).max(SimTime(2)), SimTime(2));
        assert_eq!(SimTime(5).max(SimTime(2)), SimTime(5));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDur::from_secs_f64(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDur(500)), "500ns");
        assert_eq!(format!("{}", SimDur(1_500)), "1.50us");
        assert_eq!(format!("{}", SimDur(2_500_000)), "2.50ms");
    }
}
