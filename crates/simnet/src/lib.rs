//! # ovcomm-simnet
//!
//! A deterministic, virtual-time, flow-level cluster network simulator — the
//! hardware substrate for reproducing *"Overlapping Communications with Other
//! Communications and its Application to Distributed Dense Matrix
//! Computations"* (Huang & Chow, IPDPS 2019) without a physical cluster.
//!
//! The simulator has four pieces:
//!
//! * [`time`] — `u64`-nanosecond virtual clock types.
//! * [`flow`] — a max–min fair flow network: NICs and memory channels are
//!   capacity resources; transfers are flows with per-stream caps. The fact
//!   that a *single* stream cannot saturate a NIC (the paper's Fig. 3 and the
//!   root motivation for overlapping communications) is modeled by the
//!   message-size-dependent stream cap in [`profile::MachineProfile`].
//! * [`engine`] — a serialized discrete-event engine: actors (MPI ranks) are
//!   stackful coroutines ([`fiber`]) or, for differential testing, OS
//!   threads; exactly one context runs at a time and parked actors are
//!   released in deterministic `(virtual time, actor id)` order, making runs
//!   bit-deterministic regardless of OS thread scheduling.
//! * [`fiber`] — minimal stackful coroutines (one context switch is a few ns
//!   and a fiber costs one heap stack, so tens of thousands of ranks fit in
//!   one process).
//! * [`profile`]/[`topology`] — calibration constants (Stampede2 Skylake
//!   preset fitted to the paper's measured anchors), fat-tree and dragonfly
//!   fabrics with per-link contention, and rank→node maps.
//!
//! Higher layers: `ovcomm-simmpi` implements MPI semantics on these
//! primitives; `ovcomm-kernels` implements the paper's algorithms on that.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod fiber;
pub mod flow;
pub mod profile;
pub mod time;
pub mod topology;
pub mod trace;

pub use engine::{
    Action, Engine, EventKey, NetStats, ParkCell, ResourceEntry, WakeKind, CLASS_FLOW,
    ENGINE_ORIGIN,
};
pub use fiber::{fiber_yield, in_fiber, Fiber, ForcedUnwind, DEFAULT_STACK_SIZE};
pub use flow::{FlowId, FlowNet, FlowSpec, ResourceId, ResourceKind, ResourceStats};
pub use profile::MachineProfile;
pub use time::{SimDur, SimTime};
pub use topology::{ClusterResources, ClusterSpec, Fabric, GroupPlacement, NodeMap};
pub use trace::{EdgeKind, SpanKind, Trace, TraceEdge, TraceSpan};
