//! Criterion bench for Figure 6: end-to-end virtual time of the 8 MB
//! reduce/bcast under blocking vs N_DUP=4 overlap (the quantities whose
//! post/wait breakdown the figure diagrams).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{micro::coll_time, CollCase, CollKind};
use ovcomm_simnet::MachineProfile;

fn bench_fig6(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("fig6_8mb_ops");
    group.sample_size(10);
    for kind in [CollKind::Bcast, CollKind::Reduce] {
        for (name, case) in [
            ("blocking", CollCase::Blocking),
            ("ndup4", CollCase::NonblockingOverlap(4)),
            ("ppn4", CollCase::PpnOverlap(4)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), name),
                &(kind, case),
                |b, &(kind, case)| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            total += Duration::from_secs_f64(coll_time(
                                &profile,
                                kind,
                                case,
                                4,
                                8 << 20,
                            ));
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_fig6
}
criterion_main!(benches);
