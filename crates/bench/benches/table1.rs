//! Criterion bench for Table I: Alg 3/4/5 kernel time on 1hsg_45 (the
//! smallest paper system keeps bench wall time reasonable).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{symm_run, MeshSpec};
use ovcomm_purify::KernelChoice;
use ovcomm_simnet::MachineProfile;

fn bench_table1(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("table1_symm_square_cube");
    group.sample_size(10);
    let n = 5330;
    for (name, choice) in [
        ("alg3_original", KernelChoice::Original),
        ("alg4_baseline", KernelChoice::Baseline),
        ("alg5_ndup4", KernelChoice::Optimized { n_dup: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::new("1hsg_45", name), &choice, |b, &choice| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let s = symm_run(&profile, n, MeshSpec::Cube { p: 4 }, choice, 1, 1);
                    total += Duration::from_secs_f64(s.time_per_call);
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default()
        .without_plots()
        // One simulation per sample is plenty — the virtual times are
        // bit-identical across runs; keep wall time bounded.
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(200));
    targets = bench_table1
}
criterion_main!(benches);
