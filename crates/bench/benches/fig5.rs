//! Criterion bench for Figure 5: collective bandwidth under the three
//! overlap cases (virtual time via `iter_custom`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{coll_bandwidth, CollCase, CollKind};
use ovcomm_simnet::MachineProfile;

fn bench_fig5(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("fig5_collectives");
    group.sample_size(10);
    let msg = 8 << 20;
    let cases = [
        ("blocking", CollCase::Blocking),
        ("ndup4", CollCase::NonblockingOverlap(4)),
        ("ppn4", CollCase::PpnOverlap(4)),
    ];
    for kind in [CollKind::Bcast, CollKind::Reduce] {
        for (name, case) in cases {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), name),
                &(kind, case),
                |b, &(kind, case)| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let bw = coll_bandwidth(&profile, kind, case, 4, msg);
                            let p = 4.0f64;
                            let volume = 2.0 * (p - 1.0) * msg as f64 / p;
                            total += Duration::from_secs_f64(volume / bw);
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_fig5
}
criterion_main!(benches);
