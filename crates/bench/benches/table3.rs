//! Criterion bench for Table III: PPN×N_DUP combinations (reduced set —
//! the full sweep including the 512-rank mesh lives in the
//! `table3_ppn_sweep` binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{symm_run, MeshSpec};
use ovcomm_purify::KernelChoice;
use ovcomm_simnet::MachineProfile;

fn bench_table3(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("table3_ppn");
    group.sample_size(10);
    let n = 5330;
    for (ppn, p) in [(1usize, 4usize), (2, 5)] {
        for n_dup in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("ppn{ppn}_mesh{p}"), format!("ndup{n_dup}")),
                &(ppn, p, n_dup),
                |b, &(ppn, p, n_dup)| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let s = symm_run(
                                &profile,
                                n,
                                MeshSpec::Cube { p },
                                KernelChoice::Optimized { n_dup },
                                ppn,
                                1,
                            );
                            total += Duration::from_secs_f64(s.time_per_call);
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default()
        .without_plots()
        // One simulation per sample is plenty — the virtual times are
        // bit-identical across runs; keep wall time bounded.
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(200));
    targets = bench_table3
}
criterion_main!(benches);
