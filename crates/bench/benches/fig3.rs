//! Criterion bench for Figure 3: point-to-point bandwidth micro-benchmark.
//! Reports *virtual* transfer time per configuration via `iter_custom`
//! (the simulation is deterministic, so samples are identical — Criterion
//! here provides uniform reporting across the suite, not noise control).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::p2p_bandwidth;
use ovcomm_simnet::MachineProfile;

fn bench_fig3(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("fig3_p2p");
    group.sample_size(10);
    for ppn in [1usize, 4] {
        for msg in [64 * 1024usize, 4 << 20] {
            group.bench_with_input(
                BenchmarkId::new(format!("ppn{ppn}"), msg),
                &(ppn, msg),
                |b, &(ppn, msg)| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let bw = p2p_bandwidth(&profile, ppn, msg);
                            let secs = (ppn * msg) as f64 / bw;
                            total += Duration::from_secs_f64(secs);
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_fig3
}
criterion_main!(benches);
