//! Criterion bench for the §V-A analysis: simulated baseline communication
//! time vs the alpha-beta bound (reported as the simulated comm time; the
//! bound is printed by the `sec5a_alpha_beta` binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ovcomm_bench::{symm_run, MeshSpec};
use ovcomm_purify::KernelChoice;
use ovcomm_simnet::MachineProfile;

fn bench_sec5a(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("sec5a_baseline_comm_vs_model");
    group.sample_size(10);
    group.bench_function("1hsg_70_baseline_comm", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let s = symm_run(
                    &profile,
                    5330,
                    MeshSpec::Cube { p: 4 },
                    KernelChoice::Baseline,
                    1,
                    1,
                );
                total += Duration::from_secs_f64((s.time_per_call - s.compute_time).max(0.0));
            }
            total
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default()
        .without_plots()
        // One simulation per sample is plenty — the virtual times are
        // bit-identical across runs; keep wall time bounded.
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(200));
    targets = bench_sec5a
}
criterion_main!(benches);
