//! Criterion bench for Table IV: baseline-kernel communication time per
//! PPN (the volume/bandwidth decomposition lives in the binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{symm_run, MeshSpec};
use ovcomm_purify::KernelChoice;
use ovcomm_simnet::MachineProfile;

fn bench_table4(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("table4_baseline_comm");
    group.sample_size(10);
    let n = 5330;
    for (ppn, p) in [(1usize, 4usize), (2, 5)] {
        group.bench_with_input(
            BenchmarkId::new("baseline_comm", format!("ppn{ppn}")),
            &(ppn, p),
            |b, &(ppn, p)| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let s = symm_run(
                            &profile,
                            n,
                            MeshSpec::Cube { p },
                            KernelChoice::Baseline,
                            ppn,
                            1,
                        );
                        total +=
                            Duration::from_secs_f64((s.time_per_call - s.compute_time).max(0.0));
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default()
        .without_plots()
        // One simulation per sample is plenty — the virtual times are
        // bit-identical across runs; keep wall time bounded.
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(200));
    targets = bench_table4
}
criterion_main!(benches);
