//! Criterion bench for Table V: 2.5D SymmSquareCube (small configurations;
//! the full sweep lives in the `table5_25d` binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{symm_run, MeshSpec};
use ovcomm_purify::KernelChoice;
use ovcomm_simnet::MachineProfile;

fn bench_table5(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("table5_25d");
    group.sample_size(10);
    let n = 5330;
    for (ppn, q, cc) in [(1usize, 4usize, 4usize), (2, 8, 2)] {
        for n_dup in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("{q}x{q}x{cc}_ppn{ppn}"), format!("ndup{n_dup}")),
                &(ppn, q, cc, n_dup),
                |b, &(ppn, q, cc, n_dup)| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let s = symm_run(
                                &profile,
                                n,
                                MeshSpec::TwoFiveD { q, c: cc },
                                KernelChoice::TwoFiveD { c: cc, n_dup },
                                ppn,
                                1,
                            );
                            total += Duration::from_secs_f64(s.time_per_call);
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default()
        .without_plots()
        // One simulation per sample is plenty — the virtual times are
        // bit-identical across runs; keep wall time bounded.
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(200));
    targets = bench_table5
}
criterion_main!(benches);
