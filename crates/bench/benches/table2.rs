//! Criterion bench for Table II: the N_DUP sweep of the optimized kernel.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovcomm_bench::{symm_run, MeshSpec};
use ovcomm_purify::KernelChoice;
use ovcomm_simnet::MachineProfile;

fn bench_table2(c: &mut Criterion) {
    let profile = MachineProfile::stampede2_skylake();
    let mut group = c.benchmark_group("table2_ndup_sweep");
    group.sample_size(10);
    let n = 5330;
    for n_dup in [1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::new("ndup", n_dup), &n_dup, |b, &n_dup| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let s = symm_run(
                        &profile,
                        n,
                        MeshSpec::Cube { p: 4 },
                        KernelChoice::Optimized { n_dup },
                        1,
                        1,
                    );
                    total += Duration::from_secs_f64(s.time_per_call);
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // The simulator is deterministic: samples have zero variance, which
    // criterion's plot generation cannot handle — disable plots.
    config = Criterion::default()
        .without_plots()
        // One simulation per sample is plenty — the virtual times are
        // bit-identical across runs; keep wall time bounded.
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(200));
    targets = bench_table2
}
criterion_main!(benches);
