//! Run-to-run determinism of traced fig6-style scenarios.
//!
//! The fig6 artifact was historically nondeterministic: with thread-per-rank
//! execution, OS scheduling rotated which duplicate communicator's span
//! group came first and shifted span starts by a few microseconds between
//! runs. The fiber engine releases actors in (virtual time, actor id) order,
//! so two runs of the same traced scenario must now produce *identical*
//! span and edge streams — which is what lets
//! `results/fig6_time_diagram.json` be a committed, reproducible artifact.

use ovcomm_core::NDupComms;
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig, SimOutput};
use ovcomm_simnet::MachineProfile;

/// Serialize every span and edge of a run's trace, in recording order.
fn trace_fingerprint(out: &SimOutput<()>) -> String {
    let trace = out.trace.as_ref().expect("tracing enabled");
    let mut s = String::new();
    for sp in trace.spans() {
        s.push_str(&format!(
            "span actor={} kind={} label={:?} chunk={:?} start={} end={}\n",
            sp.actor,
            sp.kind.name(),
            sp.label,
            sp.chunk,
            sp.start.as_nanos(),
            sp.end.as_nanos(),
        ));
    }
    for e in trace.edges() {
        s.push_str(&format!(
            "edge kind={} from={}@{} to={}@{}\n",
            e.kind.name(),
            e.from_actor,
            e.from_time.as_nanos(),
            e.to_actor,
            e.to_time.as_nanos(),
        ));
    }
    s
}

/// The scenario that used to rotate between runs: N_DUP = 4 nonblocking
/// reduce of 4 × 2 MB on 4 nodes, waits issued in duplicate order.
fn ndup_reduce_once() -> SimOutput<()> {
    let msg = 2 << 20;
    let n_dup = 4;
    run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()).with_trace(),
        move |rc: RankCtx| {
            let w = rc.world();
            let comms = NDupComms::new(&w, n_dup);
            let reqs: Vec<_> = comms
                .iter()
                .map(|(c, comm)| (c, comm.ireduce(0, Payload::Phantom(msg))))
                .collect();
            for (c, r) in &reqs {
                let _ = comms
                    .comm(*c)
                    .wait_traced_chunk(r, "wait MPI_Ireduce", *c as u32);
            }
        },
    )
    .expect("ndup reduce scenario")
}

#[test]
fn traced_ndup_scenario_is_bit_identical_across_runs() {
    let a = ndup_reduce_once();
    let b = ndup_reduce_once();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.end_times, b.end_times);
    let fa = trace_fingerprint(&a);
    let fb = trace_fingerprint(&b);
    assert!(!fa.is_empty(), "scenario recorded no spans");
    assert_eq!(fa, fb, "trace streams differ between identical runs");
}
