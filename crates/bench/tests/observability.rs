//! End-to-end acceptance tests for the observability stack: determinism of
//! the metrics/trace pipeline, the N_DUP overlap signal the paper's
//! technique is built on, and `--trace-out` Perfetto export.

use ovcomm_bench::metrics_block;
use ovcomm_densemat::{BlockBuf, BlockGrid};
use ovcomm_kernels::{symm_square_cube_optimized, Mesh3D, SymmInput};
use ovcomm_simmpi::{actor_name, run, Payload, RankCtx, SimConfig, SimOutput};
use ovcomm_simnet::MachineProfile;

/// One phantom SymmSquareCube (Algorithm 5) on a p×p×p mesh with tracing.
fn run_symm3d(n: usize, p: usize, n_dup: usize, profile: MachineProfile) -> SimOutput<f64> {
    let cfg = SimConfig::natural(p * p * p, 1, profile).with_trace();
    run(cfg, move |rc: RankCtx| {
        let m3 = Mesh3D::new(&rc, p);
        let grid = BlockGrid::new(n, p);
        let bundles = m3.dup_bundles(n_dup);
        let d_block = (m3.k == 0).then(|| {
            let (r, c) = grid.block_dims(m3.i, m3.j);
            BlockBuf::Phantom(r, c)
        });
        rc.world().barrier();
        let t0 = rc.now();
        let input = SymmInput { n, d_block };
        let _ = symm_square_cube_optimized(&rc, &m3, &bundles, &input);
        rc.world().barrier();
        (rc.now() - t0).as_secs_f64()
    })
    .expect("symm3d run")
}

fn trace_json<T>(out: &SimOutput<T>) -> String {
    let spans = out.trace.as_ref().expect("tracing enabled").spans();
    serde_json::to_string(&ovcomm_obs::trace_to_json_with_names(spans, actor_name))
        .expect("trace serializes")
}

/// Two identically-configured runs must agree bit-for-bit on every
/// virtual-time observable: byte counters, duration histograms and the
/// exported trace JSON. Gauges are deliberately excluded — progress-pool
/// occupancy/spawn counts depend on OS thread scheduling, which is exactly
/// why they are kept out of counters and histograms.
#[test]
fn seeded_symm3d_metrics_and_trace_are_deterministic() {
    let a = run_symm3d(512, 2, 2, MachineProfile::test_profile());
    let b = run_symm3d(512, 2, 2, MachineProfile::test_profile());

    assert!(!a.metrics.counters.is_empty(), "counters were recorded");
    assert!(!a.metrics.histograms.is_empty(), "histograms were recorded");
    assert_eq!(a.metrics.counters, b.metrics.counters);
    assert_eq!(a.metrics.histograms, b.metrics.histograms);
    assert_eq!(a.makespan, b.makespan);

    let (ja, jb) = (trace_json(&a), trace_json(&b));
    assert!(ja.contains("traceEvents"));
    assert_eq!(ja, jb, "exported trace JSON is bit-identical");
}

/// The paper's core claim, observed at the NIC: duplicating communicators
/// (N_DUP = 4) pipelines chunks so that more of each NIC's busy time carries
/// at least two concurrent flows than with a single communicator.
#[test]
fn ndup4_overlaps_more_nic_time_than_ndup1() {
    let profile = MachineProfile::stampede2_skylake();
    let m1 = metrics_block(&run_symm3d(2048, 2, 1, profile.clone()));
    let m4 = metrics_block(&run_symm3d(2048, 2, 4, profile));

    assert!(m1.nic_busy_frac > 0.0 && m4.nic_busy_frac > 0.0);
    assert!(
        m4.overlap_efficiency > m1.overlap_efficiency,
        "N_DUP=4 should overlap more NIC busy time than N_DUP=1: {} vs {}",
        m4.overlap_efficiency,
        m1.overlap_efficiency,
    );
}

/// `SimConfig::with_trace_out` writes a file that parses as JSON and
/// satisfies the Chrome trace-event structural rules.
#[test]
fn trace_out_writes_valid_perfetto_json() {
    let path = std::env::temp_dir().join(format!("ovcomm_trace_{}.json", std::process::id()));
    let cfg = SimConfig::natural(4, 1, MachineProfile::test_profile()).with_trace_out(path.clone());
    let out = run(cfg, move |rc: RankCtx| {
        let w = rc.world();
        let data = (rc.rank() == 0).then_some(Payload::Phantom(1 << 20));
        let r = w.ibcast(0, data, 1 << 20);
        let _ = w.wait_traced(&r, "wait MPI_Ibcast");
    })
    .expect("bcast run");
    assert!(out.trace.is_some(), "with_trace_out implies tracing");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let v = serde_json::from_str(&text).expect("trace file is valid JSON");
    ovcomm_obs::validate_trace_events(&v).expect("well-formed trace events");
    assert!(text.contains("wait MPI_Ibcast"), "wait span exported");
}
