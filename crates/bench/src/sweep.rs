//! Algorithm sweep: every collective algorithm, measured and linted.
//!
//! For each (collective, algorithm, communicator size, message size) cell
//! the sweep compiles the per-rank [`CollPlan`](ovcomm_simmpi::plan)s,
//! runs the static plan linter on them, then measures the collective's
//! virtual completion time with that algorithm forced through the
//! selector — under `VerifyMode::Strict`, so every measured run doubles
//! as a dynamic correctness check. The records feed the fitted selector
//! (`ovcomm_core::fit_selector`) and the `algo_sweep` bench binary.

// Benchmark drivers fail loudly by design: `expect`/`unwrap` here surface
// simulator errors (including Strict-mode verification findings) directly
// as harness panics rather than recoverable results.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ovcomm_core::AlgoSample;
use ovcomm_simmpi::plan::{self, chunk_bounds, kind_short, CollAlgo};
use ovcomm_simmpi::{run, CollKind, CollSelector, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

/// The collectives the sweep covers (everything with an algorithm).
pub const SWEEP_KINDS: &[CollKind] = &[
    CollKind::Bcast,
    CollKind::Reduce,
    CollKind::Allreduce,
    CollKind::Gather,
    CollKind::Scatter,
    CollKind::Allgather,
    CollKind::Barrier,
];

/// One measured sweep cell.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRecord {
    /// Collective name (`bcast`, `reduce`, …).
    pub coll: String,
    /// Algorithm short name (`binomial`, `ring`, …).
    pub algo: String,
    /// Communicator size.
    pub p: usize,
    /// Logical payload bytes.
    pub n: usize,
    /// Virtual completion time in seconds.
    pub seconds: f64,
    /// Total messages across all ranks' plans.
    pub messages: usize,
    /// Static plan-lint findings (must be empty for a healthy build).
    pub lint_findings: Vec<String>,
}

/// Measure one cell: compile + lint the plans, then run the collective
/// with `algo` forced, under Strict dynamic verification.
pub fn measure_cell(profile: &MachineProfile, algo: CollAlgo, p: usize, n: usize) -> SweepRecord {
    let kind = algo.kind();
    let plans = plan::build_all(kind, algo, p, n, 0);
    let messages = plans.iter().map(|pl| pl.messages()).sum();
    let lint_findings: Vec<String> = plan::lint_plans(&plans)
        .iter()
        .map(|f| f.to_string())
        .collect();
    let sel = CollSelector::default().force(algo);
    let cfg = SimConfig::natural(p, 1, profile.clone()).with_coll_select(sel);
    let out = run(cfg, move |rc: RankCtx| {
        let w = rc.world();
        match kind {
            CollKind::Bcast => {
                let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
                let _ = w.bcast(0, data, n);
            }
            CollKind::Reduce => {
                let _ = w.reduce(0, Payload::Phantom(n));
            }
            CollKind::Allreduce => {
                let _ = w.allreduce(Payload::Phantom(n));
            }
            CollKind::Scatter => {
                let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
                let _ = w.scatter(0, data, n);
            }
            CollKind::Gather => {
                let b = chunk_bounds(n, p);
                let me = rc.rank();
                let _ = w.gather(0, Payload::Phantom(b[me + 1] - b[me]), n);
            }
            CollKind::Allgather => {
                let b = chunk_bounds(n, p);
                let me = rc.rank();
                let _ = w.allgather(Payload::Phantom(b[me + 1] - b[me]), n);
            }
            CollKind::Barrier => w.barrier(),
            CollKind::Dup | CollKind::Split => unreachable!("not an algorithmic collective"),
        }
    })
    .expect("algorithm-sweep run (Strict verify)");
    SweepRecord {
        coll: kind_short(kind).to_string(),
        algo: algo.short().to_string(),
        p,
        n,
        seconds: out.makespan.as_secs_f64(),
        messages,
        lint_findings,
    }
}

/// The full sweep: every algorithm of every collective × `ps` × `sizes`
/// (barrier runs once per `p` at size 0).
pub fn algo_sweep(profile: &MachineProfile, ps: &[usize], sizes: &[usize]) -> Vec<SweepRecord> {
    let mut records = Vec::new();
    for &kind in SWEEP_KINDS {
        for algo in CollAlgo::for_kind(kind) {
            for &p in ps {
                let cell_sizes: &[usize] = if kind == CollKind::Barrier {
                    &[0]
                } else {
                    sizes
                };
                for &n in cell_sizes {
                    records.push(measure_cell(profile, algo, p, n));
                }
            }
        }
    }
    records
}

/// Convert sweep records into the samples `ovcomm_core::fit_selector`
/// consumes.
pub fn sweep_samples(records: &[SweepRecord]) -> Vec<AlgoSample> {
    records
        .iter()
        .filter_map(|r| {
            let kind = plan::parse_kind(&r.coll)?;
            let algo = CollAlgo::parse_for(kind, &r.algo)?;
            Some(AlgoSample {
                algo,
                p: r.p,
                n: r.n,
                seconds: r.seconds,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_is_clean_and_timed() {
        let profile = MachineProfile::test_profile();
        let r = measure_cell(&profile, CollAlgo::AllreduceRing, 5, 64 * 1024);
        assert!(r.lint_findings.is_empty(), "{:?}", r.lint_findings);
        assert!(r.seconds > 0.0);
        assert!(r.messages > 0);
        assert_eq!(r.coll, "allreduce");
        assert_eq!(r.algo, "ring");
    }

    #[test]
    fn sweep_samples_roundtrip() {
        let profile = MachineProfile::test_profile();
        let recs = vec![
            measure_cell(&profile, CollAlgo::GatherBinomial, 4, 4096),
            measure_cell(&profile, CollAlgo::GatherLinear, 4, 4096),
        ];
        let samples = sweep_samples(&recs);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].algo, CollAlgo::GatherBinomial);
    }
}
