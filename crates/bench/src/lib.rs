//! # ovcomm-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§V). Each artifact has a binary
//! (`cargo run -p ovcomm-bench --release --bin <name>`):
//!
//! | artifact | binary |
//! |---|---|
//! | Fig. 3 (p2p bandwidth vs size vs PPN) | `fig3_p2p_bandwidth` |
//! | Fig. 5 (bcast/reduce bandwidth, 3 cases) | `fig5_coll_bandwidth` |
//! | Fig. 6 (post/wait time diagram) | `fig6_time_diagram` |
//! | §V-A (α–β model vs simulator) | `sec5a_alpha_beta` |
//! | Table I (Alg 3/4/5 TFlops) | `table1_algorithms` |
//! | Table II (N_DUP sweep) | `table2_ndup_sweep` |
//! | Table III (PPN sweep) | `table3_ppn_sweep` |
//! | Table IV (volume/bandwidth/time) | `table4_comm_volume` |
//! | Table V (2.5D sweep) | `table5_25d` |
//! | Collective algorithm sweep (CollPlan) | `algo_sweep` |
//! | Sim-vs-rt validation report | `sim_vs_rt` |
//! | One-sided COSMA vs two-sided SUMMA | `rma_sweep` |
//!
//! Binaries that run kernels accept `--backend {sim,rt}` where noted:
//! `sim` (default) reports modeled virtual time from the flow simulator,
//! `rt` reports measured wall-clock time from the shared-memory runtime.
//! `sim_vs_rt` runs both and writes the divergence report
//! (`results/sim_vs_rt.json`).
//!
//! Each binary prints the paper-style table and writes a JSON record under
//! `results/` for EXPERIMENTS.md. Criterion benches under `benches/` wrap
//! representative configurations with virtual-time measurement
//! (`iter_custom`).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chart;
pub mod mcsweep;
pub mod metrics;
pub mod micro;
pub mod profile;
pub mod report;
pub mod sweep;
pub mod symm;
pub mod timeline;

pub use chart::{plot_loglog, Series};
pub use mcsweep::{mc_sweep, supports_sweep, McSweepRecord, McSweepSummary};
pub use metrics::{
    apply_coll_select, backend_arg, coll_select_arg, metrics_block, metrics_block_rt,
    trace_out_arg, Backend, MetricsBlock,
};
pub use micro::{
    coll_bandwidth, coll_bandwidth_metrics, p2p_bandwidth, p2p_bandwidth_metrics, CollCase,
    CollKind,
};
pub use profile::{profile_block, profile_block_rt};
pub use report::{canonical_json, canonicalize_value, merge_json, merge_rows, write_json, Table};
pub use sweep::{algo_sweep, measure_cell, sweep_samples, SweepRecord, SWEEP_KINDS};
pub use symm::{cosma_run, symm_run, MeshSpec, SymmStats};
pub use timeline::{render, Bar};
