//! SymmSquareCube benchmark runner: one configuration → TFlops and traffic
//! statistics, shared by the Table I/II/III/IV/V generators.

// Benchmark drivers fail loudly by design: `expect`/`unwrap` here surface
// simulator errors (including Strict-mode verification findings) directly
// as harness panics rather than recoverable results.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::NDupComms;
use ovcomm_densemat::{BlockBuf, BlockGrid};
use ovcomm_kernels::{
    symm_square_cube_25d, symm_square_cube_baseline, symm_square_cube_cosma,
    symm_square_cube_flops, symm_square_cube_optimized, symm_square_cube_original, Mesh25D, Mesh2D,
    Mesh3D, SymmInput,
};
use ovcomm_purify::KernelChoice;
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

use crate::metrics::{apply_coll_select, metrics_block, MetricsBlock};

/// The process-mesh geometry of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshSpec {
    /// p×p×p (3-D algorithms).
    Cube {
        /// Mesh dimension.
        p: usize,
    },
    /// q×q×c (2.5D algorithm).
    TwoFiveD {
        /// Square dimension.
        q: usize,
        /// Replication factor.
        c: usize,
    },
}

impl MeshSpec {
    /// Total ranks.
    pub fn nranks(&self) -> usize {
        match self {
            MeshSpec::Cube { p } => p * p * p,
            MeshSpec::TwoFiveD { q, c } => q * q * c,
        }
    }

    /// Human-readable mesh string (paper style).
    pub fn label(&self) -> String {
        match self {
            MeshSpec::Cube { p } => format!("{p}x{p}x{p}"),
            MeshSpec::TwoFiveD { q, c } => format!("{q}x{q}x{c}"),
        }
    }
}

/// Measured statistics of one kernel configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SymmStats {
    /// Matrix dimension.
    pub n: usize,
    /// Mesh label.
    pub mesh: String,
    /// Processes per node.
    pub ppn: usize,
    /// Nodes used (⌈ranks/ppn⌉).
    pub nodes: usize,
    /// Average kernel time per call (seconds, virtual).
    pub time_per_call: f64,
    /// TFlops (4N³ per call / time).
    pub tflops: f64,
    /// Inter-node bytes per call.
    pub inter_bytes_per_call: u64,
    /// Intra-node bytes per call.
    pub intra_bytes_per_call: u64,
    /// Modeled per-call local-GEMM time of the critical rank (seconds).
    pub compute_time: f64,
    /// Observability block of the measured run (overlap efficiency, NIC
    /// utilization, wait-time share).
    pub metrics: MetricsBlock,
}

/// Run `iters` back-to-back SymmSquareCube calls (barrier-separated, like
/// the purification loop) with phantom paper-scale data and return averaged
/// statistics.
pub fn symm_run(
    profile: &MachineProfile,
    n: usize,
    mesh: MeshSpec,
    choice: KernelChoice,
    ppn: usize,
    iters: usize,
) -> SymmStats {
    assert!(iters >= 1);
    let nranks = mesh.nranks();
    let cfg = apply_coll_select(SimConfig::natural(nranks, ppn, profile.clone()));
    let nodes = nranks.div_ceil(ppn);
    let out = run(cfg, move |rc: RankCtx| match mesh {
        MeshSpec::Cube { p } => {
            let m3 = Mesh3D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let bundles = match choice {
                KernelChoice::Optimized { n_dup } => Some(m3.dup_bundles(n_dup)),
                _ => None,
            };
            let d_block = (m3.k == 0).then(|| {
                let (r, c) = grid.block_dims(m3.i, m3.j);
                BlockBuf::Phantom(r, c)
            });
            rc.world().barrier();
            let t0 = rc.now();
            for _ in 0..iters {
                let input = SymmInput {
                    n,
                    d_block: d_block.clone(),
                };
                match choice {
                    KernelChoice::Original => {
                        let _ = symm_square_cube_original(&rc, &m3, &input);
                    }
                    KernelChoice::Baseline => {
                        let _ = symm_square_cube_baseline(&rc, &m3, &input);
                    }
                    KernelChoice::Optimized { .. } => {
                        let _ =
                            symm_square_cube_optimized(&rc, &m3, bundles.as_ref().unwrap(), &input);
                    }
                    KernelChoice::TwoFiveD { .. } => unreachable!(),
                }
                rc.world().barrier();
            }
            (rc.now() - t0).as_secs_f64()
        }
        MeshSpec::TwoFiveD { q, c } => {
            let n_dup = match choice {
                KernelChoice::TwoFiveD { n_dup, .. } => n_dup,
                _ => panic!("2.5D mesh needs the 2.5D kernel choice"),
            };
            let m25 = Mesh25D::new(&rc, q, c);
            let grid = BlockGrid::new(n, q);
            let grd_ndup = NDupComms::new(&m25.grd, n_dup);
            let d_block = (m25.k == 0).then(|| {
                let (r, cc) = grid.block_dims(m25.i, m25.j);
                BlockBuf::Phantom(r, cc)
            });
            rc.world().barrier();
            let t0 = rc.now();
            for _ in 0..iters {
                let input = SymmInput {
                    n,
                    d_block: d_block.clone(),
                };
                let _ = symm_square_cube_25d(&rc, &m25, &grd_ndup, &input);
                rc.world().barrier();
            }
            (rc.now() - t0).as_secs_f64()
        }
    })
    .unwrap_or_else(|e| panic!("symm_run n={n} {} ppn={ppn}: {e}", mesh.label()));

    let total: f64 = out.results.iter().cloned().fold(0.0, f64::max);
    let time_per_call = total / iters as f64;
    let flops = symm_square_cube_flops(n);

    // Modeled per-rank GEMM time (two multiplications over the mesh's
    // partition of the N³ work).
    let compute_time = match mesh {
        MeshSpec::Cube { p } | MeshSpec::TwoFiveD { q: p, .. } => {
            let b = n.div_ceil(p) as f64;
            let rate = profile.process_flops(ppn, n.div_ceil(p));
            // Each rank multiplies blocks worth ~2·b³ flops per phase; with
            // 2.5D each plane does q/c steps of b³-ish blocks — the same
            // total per rank.
            let per_rank = match mesh {
                MeshSpec::Cube { .. } => 2.0 * 2.0 * b * b * b,
                MeshSpec::TwoFiveD { q, c } => 2.0 * 2.0 * b * b * b * (q / c) as f64 / 1.0,
            };
            per_rank / rate
        }
    };

    SymmStats {
        n,
        mesh: mesh.label(),
        ppn,
        nodes,
        time_per_call,
        tflops: flops / time_per_call / 1e12,
        inter_bytes_per_call: out.inter_node_bytes / iters as u64,
        intra_bytes_per_call: out.intra_node_bytes / iters as u64,
        compute_time,
        metrics: metrics_block(&out),
    }
}

/// Run `iters` back-to-back COSMA-style one-sided SymmSquareCube calls
/// (barrier-separated) on a `p×p` mesh with phantom paper-scale data and
/// return averaged statistics — the one-sided counterpart of [`symm_run`]
/// for the Table V / `rma_sweep` comparisons.
pub fn cosma_run(
    profile: &MachineProfile,
    n: usize,
    p: usize,
    ppn: usize,
    iters: usize,
) -> SymmStats {
    assert!(iters >= 1);
    let nranks = p * p;
    let cfg = apply_coll_select(SimConfig::natural(nranks, ppn, profile.clone()));
    let nodes = nranks.div_ceil(ppn);
    let out = run(cfg, move |rc: RankCtx| {
        let mesh = Mesh2D::new(&rc, p);
        let grid = BlockGrid::new(n, p);
        let (r, c) = grid.block_dims(mesh.i, mesh.j);
        rc.world().barrier();
        let t0 = rc.now();
        for _ in 0..iters {
            let input = SymmInput {
                n,
                d_block: Some(BlockBuf::Phantom(r, c)),
            };
            let _ = symm_square_cube_cosma(&rc, &mesh, &input);
            rc.world().barrier();
        }
        (rc.now() - t0).as_secs_f64()
    })
    .unwrap_or_else(|e| panic!("cosma_run n={n} {p}x{p} ppn={ppn}: {e}"));

    let total: f64 = out.results.iter().cloned().fold(0.0, f64::max);
    let time_per_call = total / iters as f64;
    let flops = symm_square_cube_flops(n);
    let b = n.div_ceil(p) as f64;
    let rate = profile.process_flops(ppn, n.div_ceil(p));
    // Two multiplications, each p block-GEMM steps of 2·b³ flops per rank.
    let compute_time = 2.0 * p as f64 * 2.0 * b * b * b / rate;

    SymmStats {
        n,
        mesh: format!("{p}x{p}"),
        ppn,
        nodes,
        time_per_call,
        tflops: flops / time_per_call / 1e12,
        inter_bytes_per_call: out.inter_node_bytes / iters as u64,
        intra_bytes_per_call: out.intra_node_bytes / iters as u64,
        compute_time,
        metrics: metrics_block(&out),
    }
}
