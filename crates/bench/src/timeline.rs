//! ASCII Gantt rendering of trace spans — a terminal rendition of the
//! paper's Fig. 6 stacked time bars.

/// One bar to render.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Row label (operation name).
    pub label: String,
    /// Start time in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Fill character (e.g. '#' for posts, '=' for waits, '%' blocking).
    pub fill: char,
}

/// Render bars on a shared time axis, `width` columns wide.
pub fn render(bars: &[Bar], width: usize) -> String {
    if bars.is_empty() {
        return String::new();
    }
    let t_end = bars
        .iter()
        .map(|b| b.start_us + b.dur_us)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let label_w = bars
        .iter()
        .map(|b| b.label.len())
        .max()
        .unwrap_or(0)
        .min(48);
    let scale = width as f64 / t_end;
    let mut out = String::new();
    for b in bars {
        let start_col = (b.start_us * scale).round() as usize;
        let mut len = (b.dur_us * scale).round() as usize;
        if b.dur_us > 0.0 && len == 0 {
            len = 1;
        }
        let start_col = start_col.min(width);
        let len = len.min(width - start_col);
        out.push_str(&format!("{:<label_w$} |", truncate(&b.label, label_w)));
        out.push_str(&" ".repeat(start_col));
        out.push_str(&b.fill.to_string().repeat(len));
        out.push_str(&" ".repeat(width - start_col - len));
        out.push_str(&format!("| {:7.0}us +{:.0}us\n", b.start_us, b.dur_us));
    }
    out.push_str(&format!(
        "{:<label_w$} |{}|\n",
        "",
        center(&format!("0 .. {:.0}us", t_end), width)
    ));
    out
}

fn truncate(s: &str, w: usize) -> String {
    if s.len() <= w {
        s.to_string()
    } else {
        format!("{}…", &s[..w.saturating_sub(1)])
    }
}

fn center(s: &str, w: usize) -> String {
    if s.len() >= w {
        return s[..w].to_string();
    }
    let pad = w - s.len();
    format!("{}{}{}", "-".repeat(pad / 2), s, "-".repeat(pad - pad / 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_proportional_bars() {
        let bars = vec![
            Bar {
                label: "post".into(),
                start_us: 0.0,
                dur_us: 100.0,
                fill: '#',
            },
            Bar {
                label: "wait".into(),
                start_us: 100.0,
                dur_us: 300.0,
                fill: '=',
            },
        ];
        let s = render(&bars, 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("##"));
        assert!(lines[1].contains("==="));
        // Wait bar is ~3x the post bar.
        let hashes = lines[0].matches('#').count();
        let eqs = lines[1].matches('=').count();
        assert!((eqs as f64 / hashes as f64 - 3.0).abs() < 0.5);
    }

    #[test]
    fn tiny_bars_still_visible() {
        let bars = vec![Bar {
            label: "blip".into(),
            start_us: 0.0,
            dur_us: 0.001,
            fill: '#',
        }];
        let s = render(&bars, 60);
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(render(&[], 40).is_empty());
    }
}
