//! Model-checking sweep: every `CollPlan` builder, exhaustively
//! schedule-checked.
//!
//! Where [`crate::sweep`] measures the algorithms, this sweep *verifies*
//! them: each (collective, algorithm, p, n, root) cell compiles the
//! per-rank plans and runs the stateful model checker
//! ([`plan::model_check`]) over every receive-match interleaving at every
//! eager/rendezvous cutpoint. The partial-order reduction makes the
//! shipped (collision-free) builders deterministic to explore, so the
//! full grid — all builders × p ∈ {2..17, 32, 64, 128} — finishes in
//! seconds and runs as a CI gate (`algo_sweep --mc --fail-on-lint`).
//!
//! Beyond the per-shape grid the sweep checks:
//!
//! * **Compositions**: dup'd (distinct contexts) and sequenced (distinct
//!   sequence numbers) instance pairs must stay isolated — no tag-space
//!   overlap, no cross-instance matches.
//! * **`supports` honesty** ([`supports_sweep`], `--mc-supports`): for
//!   every algorithm and every p ∈ 1..=256, either
//!   `CollAlgo::supports(p)` is false, or the builder must produce plans
//!   that pass the model check — no panics, no findings.

// Benchmark drivers fail loudly by design (see crate::sweep).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ovcomm_simmpi::plan::{
    self, dup_instances, kind_short, seq_instances, CollAlgo, McConfig, McReport,
};
use serde::Serialize;

/// One model-checked sweep cell.
#[derive(Debug, Clone, Serialize)]
pub struct McSweepRecord {
    /// Collective name (`bcast`, `reduce`, …).
    pub coll: String,
    /// Algorithm short name (`binomial`, `ring`, …).
    pub algo: String,
    /// Composition shape: `single`, `dup2`, or `seq2`.
    pub compose: String,
    /// Communicator size.
    pub p: usize,
    /// Logical payload bytes.
    pub n: usize,
    /// Collective root (0 for rootless collectives).
    pub root: usize,
    /// Protocol cutpoints explored.
    pub cutpoints: usize,
    /// Interleaving states explored beyond the deterministic pass.
    pub states: usize,
    /// Total scheduler actions executed.
    pub actions: usize,
    /// Rendered findings (must be empty for a healthy build).
    pub findings: Vec<String>,
    /// Whether any cutpoint hit the state budget (treated as a failure).
    pub truncated: bool,
}

/// Aggregate of one sweep run.
#[derive(Debug, Clone, Serialize)]
pub struct McSweepSummary {
    /// Single-instance cells checked.
    pub cells: usize,
    /// Composed (dup/seq) cells checked.
    pub composed: usize,
    /// (algo, p) pairs covered by the `supports` honesty check.
    pub supports_checked: usize,
    /// Total findings across all cells (0 for a healthy build).
    pub findings: usize,
    /// Total states explored.
    pub states: usize,
    /// Wall-clock seconds for the whole sweep.
    pub seconds: f64,
}

fn root_for(algo: CollAlgo, p: usize) -> usize {
    match algo.kind() {
        ovcomm_simmpi::CollKind::Allreduce
        | ovcomm_simmpi::CollKind::Allgather
        | ovcomm_simmpi::CollKind::Barrier => 0,
        // Rooted collectives: the last rank is the adversarial choice
        // (exercises every rotation in the chunked builders).
        _ => p.saturating_sub(1),
    }
}

fn record(
    algo: CollAlgo,
    compose: &str,
    p: usize,
    n: usize,
    root: usize,
    rep: &McReport,
) -> McSweepRecord {
    McSweepRecord {
        coll: kind_short(algo.kind()).to_string(),
        algo: algo.short().to_string(),
        compose: compose.to_string(),
        p,
        n,
        root,
        cutpoints: rep.cutpoints.len(),
        states: rep.states,
        actions: rep.actions,
        findings: rep.findings.iter().map(|f| f.to_string()).collect(),
        truncated: rep.truncated,
    }
}

/// Run the model-checking sweep over the builder grid plus dup/seq
/// compositions. `full` selects the CI grid (p up to 128, two sizes);
/// otherwise a smoke grid.
pub fn mc_sweep(full: bool) -> (Vec<McSweepRecord>, McSweepSummary) {
    let t0 = std::time::Instant::now();
    let cfg = McConfig::default();
    let ps: Vec<usize> = if full {
        (2..=17).chain([32, 64, 128]).collect()
    } else {
        vec![2, 3, 4, 5, 8]
    };
    let sizes: Vec<usize> = if full { vec![64, 4096] } else { vec![256] };

    let mut records = Vec::new();
    let mut cells = 0usize;
    let mut composed = 0usize;

    for &algo in CollAlgo::all() {
        for &p in &ps {
            if !algo.supports(p) {
                continue;
            }
            let root = root_for(algo, p);
            for &n in &sizes {
                let plans = plan::build_all(algo.kind(), algo, p, n, root);
                let rep = plan::model_check_single(&plans, &cfg);
                records.push(record(algo, "single", p, n, root, &rep));
                cells += 1;
            }
        }
        // Composed instances at a representative shape: dup'd pairs
        // (table II's N_DUP idiom) and back-to-back sequenced calls.
        for &p in &[4usize, 8] {
            if !algo.supports(p) {
                continue;
            }
            let root = root_for(algo, p);
            let plans = plan::build_all(algo.kind(), algo, p, 1024, root);
            let rep = plan::model_check(&dup_instances(&plans, 2), &cfg);
            records.push(record(algo, "dup2", p, 1024, root, &rep));
            let rep = plan::model_check(&seq_instances(&plans, 2), &cfg);
            records.push(record(algo, "seq2", p, 1024, root, &rep));
            composed += 2;
        }
    }

    let summary = McSweepSummary {
        cells,
        composed,
        supports_checked: 0,
        findings: records.iter().map(|r| r.findings.len()).sum(),
        states: records.iter().map(|r| r.states).sum(),
        seconds: t0.elapsed().as_secs_f64(),
    };
    (records, summary)
}

/// Exhaustive `supports` honesty pass: for every algorithm and every
/// p ∈ 1..=256, either `supports(p)` is false or building the plans must
/// succeed (no panics) and pass the model checker. The main grid already
/// does the full protocol-cutpoint sweep at representative p; here the
/// all-rendezvous cutpoint suffices (see [`McConfig::cut_override`]) —
/// it dominates for deadlocks and matching is cutoff-independent — which
/// keeps the 13 × 256 cells affordable on one core. Records are emitted
/// only for unclean cells.
pub fn supports_sweep() -> (Vec<McSweepRecord>, McSweepSummary) {
    let t0 = std::time::Instant::now();
    let cfg = McConfig {
        cut_override: Some(vec![0]),
        ..McConfig::default()
    };
    let mut records = Vec::new();
    let mut supports_checked = 0usize;
    let mut states = 0usize;
    for &algo in CollAlgo::all() {
        for p in 1..=256usize {
            if !algo.supports(p) {
                continue;
            }
            let root = root_for(algo, p);
            let plans = plan::build_all(algo.kind(), algo, p, 1024, root);
            let rep = plan::model_check_single(&plans, &cfg);
            states += rep.states;
            if !rep.clean() {
                records.push(record(algo, "single", p, 1024, root, &rep));
            }
            supports_checked += 1;
        }
    }
    let summary = McSweepSummary {
        cells: 0,
        composed: 0,
        supports_checked,
        findings: records.iter().map(|r| r.findings.len()).sum(),
        states,
        seconds: t0.elapsed().as_secs_f64(),
    };
    (records, summary)
}
