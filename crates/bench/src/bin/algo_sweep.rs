//! Collective algorithm sweep over the `CollPlan` builders.
//!
//! Forces every algorithm of every collective through the shared plan
//! executor across a grid of communicator/message sizes, statically
//! linting each compiled plan shape and running each cell under Strict
//! dynamic verification. Prints the timing table, fits a
//! [`CollSelector`](ovcomm_simmpi::CollSelector) from the measurements,
//! and writes `results/algo_sweep.json`.
//!
//! Flags:
//! * `--smoke` — small grid for CI (seconds, not minutes);
//! * `--fail-on-lint` — exit nonzero if any static plan-lint finding
//!   (or Strict-mode dynamic finding, which aborts the run) appears;
//! * `--mc` — run the schedule model checker instead of the timing
//!   sweep: every builder × p ∈ {2..17, 32, 64, 128} × sizes ×
//!   protocol cutpoints, plus dup/seq compositions; writes
//!   `results/mc_sweep.json` and (with `--fail-on-lint`) exits nonzero
//!   on any finding or truncated exploration;
//! * `--mc-supports` — the exhaustive `supports(p)` honesty pass:
//!   every algorithm × p ∈ 1..=256 must build and model-check clean at
//!   the all-rendezvous cutpoint, or report `supports(p) == false`;
//!   writes `results/mc_supports.json`;
//! * `--coll-select <spec>` — accepted for uniformity with the other
//!   binaries but ignored here: the sweep forces each algorithm itself.

use ovcomm_bench::{
    algo_sweep, mc_sweep, supports_sweep, sweep_samples, write_json, McSweepRecord, McSweepSummary,
    Table,
};
use ovcomm_core::fit_selector;
use ovcomm_simnet::MachineProfile;

fn fmt_size(n: usize) -> String {
    if n == 0 {
        "0".into()
    } else if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n >= 1024 && n.is_multiple_of(1024) {
        format!("{}K", n >> 10)
    } else {
        format!("{n}")
    }
}

fn fmt_threshold(n: usize) -> String {
    if n == usize::MAX {
        "always-short".into()
    } else if n == 0 {
        "always-long".into()
    } else {
        fmt_size(n)
    }
}

fn report_mc(out: &str, records: &[McSweepRecord], summary: &McSweepSummary, fail_on_lint: bool) {
    let mut table = Table::new(&[
        "collective",
        "algorithm",
        "compose",
        "p",
        "size",
        "cutpoints",
        "states",
        "findings",
    ]);
    for r in records.iter().filter(|r| !r.findings.is_empty()) {
        table.row(vec![
            r.coll.clone(),
            r.algo.clone(),
            r.compose.clone(),
            r.p.to_string(),
            fmt_size(r.n),
            r.cutpoints.to_string(),
            r.states.to_string(),
            r.findings.len().to_string(),
        ]);
    }
    let truncated = records.iter().filter(|r| r.truncated).count();
    if summary.findings > 0 {
        table.print();
        eprintln!("\n{out}: {} finding(s):", summary.findings);
        for r in records {
            for f in &r.findings {
                eprintln!(
                    "  [{}.{} {} p={} n={}] {f}",
                    r.coll, r.algo, r.compose, r.p, r.n
                );
            }
        }
    }

    write_json(out, &records);
    println!(
        "model check: {} cells + {} composed + {} supports(p) shapes, \
         {} states, {} finding(s), {} truncated, {:.2}s",
        summary.cells,
        summary.composed,
        summary.supports_checked,
        summary.states,
        summary.findings,
        truncated,
        summary.seconds,
    );
    if fail_on_lint && (summary.findings > 0 || truncated > 0) {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let fail_on_lint = args.iter().any(|a| a == "--fail-on-lint");
    if args.iter().any(|a| a == "--mc") {
        let (records, summary) = mc_sweep(!smoke);
        report_mc("mc_sweep", &records, &summary, fail_on_lint);
        return;
    }
    if args.iter().any(|a| a == "--mc-supports") {
        let (records, summary) = supports_sweep();
        report_mc("mc_supports", &records, &summary, fail_on_lint);
        return;
    }
    let profile = MachineProfile::stampede2_skylake();
    let (ps, sizes): (Vec<usize>, Vec<usize>) = if smoke {
        (vec![4, 5], vec![8 * 1024, 1 << 20])
    } else {
        (
            vec![4, 5, 8, 16],
            vec![1024, 16 * 1024, 256 * 1024, 4 << 20],
        )
    };

    let records = algo_sweep(&profile, &ps, &sizes);

    let mut table = Table::new(&[
        "collective",
        "algorithm",
        "p",
        "size",
        "time (us)",
        "msgs",
        "lint",
    ]);
    for r in &records {
        table.row(vec![
            r.coll.clone(),
            r.algo.clone(),
            r.p.to_string(),
            fmt_size(r.n),
            format!("{:.1}", r.seconds * 1e6),
            r.messages.to_string(),
            r.lint_findings.len().to_string(),
        ]);
    }
    table.print();

    let fitted = fit_selector(&sweep_samples(&records));
    println!("\nfitted selector thresholds (short-algorithm cutoffs):");
    println!("  bcast     <= {}", fmt_threshold(fitted.bcast_large));
    println!("  reduce    <= {}", fmt_threshold(fitted.reduce_large));
    println!("  allreduce <= {}", fmt_threshold(fitted.allreduce_large));
    println!("  gather    <= {}", fmt_threshold(fitted.gather_large));

    write_json("algo_sweep", &records);

    let lint_total: usize = records.iter().map(|r| r.lint_findings.len()).sum();
    if lint_total > 0 {
        eprintln!("algo_sweep: {lint_total} static plan-lint finding(s):");
        for r in &records {
            for f in &r.lint_findings {
                eprintln!("  [{}.{} p={} n={}] {f}", r.coll, r.algo, r.p, r.n);
            }
        }
        if fail_on_lint {
            std::process::exit(1);
        }
    } else {
        println!("\nstatic plan lint: clean ({} cells)", records.len());
    }
}
