//! rt fast-path microbenchmarks: p2p latency/bandwidth and
//! nonblocking-collective throughput on the wall-clock runtime, appended
//! as schema-versioned `kind: "rt-micro"` records to the root
//! `BENCH_ovcomm.json` (shared with `bench_trajectory`'s trajectory
//! records — each binary gates only against its own kind).
//!
//! The suite pins the communication patterns the lock-free transport
//! exists for:
//!
//! * `p2p_latency_small` — 2-rank 8-byte ping-pong, µs per roundtrip
//!   (eager path: spin-poll wait latency + envelope-matching overhead).
//! * `p2p_bandwidth_large` — 2-rank 1 MiB stream, MB/s (rendezvous
//!   path: match latency hidden behind payload hand-off).
//! * `iallreduce_small_ndup4` / `iallreduce_large_ndup4` — 4 ranks, four
//!   duplicated communicators with one in-flight nonblocking allreduce
//!   each (the paper's N_DUP overlap pattern), ops/s resp. MB/s
//!   (progress-engine sharding: each dup's plan runs on its own shard).
//! * `ibcast_small_ndup4` — same shape over nonblocking bcast, ops/s.
//!
//! Modes:
//!
//! - default: run the suite and append a record to `BENCH_ovcomm.json`.
//! - `--smoke`: fewer iterations (the CI configuration).
//! - `--check`: compare against the most recent committed rt-micro
//!   record with the same smoke flag *and* mailbox backend and **exit
//!   nonzero** when any case regresses by more than `--threshold`
//!   (default 30%); the file is not rewritten.
//! - `--mailbox locked|lockfree`: transport under test (default
//!   lockfree). Appending one record per backend makes the speedup
//!   visible in the committed history; the run prints the ratio table
//!   whenever a matching locked record exists.
//! - `--label <s>`: tag the appended record.
//!
//! Every run also writes the current record to `results/rt_micro.json`
//! for the CI artifact, whether or not the trajectory file is updated.

// Bench drivers fail loudly by design.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::Path;
use std::time::Duration;

use ovcomm_bench::{canonical_json, Table};
use ovcomm_rt::{MailboxBackend, RtConfig, RtRankCtx};
use ovcomm_simmpi::{Payload, VerifyMode};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;
use serde_json::Value;

/// Schema of one rt-micro record (bump on shape changes).
const MICRO_SCHEMA: u32 = 1;

/// Which way a case's number should move.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Better {
    Lower,
    Higher,
}

impl Better {
    fn name(self) -> &'static str {
        match self {
            Better::Lower => "lower",
            Better::Higher => "higher",
        }
    }
}

#[derive(Serialize)]
struct MicroCase {
    case: String,
    value: f64,
    unit: String,
    better: String,
}

#[derive(Serialize)]
struct MicroConfig {
    mailbox: String,
    progress_shards: usize,
    spin_budget_us: u64,
}

#[derive(Serialize)]
struct MicroRecord {
    kind: String,
    schema: u32,
    label: String,
    smoke: bool,
    config: MicroConfig,
    cases: Vec<MicroCase>,
}

/// Per-case iteration counts `(warmup, measured)`.
fn iters(case: &str, smoke: bool) -> (usize, usize) {
    match (case, smoke) {
        ("p2p_latency_small", false) => (100, 3000),
        ("p2p_latency_small", true) => (20, 400),
        ("p2p_bandwidth_large", false) => (4, 64),
        ("p2p_bandwidth_large", true) => (2, 12),
        (_, false) => (10, 200),
        (_, true) => (4, 40),
    }
}

/// Measurement config: verification off (its cost is Θ(messages) and
/// would dominate µs-scale measurements) and no sampler thread — the
/// box running this may well be a single hardware thread.
fn bench_cfg(nranks: usize, backend: MailboxBackend) -> RtConfig {
    RtConfig::natural(nranks, 1, MachineProfile::test_profile())
        .with_verify(VerifyMode::Off)
        .with_mailbox_backend(backend)
        .with_deadlock_timeout(Duration::from_secs(20))
        .without_sampler()
}

/// Max of the per-rank phase seconds — the slowest rank defines the
/// measured interval, exactly as a real MPI benchmark would report it.
fn run_seconds(
    backend: MailboxBackend,
    nranks: usize,
    f: impl Fn(&RtRankCtx) -> f64 + Send + Sync + Clone + 'static,
) -> f64 {
    let out = ovcomm_rt::run(bench_cfg(nranks, backend), move |rc: RtRankCtx| f(&rc))
        .unwrap_or_else(|e| panic!("rt_micro run failed: {e}"));
    out.results.iter().cloned().fold(0.0, f64::max)
}

/// 2-rank ping-pong: rank 0 sends, waits for the echo; µs per roundtrip.
fn p2p_latency(backend: MailboxBackend, smoke: bool) -> MicroCase {
    let (warmup, measured) = iters("p2p_latency_small", smoke);
    let secs = run_seconds(backend, 2, move |rc| {
        let w = rc.world();
        let me = rc.rank();
        let peer = 1 - me;
        let roundtrip = |tag: u32| {
            if me == 0 {
                w.wait(&w.isend(peer, tag, Payload::Phantom(8)));
                w.wait(&w.irecv(peer, tag));
            } else {
                w.wait(&w.irecv(peer, tag));
                w.wait(&w.isend(peer, tag, Payload::Phantom(8)));
            }
        };
        for _ in 0..warmup {
            roundtrip(1);
        }
        w.barrier();
        let t0 = rc.now();
        for _ in 0..measured {
            roundtrip(2);
        }
        (rc.now() - t0).as_secs_f64()
    });
    MicroCase {
        case: "p2p_latency_small".into(),
        value: secs / measured as f64 * 1e6,
        unit: "us/roundtrip".into(),
        better: Better::Lower.name().into(),
    }
}

/// 2-rank 1 MiB stream (rendezvous protocol), MB/s delivered.
fn p2p_bandwidth(backend: MailboxBackend, smoke: bool) -> MicroCase {
    const BYTES: usize = 1 << 20;
    let (warmup, measured) = iters("p2p_bandwidth_large", smoke);
    let secs = run_seconds(backend, 2, move |rc| {
        let w = rc.world();
        let me = rc.rank();
        let xfer = |tag: u32, n: usize| {
            if me == 0 {
                let reqs: Vec<_> = (0..n)
                    .map(|_| w.isend(1, tag, Payload::Phantom(BYTES)))
                    .collect();
                w.wait_all(&reqs);
            } else {
                let reqs: Vec<_> = (0..n).map(|_| w.irecv(0, tag)).collect();
                for r in &reqs {
                    let _ = w.wait(r);
                }
            }
        };
        xfer(1, warmup);
        w.barrier();
        let t0 = rc.now();
        xfer(2, measured);
        (rc.now() - t0).as_secs_f64()
    });
    MicroCase {
        case: "p2p_bandwidth_large".into(),
        value: (BYTES * measured) as f64 / secs / 1e6,
        unit: "MB/s".into(),
        better: Better::Higher.name().into(),
    }
}

/// N_DUP=4 nonblocking collective rounds on 4 ranks: each round posts
/// one op per dup communicator, then waits for all four — the paper's
/// overlap shape, with every dup's plan on a distinct progress shard.
fn ndup_collective(backend: MailboxBackend, smoke: bool, case: &'static str) -> MicroCase {
    const NDUP: usize = 4;
    let bytes: usize = match case {
        "iallreduce_small_ndup4" | "ibcast_small_ndup4" => 1 << 10,
        "iallreduce_large_ndup4" => 256 << 10,
        other => panic!("unknown ndup case {other}"),
    };
    let (warmup, measured) = iters(case, smoke);
    let secs = run_seconds(backend, 4, move |rc| {
        let w = rc.world();
        let comms = w.dup_n(NDUP);
        let round = |n: usize| {
            for _ in 0..n {
                let reqs: Vec<_> = comms
                    .iter()
                    .map(|c| match case {
                        "ibcast_small_ndup4" => {
                            let data = (rc.rank() == 0).then_some(Payload::Phantom(bytes));
                            c.ibcast(0, data, bytes)
                        }
                        _ => c.iallreduce(Payload::Phantom(bytes)),
                    })
                    .collect();
                for r in &reqs {
                    let _ = w.wait(r);
                }
            }
        };
        round(warmup);
        w.barrier();
        let t0 = rc.now();
        round(measured);
        (rc.now() - t0).as_secs_f64()
    });
    let ops = (measured * NDUP) as f64;
    let (value, unit) = if case == "iallreduce_large_ndup4" {
        ((ops * bytes as f64) / secs / 1e6, "MB/s".to_string())
    } else {
        (ops / secs, "ops/s".to_string())
    };
    MicroCase {
        case: case.into(),
        value,
        unit,
        better: Better::Higher.name().into(),
    }
}

fn backend_name(b: MailboxBackend) -> &'static str {
    match b {
        MailboxBackend::LockFree => "lockfree",
        MailboxBackend::Locked => "locked",
    }
}

/// The resolved per-backend defaults of [`RtConfig`]'s `None`/`0` knobs,
/// recorded so a committed number is reproducible from its record alone.
fn resolved_config(backend: MailboxBackend) -> MicroConfig {
    let (progress_shards, spin_budget_us) = match backend {
        MailboxBackend::LockFree => (8, 50),
        MailboxBackend::Locked => (1, 20),
    };
    MicroConfig {
        mailbox: backend_name(backend).into(),
        progress_shards,
        spin_budget_us,
    }
}

/// Is `r` an rt-micro record with this smoke flag and mailbox backend?
fn matches_run(r: &Value, smoke: bool, mailbox: &str) -> bool {
    matches!(r.get("kind"), Some(Value::Str(k)) if k == "rt-micro")
        && matches!(r.get("smoke"), Some(Value::Bool(b)) if *b == smoke)
        && r.get("config")
            .and_then(|c| c.get("mailbox"))
            .and_then(Value::as_str)
            == Some(mailbox)
}

/// Per-case regression list vs a committed baseline record.
fn regressions(prev: &Value, cur: &MicroRecord, thr: f64) -> Vec<String> {
    let empty = Vec::new();
    let prev_cases = prev
        .get("cases")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let mut bad = Vec::new();
    for c in &cur.cases {
        let Some(old) = prev_cases
            .iter()
            .find(|p| p.get("case").and_then(Value::as_str) == Some(&c.case))
            .and_then(|p| p.get("value"))
            .and_then(Value::as_f64)
        else {
            continue; // new case: passes vacuously until committed
        };
        let (regressed, pct) = if c.better == "lower" {
            (c.value > old * (1.0 + thr), c.value / old - 1.0)
        } else {
            (c.value < old * (1.0 - thr), 1.0 - c.value / old)
        };
        if regressed {
            bad.push(format!(
                "{}: {:.3} {} vs baseline {:.3} ({:+.1}% worse > {:.0}% allowed)",
                c.case,
                c.value,
                c.unit,
                old,
                pct * 100.0,
                thr * 100.0
            ));
        }
    }
    bad
}

/// Parse the trajectory file into its record list (empty when missing).
fn load_records(path: &Path) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match serde_json::from_str(&text) {
        Ok(v) => v
            .get("records")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default(),
        Err(e) => {
            eprintln!(
                "warning: {} unreadable ({e:?}); starting fresh",
                path.display()
            );
            Vec::new()
        }
    }
}

/// Print the speedup of `cur` over the most recent committed `locked`
/// record with the same smoke flag, when one exists.
fn print_speedup(records: &[Value], cur: &MicroRecord) {
    let Some(base) = records
        .iter()
        .rev()
        .find(|r| matches_run(r, cur.smoke, "locked"))
    else {
        return;
    };
    let empty = Vec::new();
    let base_cases = base
        .get("cases")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let mut table = Table::new(&["case", "locked", "this run", "speedup"]);
    for c in &cur.cases {
        let Some(old) = base_cases
            .iter()
            .find(|p| p.get("case").and_then(Value::as_str) == Some(&c.case))
            .and_then(|p| p.get("value"))
            .and_then(Value::as_f64)
        else {
            continue;
        };
        let speedup = if c.better == "lower" {
            old / c.value
        } else {
            c.value / old
        };
        table.row(vec![
            c.case.clone(),
            format!("{old:.3} {}", c.unit),
            format!("{:.3} {}", c.value, c.unit),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("\nvs committed locked baseline:");
    table.print();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
    };
    let smoke = flag("--smoke");
    let check = flag("--check");
    let label = opt("--label").unwrap_or_else(|| "dev".to_string());
    let thr: f64 = opt("--threshold").map_or(0.30, |s| s.parse().expect("--threshold"));
    let backend = match opt("--mailbox").as_deref() {
        None | Some("lockfree") => MailboxBackend::LockFree,
        Some("locked") => MailboxBackend::Locked,
        Some(other) => panic!("--mailbox must be locked or lockfree, got {other}"),
    };
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_ovcomm.json".to_string());
    let out_path = Path::new(&out_path);

    println!(
        "rt_micro: {} transport, {} iterations\n",
        backend_name(backend),
        if smoke { "smoke" } else { "full" }
    );
    let cases = vec![
        p2p_latency(backend, smoke),
        p2p_bandwidth(backend, smoke),
        ndup_collective(backend, smoke, "iallreduce_small_ndup4"),
        ndup_collective(backend, smoke, "iallreduce_large_ndup4"),
        ndup_collective(backend, smoke, "ibcast_small_ndup4"),
    ];
    let mut table = Table::new(&["case", "value", "unit", "better"]);
    for c in &cases {
        table.row(vec![
            c.case.clone(),
            format!("{:.3}", c.value),
            c.unit.clone(),
            c.better.clone(),
        ]);
    }
    table.print();

    let record = MicroRecord {
        kind: "rt-micro".into(),
        schema: MICRO_SCHEMA,
        label,
        smoke,
        config: resolved_config(backend),
        cases,
    };
    let mut records = load_records(out_path);
    print_speedup(&records, &record);

    // The CI artifact: always the current run, never the history.
    let record_value = serde_json::to_value(&record).expect("serialize rt-micro record");
    if std::fs::create_dir_all("results").is_ok() {
        match canonical_json(&record_value) {
            Ok(text) => match std::fs::write("results/rt_micro.json", text + "\n") {
                Ok(()) => println!("\nwrote results/rt_micro.json"),
                Err(e) => eprintln!("warning: cannot write results/rt_micro.json: {e}"),
            },
            Err(e) => eprintln!("warning: cannot serialize artifact: {e:?}"),
        }
    }

    if check {
        let prev = records
            .iter()
            .rev()
            .find(|r| matches_run(r, smoke, &record.config.mailbox));
        match prev {
            None => println!(
                "no committed rt-micro baseline (smoke={smoke}, mailbox={}); gate passes vacuously",
                record.config.mailbox
            ),
            Some(prev) => {
                let bad = regressions(prev, &record, thr);
                if bad.is_empty() {
                    println!(
                        "rt-micro gate: OK vs record `{}`",
                        prev.get("label").and_then(Value::as_str).unwrap_or("?")
                    );
                } else {
                    eprintln!("rt-micro gate: REGRESSION");
                    for b in &bad {
                        eprintln!("  {b}");
                    }
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    records.push(record_value);
    let file = Value::Object(vec![
        ("schema".to_string(), Value::UInt(1)),
        ("records".to_string(), Value::Array(records)),
    ]);
    let text = canonical_json(&file).expect("canonical rt-micro JSON");
    std::fs::write(out_path, text + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    println!("appended record to {}", out_path.display());
}
