//! Table I: performance (TFlops) of the original (Alg. 3), baseline
//! (Alg. 4) and optimized (Alg. 5, N_DUP = 4) SymmSquareCube algorithms on
//! the three molecular systems, 64 nodes, 4×4×4 mesh, PPN = 1.

use ovcomm_bench::{symm_run, write_json, MeshSpec, SymmStats, Table};
use ovcomm_purify::{KernelChoice, PAPER_SYSTEMS};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    dimension: usize,
    alg3_tflops: f64,
    alg4_tflops: f64,
    alg5_tflops: f64,
    speedup_5_over_4: f64,
    stats: Vec<SymmStats>,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let mesh = MeshSpec::Cube { p: 4 };
    let iters = 3;

    println!("Table I: SymmSquareCube performance, 64 nodes, PPN=1, N_DUP=4\n");
    let mut table = Table::new(&["System", "Dim", "Alg3 TF", "Alg4 TF", "Alg5 TF", "5/4"]);
    let mut rows = Vec::new();
    for sys in PAPER_SYSTEMS {
        let s3 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::Original,
            1,
            iters,
        );
        let s4 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::Baseline,
            1,
            iters,
        );
        let s5 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::Optimized { n_dup: 4 },
            1,
            iters,
        );
        let speedup = s4.time_per_call / s5.time_per_call;
        table.row(vec![
            sys.name.to_string(),
            sys.dimension.to_string(),
            format!("{:.2}", s3.tflops),
            format!("{:.2}", s4.tflops),
            format!("{:.2}", s5.tflops),
            format!("{:.2}", speedup),
        ]);
        rows.push(Row {
            system: sys.name.to_string(),
            dimension: sys.dimension,
            alg3_tflops: s3.tflops,
            alg4_tflops: s4.tflops,
            alg5_tflops: s5.tflops,
            speedup_5_over_4: speedup,
            stats: vec![s3, s4, s5],
        });
    }
    table.print();
    println!(
        "\npaper (Table I): Alg3/4/5 = 12.36/13.20/16.05 (1hsg_45), 16.83/17.57/20.57 (1hsg_60), \
         18.49/19.21/22.48 (1hsg_70); speedups 1.21/1.17/1.17."
    );
    write_json("table1_algorithms", &rows);
}
