//! Table IV: estimated inter-node communication volume, achievable
//! bandwidths (from the §V-B micro-benchmark) and estimated vs actual
//! inter-node communication time of the *baseline* SymmSquareCube for
//! different numbers of PPN (1hsg_70).
//!
//! Methodology (mirroring the paper's): the volume is the simulator's
//! inter-node byte counter for one kernel call; the reduce/bcast
//! bandwidths are measured with the §V-B micro-benchmark at this PPN and
//! the kernel's block size; the estimated time apportions the volume over
//! the nodes and op types; the actual time is the measured kernel time
//! minus the modeled local-GEMM time.

use ovcomm_bench::{coll_bandwidth, symm_run, write_json, CollCase, CollKind, MeshSpec, Table};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ppn: usize,
    mesh: String,
    volume_mb: f64,
    reduce_bw_gb_s: f64,
    bcast_bw_gb_s: f64,
    est_time_s: f64,
    actual_comm_time_s: f64,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sys = paper_system("1hsg_70").unwrap();
    let configs = [(1usize, 4usize), (2, 5), (4, 6), (6, 7), (8, 8)];

    println!("Table IV: baseline SymmSquareCube inter-node volume/bandwidth/time (1hsg_70)\n");
    let mut table = Table::new(&[
        "PPN",
        "volume(MB)",
        "Reduce BW(GB/s)",
        "Bcast BW(GB/s)",
        "est time(s)",
        "actual comm(s)",
    ]);
    let mut rows = Vec::new();
    for (ppn, p) in configs {
        let mesh = MeshSpec::Cube { p };
        let stats = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::Baseline,
            ppn,
            2,
        );
        let block = sys.dimension.div_ceil(p);
        let block_bytes = block * block * 8;
        // Micro-benchmark bandwidths at this PPN: collectives of group size
        // p with the kernel's block-sized messages, overlapped across PPN.
        let case = if ppn == 1 {
            CollCase::Blocking
        } else {
            CollCase::PpnOverlap(ppn)
        };
        let reduce_bw = coll_bandwidth(&profile, CollKind::Reduce, case, p, block_bytes);
        let bcast_bw = coll_bandwidth(&profile, CollKind::Bcast, case, p, block_bytes);
        // Apportion the measured volume to op types by their algorithmic
        // shares (3 bcasts + 2 reduces of 2(p−1)n/p, 2 p2p hand-backs).
        let coll_unit = 2.0 * (p as f64 - 1.0) / p as f64;
        let share_b = 3.0 * coll_unit;
        let share_r = 2.0 * coll_unit;
        let share_p = 2.0;
        let total_share = share_b + share_r + share_p;
        let vol = stats.inter_bytes_per_call as f64;
        let per_node = vol / stats.nodes as f64;
        let p2p_bw = profile.nic_bw;
        let est = per_node * (share_b / total_share) / bcast_bw
            + per_node * (share_r / total_share) / reduce_bw
            + per_node * (share_p / total_share) / p2p_bw;
        let actual_comm = (stats.time_per_call - stats.compute_time).max(0.0);
        table.row(vec![
            ppn.to_string(),
            format!("{:.1}", vol / 1e6),
            format!("{:.1}", reduce_bw / 1e9),
            format!("{:.1}", bcast_bw / 1e9),
            format!("{:.3}", est),
            format!("{:.3}", actual_comm),
        ]);
        rows.push(Row {
            ppn,
            mesh: mesh.label(),
            volume_mb: vol / 1e6,
            reduce_bw_gb_s: reduce_bw / 1e9,
            bcast_bw_gb_s: bcast_bw / 1e9,
            est_time_s: est,
            actual_comm_time_s: actual_comm,
        });
    }
    table.print();
    println!(
        "\npaper (Table IV): volume grows with PPN (265→430MB) while achievable reduce BW grows \
         (2.4→8.7 GB/s), so inter-node time falls (0.073→0.050s) — using more PPN pays despite \
         the extra volume."
    );
    write_json("table4_comm_volume", &rows);
}
