//! Figure 3: unidirectional point-to-point bandwidth vs message size for
//! PPN = 1, 2, 4, 8 across two nodes (all sources on one node).

use ovcomm_bench::{p2p_bandwidth_metrics, plot_loglog, write_json, MetricsBlock, Series, Table};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    msg_bytes: usize,
    ppn: usize,
    bandwidth_mb_s: f64,
    metrics: MetricsBlock,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sizes: Vec<usize> = vec![
        1,
        16,
        256,
        2 * 1024,
        16 * 1024,
        128 * 1024,
        1 << 20,
        4 << 20,
        16 << 20,
    ];
    let ppns = [1usize, 2, 4, 8];

    println!("Figure 3: unidirectional inter-node bandwidth (MB/s) vs message size\n");
    let mut headers: Vec<String> = vec!["msg".to_string()];
    headers.extend(ppns.iter().map(|p| format!("PPN={p}")));
    let mut table = Table::new(&headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let mut rows = Vec::new();
    for &msg in &sizes {
        let mut cells = vec![fmt_size(msg)];
        for &ppn in &ppns {
            let (bw, metrics) = p2p_bandwidth_metrics(&profile, ppn, msg);
            rows.push(Row {
                msg_bytes: msg,
                ppn,
                bandwidth_mb_s: bw / 1e6,
                metrics,
            });
            cells.push(format!("{:.0}", bw / 1e6));
        }
        table.row(cells);
    }
    table.print();
    // ASCII rendition of the figure itself.
    let glyphs = ['1', '2', '4', '8'];
    let series: Vec<Series> = ppns
        .iter()
        .zip(glyphs)
        .map(|(&ppn, glyph)| Series {
            label: format!("PPN={ppn}"),
            glyph,
            points: rows
                .iter()
                .filter(|r| r.ppn == ppn)
                .map(|r| (r.msg_bytes as f64, r.bandwidth_mb_s))
                .collect(),
        })
        .collect();
    println!("\nbandwidth (MB/s, log) vs message size (B, log):\n");
    print!("{}", plot_loglog(&series, 64, 16));
    println!("\npaper anchors: peak ≈ 12000 MB/s; a single process reaches peak only at very large messages.");
    write_json("fig3_p2p_bandwidth", &rows);
}

fn fmt_size(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{}MB", n >> 20)
    } else if n >= 1024 {
        format!("{}KB", n >> 10)
    } else {
        format!("{n}B")
    }
}
