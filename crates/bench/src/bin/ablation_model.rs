//! Ablation over the machine-model knobs that DESIGN.md calls out: how the
//! nonblocking-overlap gain (Alg 5 N_DUP=4 over baseline, 1hsg_70) depends
//! on per-rank progress parallelism (`reduce_parallel`), the single-stream
//! cap shape (`stream_nhalf`), the rendezvous handshake, and the posting
//! copy bandwidth. This quantifies which modeled effect the technique's
//! benefit actually comes from.

use ovcomm_bench::Table;
use ovcomm_bench::{symm_run, write_json, MeshSpec};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simnet::{MachineProfile, SimDur};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    baseline_tflops: f64,
    overlapped_tflops: f64,
    speedup: f64,
}

fn measure(profile: &MachineProfile, n: usize) -> (f64, f64, f64) {
    let mesh = MeshSpec::Cube { p: 4 };
    let s1 = symm_run(profile, n, mesh, KernelChoice::Optimized { n_dup: 1 }, 1, 2);
    let s4 = symm_run(profile, n, mesh, KernelChoice::Optimized { n_dup: 4 }, 1, 2);
    (s1.tflops, s4.tflops, s1.time_per_call / s4.time_per_call)
}

fn main() {
    let n = paper_system("1hsg_70").unwrap().dimension;
    let base = MachineProfile::stampede2_skylake();

    let variants: Vec<(&str, MachineProfile)> = vec![
        ("calibrated", base.clone()),
        ("serial progress (reduce_parallel=1)", {
            let mut p = base.clone();
            p.reduce_parallel = 1.0;
            p
        }),
        ("ideal progress (reduce_parallel=4)", {
            let mut p = base.clone();
            p.reduce_parallel = 4.0;
            p
        }),
        ("no single-stream penalty (nhalf=1B)", {
            let mut p = base.clone();
            p.stream_nhalf = 1.0;
            p
        }),
        ("strong stream penalty (nhalf=1MB)", {
            let mut p = base.clone();
            p.stream_nhalf = (1 << 20) as f64;
            p
        }),
        ("no rendezvous handshake", {
            let mut p = base.clone();
            p.rendezvous_rtt = SimDur::from_nanos(0);
            p
        }),
        ("slow posting copies (copy_bw=3GB/s)", {
            let mut p = base.clone();
            p.copy_bw = 3.0e9;
            p
        }),
    ];

    println!("Model ablation: Alg 5 N_DUP=4 vs N_DUP=1 (1hsg_70, 64 nodes, PPN=1)\n");
    let mut table = Table::new(&["variant", "N_DUP=1 TF", "N_DUP=4 TF", "speedup"]);
    let mut rows = Vec::new();
    for (name, profile) in variants {
        let (t1, t4, s) = measure(&profile, n);
        table.row(vec![
            name.to_string(),
            format!("{t1:.2}"),
            format!("{t4:.2}"),
            format!("{s:.3}"),
        ]);
        rows.push(Row {
            variant: name.to_string(),
            baseline_tflops: t1,
            overlapped_tflops: t4,
            speedup: s,
        });
    }
    table.print();
    println!(
        "\nreading guide: the overlap gain should shrink when progress is serialized and when \
         a single stream already saturates the NIC, and grow with a stronger stream penalty — \
         confirming the mechanism the paper attributes the speedup to."
    );
    write_json("ablation_model", &rows);
}
