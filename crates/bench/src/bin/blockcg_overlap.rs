//! Future-work demonstration (§VI): block CG iteration time with and
//! without overlapped Gram-matrix reductions, swept over mesh sizes. The
//! paper predicts reductions "involving large numbers of nodes" are the
//! bottleneck — so the latency hidden by overlapping the two simultaneous
//! reductions should grow with the mesh.

use ovcomm_bench::{metrics_block, profile_block, write_json, MetricsBlock, Table};
use ovcomm_densemat::{BlockBuf, BlockGrid, Partition1D};
use ovcomm_kernels::{block_cg, BlockCgConfig, CgComms, Mesh2D};
use ovcomm_obs::ProfileBlock;
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mesh_p: usize,
    nodes: usize,
    t_blocking_s: f64,
    t_overlap_s: f64,
    speedup: f64,
    metrics: MetricsBlock,
    profile: Option<ProfileBlock>,
}

fn cg_time(
    p: usize,
    n: usize,
    s: usize,
    overlap: bool,
) -> (f64, MetricsBlock, Option<ProfileBlock>) {
    let iters = 8;
    let out = run(
        SimConfig::natural(p * p, 1, MachineProfile::stampede2_skylake()).with_trace(),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let part = Partition1D::new(n, p);
            let (r, c) = grid.block_dims(mesh.i, mesh.j);
            let a = BlockBuf::Phantom(r, c);
            let b = BlockBuf::Phantom(part.len(mesh.j), s);
            let comms = CgComms::new(&mesh, 2);
            let cfg = BlockCgConfig {
                n,
                s,
                tol: 0.0,
                max_iter: iters,
                overlap,
            };
            rc.world().barrier();
            let t0 = rc.now();
            let _ = block_cg(&rc, &mesh, &comms, &cfg, &a, &b);
            rc.world().barrier();
            (rc.now() - t0).as_secs_f64() / iters as f64
        },
    )
    .expect("block CG run");
    let t = out.results.iter().cloned().fold(0.0, f64::max);
    let profile = profile_block(&out);
    (t, metrics_block(&out), profile)
}

fn main() {
    let n = 65536;
    let s = 8;
    println!("Block CG with overlapped Gram reductions (N = {n}, s = {s}, PPN=1)\n");
    let mut table = Table::new(&[
        "mesh",
        "nodes",
        "blocking s/iter",
        "overlap s/iter",
        "speedup",
    ]);
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 12, 16] {
        let (tb, _, _) = cg_time(p, n, s, false);
        let (to, metrics, profile) = cg_time(p, n, s, true);
        table.row(vec![
            format!("{p}x{p}"),
            (p * p).to_string(),
            format!("{tb:.6}"),
            format!("{to:.6}"),
            format!("{:.3}", tb / to),
        ]);
        rows.push(Row {
            mesh_p: p,
            nodes: p * p,
            t_blocking_s: tb,
            t_overlap_s: to,
            speedup: tb / to,
            metrics,
            profile,
        });
    }
    table.print();
    println!(
        "\nthe overlapped variant hides one reduce+broadcast latency chain per iteration; the \
         saving grows with the process count, as the paper's future-work section anticipates."
    );
    write_json("blockcg_overlap", &rows);
}
