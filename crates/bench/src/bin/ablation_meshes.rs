//! Ablation: mesh dimensionality at a fixed rank budget (64 ranks,
//! PPN = 1) — SUMMA (2-D, 8×8), 2.5D (8×8×1 = Cannon, 4×4×4 = fully
//! replicated) and the 3-D algorithm (4×4×4), with and without nonblocking
//! overlap. Shows the communication-volume ordering the paper's §II
//! describes: O(N²/√P) for 2-D vs O(N²/P^(2/3)) for 3-D, and what overlap
//! buys each of them.

use ovcomm_bench::{symm_run, write_json, MeshSpec, Table};
use ovcomm_densemat::{BlockBuf, BlockGrid};
use ovcomm_kernels::{
    symm_square_cube_flops, symm_square_cube_summa, Mesh2D, SummaBundles, SymmInput,
};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    mesh: String,
    n_dup: usize,
    tflops: f64,
    inter_gb: f64,
}

/// SUMMA runner (the shared harness covers the 3-D/2.5D cases).
fn summa_stats(profile: &MachineProfile, n: usize, p: usize, n_dup: usize) -> (f64, f64) {
    let out = run(
        SimConfig::natural(p * p, 1, profile.clone()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let bundles = SummaBundles::new(&mesh, n_dup);
            let (r, c) = grid.block_dims(mesh.i, mesh.j);
            let input = SymmInput {
                n,
                d_block: Some(BlockBuf::Phantom(r, c)),
            };
            rc.world().barrier();
            let t0 = rc.now();
            let _ = symm_square_cube_summa(&rc, &mesh, &bundles, &input);
            rc.world().barrier();
            (rc.now() - t0).as_secs_f64()
        },
    )
    .expect("summa run");
    let t = out.results.iter().cloned().fold(0.0, f64::max);
    (
        symm_square_cube_flops(n) / t / 1e12,
        out.inter_node_bytes as f64 / 1e9,
    )
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sys = paper_system("1hsg_70").unwrap();
    let n = sys.dimension;

    println!("Mesh-dimensionality ablation: 64 ranks, PPN=1, 1hsg_70\n");
    let mut table = Table::new(&["algorithm", "mesh", "N_DUP", "TFlops", "inter-node GB"]);
    let mut rows = Vec::new();

    for n_dup in [1usize, 4] {
        let (tf, gb) = summa_stats(&profile, n, 8, n_dup);
        table.row(vec![
            "SUMMA (2-D)".into(),
            "8x8".into(),
            n_dup.to_string(),
            format!("{tf:.2}"),
            format!("{gb:.1}"),
        ]);
        rows.push(Row {
            algorithm: "summa2d".into(),
            mesh: "8x8".into(),
            n_dup,
            tflops: tf,
            inter_gb: gb,
        });

        let s25 = symm_run(
            &profile,
            n,
            MeshSpec::TwoFiveD { q: 8, c: 1 },
            KernelChoice::TwoFiveD { c: 1, n_dup },
            1,
            2,
        );
        table.row(vec![
            "Cannon (2.5D, c=1)".into(),
            "8x8x1".into(),
            n_dup.to_string(),
            format!("{:.2}", s25.tflops),
            format!("{:.1}", s25.inter_bytes_per_call as f64 / 1e9),
        ]);
        rows.push(Row {
            algorithm: "cannon_c1".into(),
            mesh: "8x8x1".into(),
            n_dup,
            tflops: s25.tflops,
            inter_gb: s25.inter_bytes_per_call as f64 / 1e9,
        });

        let s25b = symm_run(
            &profile,
            n,
            MeshSpec::TwoFiveD { q: 4, c: 4 },
            KernelChoice::TwoFiveD { c: 4, n_dup },
            1,
            2,
        );
        table.row(vec![
            "2.5D (c=4)".into(),
            "4x4x4".into(),
            n_dup.to_string(),
            format!("{:.2}", s25b.tflops),
            format!("{:.1}", s25b.inter_bytes_per_call as f64 / 1e9),
        ]);
        rows.push(Row {
            algorithm: "25d_c4".into(),
            mesh: "4x4x4".into(),
            n_dup,
            tflops: s25b.tflops,
            inter_gb: s25b.inter_bytes_per_call as f64 / 1e9,
        });

        let s3 = symm_run(
            &profile,
            n,
            MeshSpec::Cube { p: 4 },
            KernelChoice::Optimized { n_dup },
            1,
            2,
        );
        table.row(vec![
            "3-D (Alg 5)".into(),
            "4x4x4".into(),
            n_dup.to_string(),
            format!("{:.2}", s3.tflops),
            format!("{:.1}", s3.inter_bytes_per_call as f64 / 1e9),
        ]);
        rows.push(Row {
            algorithm: "3d_alg5".into(),
            mesh: "4x4x4".into(),
            n_dup,
            tflops: s3.tflops,
            inter_gb: s3.inter_bytes_per_call as f64 / 1e9,
        });
    }
    table.print();
    println!(
        "\nexpected ordering: the 2-D algorithms move more data (O(N²/sqrt(P)) per rank) than \
         the replicated 2.5D/3-D ones (O(N²/P^(2/3))); overlap helps every variant."
    );
    write_json("ablation_meshes", &rows);
}
