//! Sim-vs-rt validation report: run the same kernel workloads on the
//! virtual-time simulator (modeled time) and the real shared-memory
//! runtime (measured wall-clock time), then quantify where the model
//! diverges from reality — per-kernel time ratios, overlap-efficiency
//! deltas, and a bit-identity check on the numerical results.
//!
//! `--backend sim` or `--backend rt` restricts the run to one side (the
//! JSON then carries only that side's columns); the default runs both and
//! emits the full divergence report to `results/sim_vs_rt.json`.

// Bench drivers fail loudly by design.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ovcomm_bench::{
    merge_json, metrics_block, metrics_block_rt, profile_block, profile_block_rt, MetricsBlock,
    Table,
};
use ovcomm_core::{NDupComms, RankHandle};
use ovcomm_densemat::{BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm_kernels::{
    matvec_blocking, matvec_pipelined, symm_square_cube_25d, symm_square_cube_baseline,
    symm_square_cube_cosma, symm_square_cube_optimized, symm_square_cube_summa, MatvecInput,
    Mesh25D, Mesh2D, Mesh3D, SummaBundles, SymmInput, VecBuf,
};
use ovcomm_obs::ProfileBlock;
use ovcomm_rt::{RtConfig, RtRankCtx};
use ovcomm_simmpi::{RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        1.0 / (1.0 + i.abs_diff(j) as f64) + if i == j { 0.5 } else { 0.0 }
    })
}

/// One kernel workload: generic over the backend's rank handle, returning
/// the flattened local result so the report can check bit-identity.
fn workload<R: RankHandle>(rc: &R, kernel: &str, n: usize) -> Vec<f64> {
    match kernel {
        "matvec-blocking" | "matvec-pipelined" => {
            let p = 2;
            let mesh = Mesh2D::new(rc, p);
            let part = Partition1D::new(n, p);
            let grid = BlockGrid::new(n, p);
            let a = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
            let x_full: Vec<f64> = (0..n).map(|t| (t as f64 * 0.3).sin()).collect();
            let (s, l) = part.range(mesh.j);
            let input = MatvecInput {
                n,
                a,
                x: VecBuf::Real(x_full[s..s + l].to_vec()),
            };
            let y = if kernel == "matvec-blocking" {
                matvec_blocking(rc, &mesh, &input)
            } else {
                let row_ndup = NDupComms::new(&mesh.row, 2);
                let col_ndup = NDupComms::new(&mesh.col, 2);
                matvec_pipelined(rc, &mesh, &row_ndup, &col_ndup, &input)
            };
            match y {
                VecBuf::Real(v) => v,
                VecBuf::Phantom(_) => unreachable!(),
            }
        }
        "symm3d-baseline" | "symm3d-optimized" => {
            let p = 2;
            let mesh = Mesh3D::new(rc, p);
            let grid = BlockGrid::new(n, p);
            let d_block = (mesh.k == 0)
                .then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
            let input = SymmInput { n, d_block };
            let result = if kernel == "symm3d-baseline" {
                symm_square_cube_baseline(rc, &mesh, &input)
            } else {
                let bundles = mesh.dup_bundles(2);
                symm_square_cube_optimized(rc, &mesh, &bundles, &input)
            };
            result
                .d2
                .map(|d2| d2.unwrap_real().clone().into_vec())
                .unwrap_or_default()
        }
        "summa" => {
            let p = 2;
            let mesh = Mesh2D::new(rc, p);
            let grid = BlockGrid::new(n, p);
            let bundles = SummaBundles::new(&mesh, 2);
            let input = SymmInput {
                n,
                d_block: Some(BlockBuf::Real(grid.extract(
                    &test_matrix(n),
                    mesh.i,
                    mesh.j,
                ))),
            };
            let result = symm_square_cube_summa(rc, &mesh, &bundles, &input);
            result.d2.unwrap().unwrap_real().clone().into_vec()
        }
        "cosma" => {
            let p = 2;
            let mesh = Mesh2D::new(rc, p);
            let grid = BlockGrid::new(n, p);
            let input = SymmInput {
                n,
                d_block: Some(BlockBuf::Real(grid.extract(
                    &test_matrix(n),
                    mesh.i,
                    mesh.j,
                ))),
            };
            let result = symm_square_cube_cosma(rc, &mesh, &input);
            result.d2.unwrap().unwrap_real().clone().into_vec()
        }
        "symm25d" => {
            let (q, c) = (2, 2);
            let mesh = Mesh25D::new(rc, q, c);
            let grid = BlockGrid::new(n, q);
            let d_block = (mesh.k == 0)
                .then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
            let grd_ndup = NDupComms::new(&mesh.grd, 2);
            let input = SymmInput { n, d_block };
            let result = symm_square_cube_25d(rc, &mesh, &grd_ndup, &input);
            result
                .d2
                .map(|d2| d2.unwrap_real().clone().into_vec())
                .unwrap_or_default()
        }
        other => panic!("unknown kernel {other}"),
    }
}

#[derive(Serialize)]
struct Row {
    kernel: String,
    nranks: usize,
    ppn: usize,
    n: usize,
    /// Simulator's virtual makespan (seconds); `None` under `--backend rt`.
    modeled_s: Option<f64>,
    /// rt wall-clock makespan (seconds); `None` under `--backend sim`.
    measured_s: Option<f64>,
    /// modeled / measured — how far the model sits from this machine's
    /// shared-memory reality (expected ≪ or ≫ 1: the model is a cluster,
    /// the measurement is one box).
    time_ratio: Option<f64>,
    /// rt overlap efficiency minus sim overlap efficiency.
    overlap_efficiency_delta: Option<f64>,
    /// Did both backends produce bit-identical results?
    bit_identical: Option<bool>,
    sim_metrics: Option<MetricsBlock>,
    rt_metrics: Option<MetricsBlock>,
    /// Critical-path blame for the sim run (always traced).
    sim_profile: Option<ProfileBlock>,
    /// Critical-path blame for the rt run: the sim-vs-rt gap decomposed
    /// into named causes (progress-delay, rendezvous-stall, spin, park).
    rt_profile: Option<ProfileBlock>,
}

const KERNELS: &[(&str, usize, usize, usize)] = &[
    // (kernel, nranks, ppn, n)
    ("matvec-blocking", 4, 2, 96),
    ("matvec-pipelined", 4, 2, 96),
    ("symm3d-baseline", 8, 2, 64),
    ("symm3d-optimized", 8, 2, 64),
    ("summa", 4, 2, 64),
    ("cosma", 4, 2, 64),
    ("symm25d", 8, 2, 64),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let explicit = args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix("--backend=")
            .map(str::to_string)
            .or_else(|| {
                (a == "--backend")
                    .then(|| args.get(i + 1).cloned().expect("--backend needs a value"))
            })
    });
    let (run_sim, run_rt) = match explicit.as_deref() {
        None => (true, true),
        Some("sim") => (true, false),
        Some("rt") => (false, true),
        Some(other) => panic!("bad --backend `{other}`: expected sim or rt"),
    };

    println!("sim-vs-rt validation: same kernels, modeled vs measured\n");
    let mut table = Table::new(&[
        "kernel",
        "ranks",
        "modeled (s)",
        "measured (s)",
        "ratio",
        "ovl sim",
        "ovl rt",
        "identical",
    ]);
    let mut rows = Vec::new();

    for &(kernel, nranks, ppn, n) in KERNELS {
        let k = kernel.to_string();
        let sim = run_sim.then(|| {
            let k = k.clone();
            ovcomm_simmpi::run(
                SimConfig::natural(nranks, ppn, MachineProfile::test_profile()).with_trace(),
                move |rc: RankCtx| workload(&rc, &k, n),
            )
            .unwrap_or_else(|e| panic!("sim {kernel}: {e}"))
        });
        let rt = run_rt.then(|| {
            let k = k.clone();
            ovcomm_rt::run(
                RtConfig::natural(nranks, ppn, MachineProfile::test_profile()).with_trace(),
                move |rc: RtRankCtx| workload(&rc, &k, n),
            )
            .unwrap_or_else(|e| panic!("rt {kernel}: {e}"))
        });

        let modeled_s = sim.as_ref().map(|o| o.makespan.as_secs_f64());
        let measured_s = rt.as_ref().map(|o| o.makespan.as_secs_f64());
        let sim_metrics = sim.as_ref().map(metrics_block);
        let rt_metrics = rt.as_ref().map(metrics_block_rt);
        let sim_profile = sim.as_ref().and_then(profile_block);
        let rt_profile = rt.as_ref().and_then(profile_block_rt);
        let bit_identical = sim
            .as_ref()
            .zip(rt.as_ref())
            .map(|(s, r)| s.results == r.results);
        if let Some(false) = bit_identical {
            eprintln!("DIVERGENCE: {kernel} results differ between backends");
        }
        let time_ratio = modeled_s.zip(measured_s).map(|(m, w)| m / w);
        let overlap_efficiency_delta = rt_metrics
            .as_ref()
            .zip(sim_metrics.as_ref())
            .map(|(r, s)| r.overlap_efficiency - s.overlap_efficiency);

        let fmt = |x: Option<f64>| x.map_or("-".into(), |v| format!("{v:.6}"));
        table.row(vec![
            kernel.to_string(),
            nranks.to_string(),
            fmt(modeled_s),
            fmt(measured_s),
            time_ratio.map_or("-".into(), |v| format!("{v:.3}")),
            fmt(sim_metrics.as_ref().map(|m| m.overlap_efficiency)),
            fmt(rt_metrics.as_ref().map(|m| m.overlap_efficiency)),
            bit_identical.map_or("-".into(), |b| b.to_string()),
        ]);
        rows.push(Row {
            kernel: kernel.to_string(),
            nranks,
            ppn,
            n,
            modeled_s,
            measured_s,
            time_ratio,
            overlap_efficiency_delta,
            bit_identical,
            sim_metrics,
            rt_metrics,
            sim_profile,
            rt_profile,
        });
    }

    table.print();
    println!(
        "\nThe time ratio compares the simulator's modeled cluster against this machine's \
         shared-memory wall clock — absolute agreement is not expected; what validates the \
         model is bit-identical numerics and comparable overlap structure."
    );
    if let Some(bad) = rows.iter().find(|r| r.bit_identical == Some(false)) {
        panic!("cross-backend divergence on {}", bad.kernel);
    }
    // Merge by inputs rather than rewriting wholesale: rt wall-clock noise
    // stays out of the diff unless a kernel's configuration changed.
    merge_json("sim_vs_rt", &rows, &["kernel", "nranks", "ppn", "n"]);
}
