//! Table V: the 2.5D-multiplication version of SymmSquareCube (Alg. 6) for
//! the paper's process configurations and replication factors, with
//! N_DUP = 1 and 4 (collectives self-overlapped), 1hsg_70.

use ovcomm_bench::{cosma_run, symm_run, write_json, MeshSpec, Table};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ppn: usize,
    mesh: String,
    nodes: usize,
    tflops_ndup1: f64,
    tflops_ndup4: f64,
    /// COSMA-style one-sided multiply on the `q×q` front plane (no
    /// replication) — the RMA paradigm's entry in the same table.
    tflops_cosma_qxq: f64,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sys = paper_system("1hsg_70").unwrap();
    // (PPN, q, c) — the paper's Table V configurations.
    let configs = [
        (2usize, 8usize, 2usize),
        (5, 12, 2),
        (8, 16, 2),
        (4, 9, 3),
        (7, 12, 3),
        (1, 4, 4),
        (4, 8, 4),
        (2, 5, 5),
        (4, 6, 6),
        (6, 7, 7),
        (8, 8, 8),
    ];

    println!("Table V: 2.5D SymmSquareCube (1hsg_70), N_DUP = 1 and 4, vs one-sided COSMA\n");
    let mut table = Table::new(&[
        "PPN",
        "Mesh",
        "Nodes",
        "N_DUP=1 TF",
        "N_DUP=4 TF",
        "COSMA qxq TF",
    ]);
    let mut rows = Vec::new();
    for (ppn, q, c) in configs {
        let mesh = MeshSpec::TwoFiveD { q, c };
        let s1 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::TwoFiveD { c, n_dup: 1 },
            ppn,
            2,
        );
        let s4 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::TwoFiveD { c, n_dup: 4 },
            ppn,
            2,
        );
        let sc = cosma_run(&profile, sys.dimension, q, ppn, 2);
        table.row(vec![
            ppn.to_string(),
            mesh.label(),
            s1.nodes.to_string(),
            format!("{:.2}", s1.tflops),
            format!("{:.2}", s4.tflops),
            format!("{:.2}", sc.tflops),
        ]);
        rows.push(Row {
            ppn,
            mesh: mesh.label(),
            nodes: s1.nodes,
            tflops_ndup1: s1.tflops,
            tflops_ndup4: s4.tflops,
            tflops_cosma_qxq: sc.tflops,
        });
    }
    table.print();
    println!(
        "\npaper (Table V): N_DUP=4 consistently but modestly beats N_DUP=1 (the 2.5D algorithm \
         offers no cross-operation pipelining); for fixed c, more PPN roughly improves \
         performance; best 16x16x2 at PPN=8 (32.16/34.69 TF). The COSMA column runs the \
         one-sided multiply on the q×q front plane only (q² ranks, no replication), so it \
         trades the 2.5D mesh's extra memory for origin-driven prefetch overlap."
    );
    write_json("table5_25d", &rows);
}
