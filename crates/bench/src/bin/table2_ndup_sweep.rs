//! Table II: performance of the optimized SymmSquareCube (Alg. 5) for
//! N_DUP = 1…6 on the three systems (N_DUP = 1 equals the baseline).

use ovcomm_bench::{symm_run, write_json, MeshSpec, Table};
use ovcomm_purify::{KernelChoice, PAPER_SYSTEMS};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    n_dup: usize,
    tflops: f64,
    time_per_call: f64,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let mesh = MeshSpec::Cube { p: 4 };
    let iters = 2;
    let ndups = [1usize, 2, 3, 4, 5, 6];

    println!("Table II: optimized SymmSquareCube TFlops vs N_DUP (64 nodes, PPN=1)\n");
    let mut headers: Vec<String> = vec!["System".into()];
    headers.extend(ndups.iter().map(|d| format!("N_DUP={d}")));
    let mut table = Table::new(&headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let mut rows = Vec::new();
    for sys in PAPER_SYSTEMS {
        let mut cells = vec![sys.name.to_string()];
        for &n_dup in &ndups {
            let s = symm_run(
                &profile,
                sys.dimension,
                mesh,
                KernelChoice::Optimized { n_dup },
                1,
                iters,
            );
            cells.push(format!("{:.2}", s.tflops));
            rows.push(Row {
                system: sys.name.to_string(),
                n_dup,
                tflops: s.tflops,
                time_per_call: s.time_per_call,
            });
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper (Table II, 1hsg_70): 19.21 / 21.51 / 21.47 / 22.48 / 22.39 / 22.54 — most of \
         the gain arrives by N_DUP=4 and flattens after."
    );
    write_json("table2_ndup_sweep", &rows);
}
