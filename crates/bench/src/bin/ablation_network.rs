//! Ablation: how the overlap techniques fare across network generations —
//! commodity 10 GbE, the paper's Omni-Path (Stampede2), and a fat-NIC
//! HDR-class fabric. Runs the baseline and optimized SymmSquareCube
//! (1hsg_70, 64 nodes, PPN=1) on each profile.

use ovcomm_bench::{symm_run, write_json, MeshSpec, Table};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    network: String,
    baseline_tflops: f64,
    overlapped_tflops: f64,
    speedup: f64,
    comm_fraction_baseline: f64,
}

fn main() {
    let n = paper_system("1hsg_70").unwrap().dimension;
    let mesh = MeshSpec::Cube { p: 4 };
    let profiles = [
        MachineProfile::commodity_10gbe(),
        MachineProfile::stampede2_skylake(),
        MachineProfile::fat_nic_hdr(),
    ];

    println!("Network ablation: SymmSquareCube N_DUP=4 vs baseline (1hsg_70, 64 nodes)\n");
    let mut table = Table::new(&[
        "network",
        "baseline TF",
        "N_DUP=4 TF",
        "speedup",
        "baseline comm share",
    ]);
    let mut rows = Vec::new();
    for profile in profiles {
        let s1 = symm_run(&profile, n, mesh, KernelChoice::Baseline, 1, 2);
        let s4 = symm_run(
            &profile,
            n,
            mesh,
            KernelChoice::Optimized { n_dup: 4 },
            1,
            2,
        );
        let speedup = s1.time_per_call / s4.time_per_call;
        let comm_frac = ((s1.time_per_call - s1.compute_time) / s1.time_per_call).max(0.0);
        table.row(vec![
            profile.name.to_string(),
            format!("{:.2}", s1.tflops),
            format!("{:.2}", s4.tflops),
            format!("{speedup:.2}"),
            format!("{:.0}%", comm_frac * 100.0),
        ]);
        rows.push(Row {
            network: profile.name.to_string(),
            baseline_tflops: s1.tflops,
            overlapped_tflops: s4.tflops,
            speedup,
            comm_fraction_baseline: comm_frac,
        });
    }
    table.print();
    println!(
        "\nreading guide: the gain tracks *unfilled NIC headroom*, not raw comm share — the \
         10GbE system is 91% communication-bound yet gains least, because one stream already \
         saturates a slow NIC; on Omni-Path and fat-NIC fabrics a single stream leaves \
         capacity on the table, which is exactly what the paper's overlap reclaims."
    );
    write_json("ablation_network", &rows);
}
