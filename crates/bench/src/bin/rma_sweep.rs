//! One-sided vs two-sided multiply sweep: the COSMA-style RMA kernel
//! (origin-driven `get` prefetch, fence epochs, no receiver posting)
//! against the two-sided SUMMA baseline (broadcast rings) over a sweep of
//! matrix sizes, on both backends.
//!
//! The headline column is overlap efficiency: the fraction of
//! communication-busy time carrying ≥ 2 concurrent transfers. The
//! one-sided variant keeps the next step's operand gets in flight during
//! the current local GEMM, so its overlap should meet or beat the
//! two-sided baseline at the paper's block sizes — the acceptance
//! property this artifact records.
//!
//! Flags: `--smoke` (one small size per backend — the CI configuration),
//! `--backend {sim,rt}` (restrict to one backend; default runs both).
//! Results merge into `results/rma_sweep.json` keyed by inputs, so
//! wall-clock noise does not churn the committed artifact.

// Bench drivers fail loudly by design.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ovcomm_bench::{merge_json, metrics_block, metrics_block_rt, MetricsBlock, Table};
use ovcomm_core::{Communicator, RankHandle};
use ovcomm_densemat::{BlockBuf, BlockGrid, Matrix};
use ovcomm_kernels::{
    symm_square_cube_cosma, symm_square_cube_summa, Mesh2D, SummaBundles, SymmInput,
};
use ovcomm_rt::{RtConfig, RtRankCtx};
use ovcomm_simmpi::{RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        1.0 / (1.0 + i.abs_diff(j) as f64) + if i == j { 0.5 } else { 0.0 }
    })
}

/// One barrier-delimited SymmSquareCube call of the chosen paradigm;
/// returns the phase time in (virtual or wall-clock) seconds.
fn workload<R: RankHandle>(rc: &R, variant: &str, n: usize, p: usize, real: bool) -> f64 {
    let mesh = Mesh2D::new(rc, p);
    let grid = BlockGrid::new(n, p);
    let d_block = if real {
        Some(BlockBuf::Real(grid.extract(
            &test_matrix(n),
            mesh.i,
            mesh.j,
        )))
    } else {
        let (r, c) = grid.block_dims(mesh.i, mesh.j);
        Some(BlockBuf::Phantom(r, c))
    };
    let input = SymmInput { n, d_block };
    rc.world().barrier();
    let t0 = rc.now();
    match variant {
        "summa-two-sided" => {
            let bundles = SummaBundles::new(&mesh, 1);
            let _ = symm_square_cube_summa(rc, &mesh, &bundles, &input);
        }
        "cosma-one-sided" => {
            let _ = symm_square_cube_cosma(rc, &mesh, &input);
        }
        other => panic!("unknown variant {other}"),
    }
    rc.world().barrier();
    (rc.now() - t0).as_secs_f64()
}

#[derive(Serialize)]
struct Row {
    variant: String,
    backend: String,
    n: usize,
    p: usize,
    nranks: usize,
    ppn: usize,
    seconds: f64,
    /// Total one-sided calls / bytes the run issued (`rma.*` counters);
    /// zero for the two-sided baseline.
    rma_calls: u64,
    rma_bytes: u64,
    metrics: MetricsBlock,
}

/// Sum every `<prefix>{…}` counter of a run's metrics snapshot.
fn counter_sum(counters: &std::collections::BTreeMap<String, u64>, prefix: &str) -> u64 {
    counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

fn run_row(backend: &str, variant: &'static str, n: usize, p: usize, ppn: usize) -> Row {
    let nranks = p * p;
    let (seconds, metrics, rma_calls, rma_bytes) = match backend {
        "sim" => {
            let out = ovcomm_simmpi::run(
                SimConfig::natural(nranks, ppn, MachineProfile::stampede2_skylake()).with_trace(),
                move |rc: RankCtx| workload(&rc, variant, n, p, false),
            )
            .unwrap_or_else(|e| panic!("sim {variant} n={n}: {e}"));
            let t = out.results.iter().cloned().fold(0.0, f64::max);
            let (calls, bytes) = (
                counter_sum(&out.metrics.counters, "rma.calls"),
                counter_sum(&out.metrics.counters, "rma.bytes"),
            );
            (t, metrics_block(&out), calls, bytes)
        }
        "rt" => {
            let out = ovcomm_rt::run(
                RtConfig::natural(nranks, ppn, MachineProfile::test_profile()).with_trace(),
                move |rc: RtRankCtx| workload(&rc, variant, n, p, true),
            )
            .unwrap_or_else(|e| panic!("rt {variant} n={n}: {e}"));
            let t = out.results.iter().cloned().fold(0.0, f64::max);
            let (calls, bytes) = (
                counter_sum(&out.metrics.counters, "rma.calls"),
                counter_sum(&out.metrics.counters, "rma.bytes"),
            );
            (t, metrics_block_rt(&out), calls, bytes)
        }
        other => panic!("unknown backend {other}"),
    };
    Row {
        variant: variant.to_string(),
        backend: backend.to_string(),
        n,
        p,
        nranks,
        ppn,
        seconds,
        rma_calls,
        rma_bytes,
        metrics,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let explicit = args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix("--backend=")
            .map(str::to_string)
            .or_else(|| {
                (a == "--backend")
                    .then(|| args.get(i + 1).cloned().expect("--backend needs a value"))
            })
    });
    let (run_sim, run_rt) = match explicit.as_deref() {
        None => (true, true),
        Some("sim") => (true, false),
        Some("rt") => (false, true),
        Some(other) => panic!("bad --backend `{other}`: expected sim or rt"),
    };

    // Sim sweeps the paper's block-size regime (4×4 mesh, modeled nodes,
    // phantom data); rt moves real bytes on one box, so it stays a size
    // class smaller on a 2×2 mesh.
    let sim_sizes: &[usize] = if smoke { &[512] } else { &[1024, 2048, 4096] };
    let rt_sizes: &[usize] = if smoke { &[32] } else { &[32, 64, 96] };

    println!(
        "rma sweep: one-sided COSMA vs two-sided SUMMA ({} sizes)\n",
        if smoke { "smoke" } else { "full" }
    );
    let mut rows = Vec::new();
    for &(backend, p, ppn, sizes) in &[("sim", 4usize, 2usize, sim_sizes), ("rt", 2, 2, rt_sizes)] {
        let enabled = (backend == "sim" && run_sim) || (backend == "rt" && run_rt);
        if !enabled {
            continue;
        }
        for &n in sizes {
            for variant in ["summa-two-sided", "cosma-one-sided"] {
                rows.push(run_row(backend, variant, n, p, ppn));
            }
        }
    }

    let mut table = Table::new(&[
        "backend",
        "n",
        "variant",
        "seconds",
        "overlap",
        "wait share",
        "rma MB",
    ]);
    for r in &rows {
        table.row(vec![
            r.backend.clone(),
            r.n.to_string(),
            r.variant.clone(),
            format!("{:.6}", r.seconds),
            format!("{:.3}", r.metrics.overlap_efficiency),
            format!("{:.3}", r.metrics.wait_time_share),
            format!("{:.2}", r.rma_bytes as f64 / 1e6),
        ]);
    }
    table.print();

    // The acceptance property: at every swept size, the one-sided
    // variant's overlap efficiency meets or beats the two-sided baseline
    // (modeled backend; rt wall clock is reported but not gated — span
    // concurrency on a shared box is noisy).
    let mut worst = f64::INFINITY;
    for pair in rows.chunks(2) {
        let [summa, cosma] = pair else { continue };
        let delta = cosma.metrics.overlap_efficiency - summa.metrics.overlap_efficiency;
        println!(
            "{} n={}: one-sided overlap {:.3} vs two-sided {:.3} (delta {delta:+.3})",
            cosma.backend,
            cosma.n,
            cosma.metrics.overlap_efficiency,
            summa.metrics.overlap_efficiency
        );
        if cosma.backend == "sim" {
            worst = worst.min(delta);
        }
    }
    if worst < 0.0 {
        eprintln!("WARNING: one-sided overlap fell below the two-sided baseline (sim)");
        std::process::exit(1);
    }
    if smoke {
        println!("smoke run: gate only, results/rma_sweep.json not rewritten");
    } else {
        merge_json("rma_sweep", &rows, &["variant", "backend", "n", "p", "ppn"]);
    }
}
