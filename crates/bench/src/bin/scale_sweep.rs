//! Large-scale collective sweep: every `CollPlan` builder at ten
//! thousand ranks, single process, on the event-driven fiber engine.
//!
//! This is the tentpole's demonstrable artifact: each of the 13
//! collective algorithms runs once on a phantom payload with
//! verification off (the static lint still runs at plan compile).
//! Logarithmic-depth builders run at p = 10,000. Builders with
//! inherently quadratic cost — the ring family (Θ(p²) total messages)
//! and the linear gather (p−1 concurrent flows contending on one root
//! NIC) — run at p = 512 to keep the whole sweep inside the wall
//! budget; the actual communicator size is recorded per row in the JSON.
//!
//! The emitted `results/scale_sweep.json` is purely virtual-time data —
//! byte-identical across reruns. Wall-clock timing goes to stderr only,
//! and `--budget <seconds>` turns it into an exit code for CI.
//!
//! Flags:
//! * `--smoke` — quarter-scale (p = 2,500 / 256) for debug builds and CI
//!   pull-request runs; does not write the JSON;
//! * `--budget <seconds>` — exit nonzero if the sweep's wall time
//!   exceeds the budget.

use std::time::Instant;

use ovcomm_bench::{write_json, Table};
use ovcomm_simmpi::plan::{chunk_bounds, kind_short};
use ovcomm_simmpi::{
    run, CollAlgo, CollKind, CollSelector, Payload, RankCtx, SimConfig, VerifyMode,
};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

/// One sweep row: virtual-time outcome of one builder at scale.
#[derive(Serialize)]
struct ScaleRecord {
    coll: String,
    algo: String,
    p: usize,
    ppn: usize,
    n: usize,
    seconds: f64,
    messages: u64,
    inter_node_bytes: u64,
    intra_node_bytes: u64,
}

/// Builders whose cost is inherently quadratic in p: the ring family makes
/// Θ(p²) messages total, and the linear gather funnels all p−1 concurrent
/// flows into one root NIC (Θ(p) contention-solver work per flow event).
fn quadratic_family(algo: CollAlgo) -> bool {
    matches!(
        algo,
        CollAlgo::BcastScatterAllgather
            | CollAlgo::ReduceRing
            | CollAlgo::AllreduceRsag
            | CollAlgo::AllreduceRing
            | CollAlgo::AllgatherRing
            | CollAlgo::GatherLinear
    )
}

fn measure(algo: CollAlgo, p: usize, ppn: usize, n: usize) -> ScaleRecord {
    let kind = algo.kind();
    let cfg = SimConfig::natural(p, ppn, MachineProfile::stampede2_skylake())
        .with_coll_select(CollSelector::default().force(algo))
        .with_verify(VerifyMode::Off)
        .with_fiber_stack(128 << 10);
    let out = run(cfg, move |rc: RankCtx| {
        let w = rc.world();
        match kind {
            CollKind::Bcast => {
                let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
                let _ = w.bcast(0, data, n);
            }
            CollKind::Reduce => {
                let _ = w.reduce(0, Payload::Phantom(n));
            }
            CollKind::Allreduce => {
                let _ = w.allreduce(Payload::Phantom(n));
            }
            CollKind::Scatter => {
                let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
                let _ = w.scatter(0, data, n);
            }
            CollKind::Gather => {
                let b = chunk_bounds(n, rc.nranks());
                let me = rc.rank();
                let _ = w.gather(0, Payload::Phantom(b[me + 1] - b[me]), n);
            }
            CollKind::Allgather => {
                let b = chunk_bounds(n, rc.nranks());
                let me = rc.rank();
                let _ = w.allgather(Payload::Phantom(b[me + 1] - b[me]), n);
            }
            CollKind::Barrier => w.barrier(),
            CollKind::Dup | CollKind::Split => unreachable!("not an algorithmic collective"),
        }
    })
    .unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
    ScaleRecord {
        coll: kind_short(kind).to_string(),
        algo: algo.short().to_string(),
        p,
        ppn,
        n,
        seconds: out.makespan.as_secs_f64(),
        messages: out.messages,
        inter_node_bytes: out.inter_node_bytes,
        intra_node_bytes: out.intra_node_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let budget: Option<f64> = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--budget takes seconds"));
    // Debug aid: run only builders whose `coll/algo` contains the substring.
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (p_log, p_ring, ppn) = if smoke {
        (2_500, 128, 32)
    } else {
        (10_000, 512, 32)
    };
    // 8 KiB logical payload (phantom; `SCALE_SWEEP_N` overrides for
    // experiments). Every message still runs through the max–min flow
    // model; keeping flows short-lived stops successive collective rounds
    // from piling up into one giant contention component in virtual time,
    // which is what the wall budget is most sensitive to.
    let n = std::env::var("SCALE_SWEEP_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8 << 10);

    let t0 = Instant::now();
    let mut records = Vec::new();
    for &algo in CollAlgo::all() {
        if let Some(f) = &only {
            let name = format!("{}/{}", kind_short(algo.kind()), algo.short());
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        let p = if quadratic_family(algo) {
            p_ring
        } else {
            p_log
        };
        let cell0 = Instant::now();
        let rec = measure(algo, p, ppn, n);
        eprintln!(
            "  {}/{} p={} — {} msgs, {:.3}s virtual, {:.2}s wall",
            rec.coll,
            rec.algo,
            rec.p,
            rec.messages,
            rec.seconds,
            cell0.elapsed().as_secs_f64()
        );
        records.push(rec);
    }
    let wall = t0.elapsed().as_secs_f64();

    let mut table = Table::new(&["collective", "algorithm", "p", "virtual s", "messages"]);
    for r in &records {
        table.row(vec![
            r.coll.clone(),
            r.algo.clone(),
            r.p.to_string(),
            format!("{:.4}", r.seconds),
            r.messages.to_string(),
        ]);
    }
    table.print();
    eprintln!(
        "scale sweep: {} builders, {:.1}s wall{}",
        records.len(),
        wall,
        if smoke { " (smoke)" } else { "" }
    );

    if !smoke && only.is_none() {
        write_json("scale_sweep", &records);
    }
    if let Some(b) = budget {
        if wall > b {
            eprintln!("FAIL: wall time {wall:.1}s exceeds budget {b:.1}s");
            std::process::exit(1);
        }
        eprintln!("within wall budget ({wall:.1}s <= {b:.1}s)");
    }
}
