//! Figure 6: time diagram for reducing/broadcasting 8 MB on 4 nodes under
//! blocking, nonblocking-overlap (N_DUP = 4) and 4-PPN overlap, with 2 MB
//! and 8 MB single nonblocking calls for comparison. Reproduces the post /
//! wait breakdown of the paper's stacked bars (times on node 0).

use ovcomm_bench::{render, write_json, Bar, Table};
use ovcomm_core::NDupComms;
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct SpanRow {
    scenario: String,
    kind: String,
    label: String,
    start_us: f64,
    dur_us: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Bcast,
    Reduce,
}

/// Run one scenario with tracing and return rank-0 (node-0) spans.
fn traced(scenario: &str, nranks: usize, ppn: usize, f: impl Fn(RankCtx) + Send + Sync + 'static) -> Vec<SpanRow> {
    let cfg = SimConfig::natural(nranks, ppn, MachineProfile::stampede2_skylake()).with_trace();
    let out = run(cfg, move |rc: RankCtx| f(rc)).expect("fig6 scenario");
    let trace = out.trace.expect("tracing enabled");
    let node0_actors: Vec<u32> = (0..ppn as u32).collect();
    trace
        .spans()
        .iter()
        .filter(|s| {
            // Rank agents of node 0 plus their op actors (high-bit ids
            // encode the owning rank in bits 14..31).
            let owner = if s.actor & 0x8000_0000 != 0 {
                (s.actor >> 14) & 0x1FFFF
            } else {
                s.actor
            };
            node0_actors.contains(&owner)
        })
        .map(|s| SpanRow {
            scenario: scenario.to_string(),
            kind: format!("{:?}", s.kind),
            label: s.label.clone(),
            start_us: s.start.as_secs_f64() * 1e6,
            dur_us: s.end.saturating_since(s.start).as_micros_f64(),
        })
        .collect()
}

fn scenario_blocking(op: Op, msg: usize, name: &str) -> Vec<SpanRow> {
    traced(name, 4, 1, move |rc| {
        let w = rc.world();
        match op {
            Op::Bcast => {
                let data = (rc.rank() == 0).then(|| Payload::Phantom(msg));
                let _ = w.bcast(0, data, msg);
            }
            Op::Reduce => {
                let _ = w.reduce(0, Payload::Phantom(msg));
            }
        }
    })
}

fn scenario_nonblocking_single(op: Op, msg: usize, name: &str) -> Vec<SpanRow> {
    traced(name, 4, 1, move |rc| {
        let w = rc.world();
        match op {
            Op::Bcast => {
                let data = (rc.rank() == 0).then(|| Payload::Phantom(msg));
                let r = w.ibcast(0, data, msg);
                let _ = w.wait_traced(&r, "wait MPI_Ibcast");
            }
            Op::Reduce => {
                let r = w.ireduce(0, Payload::Phantom(msg));
                let _ = w.wait_traced(&r, "wait MPI_Ireduce");
            }
        }
    })
}

fn scenario_ndup(op: Op, msg: usize, n_dup: usize, name: &str) -> Vec<SpanRow> {
    traced(name, 4, 1, move |rc| {
        let w = rc.world();
        let comms = NDupComms::new(&w, n_dup);
        match op {
            Op::Bcast => {
                let reqs: Vec<_> = comms
                    .iter()
                    .map(|(c, comm)| {
                        let data = (rc.rank() == 0).then(|| Payload::Phantom(msg / n_dup));
                        let r = comm.ibcast(0, data, msg / n_dup);
                        (c, r)
                    })
                    .collect();
                for (c, r) in &reqs {
                    let _ = comms
                        .comm(*c)
                        .wait_traced(r, &format!("wait MPI_Ibcast chunk {}", c + 1));
                }
            }
            Op::Reduce => {
                let reqs: Vec<_> = comms
                    .iter()
                    .map(|(c, comm)| (c, comm.ireduce(0, Payload::Phantom(msg / n_dup))))
                    .collect();
                for (c, r) in &reqs {
                    let _ = comms
                        .comm(*c)
                        .wait_traced(r, &format!("wait MPI_Ireduce chunk {}", c + 1));
                }
            }
        }
    })
}

fn scenario_ppn(op: Op, msg: usize, ppn: usize, name: &str) -> Vec<SpanRow> {
    traced(name, 4 * ppn, ppn, move |rc| {
        let w = rc.world();
        let local = rc.rank() % ppn;
        let node = rc.rank() / ppn;
        let col = w.split(local as i64, node as u64).expect("column comm");
        let part = msg / ppn;
        match op {
            Op::Bcast => {
                let data = (node == 0).then(|| Payload::Phantom(part));
                let _ = col.bcast(0, data, part);
            }
            Op::Reduce => {
                let _ = col.reduce(0, Payload::Phantom(part));
            }
        }
    })
}

fn print_section(title: &str, rows: &[SpanRow]) {
    println!("\n== {title} ==");
    let mut table = Table::new(&["scenario", "span", "start(us)", "dur(us)"]);
    for r in rows {
        table.row(vec![
            r.scenario.clone(),
            format!("{} [{}]", r.label, r.kind),
            format!("{:.0}", r.start_us),
            format!("{:.0}", r.dur_us),
        ]);
    }
    table.print();
    // Fig-6-style bars on a shared axis.
    let bars: Vec<Bar> = rows
        .iter()
        .map(|r| Bar {
            label: format!("{} / {}", r.scenario, r.label),
            start_us: r.start_us,
            dur_us: r.dur_us,
            fill: match r.kind.as_str() {
                "Post" => '#',
                "Wait" => '=',
                _ => '%',
            },
        })
        .collect();
    println!();
    print!("{}", render(&bars, 72));
}

fn main() {
    let m8 = 8 << 20;
    let m2 = 2 << 20;
    let mut all: Vec<SpanRow> = Vec::new();
    for op in [Op::Reduce, Op::Bcast] {
        let opname = if op == Op::Reduce { "Reduction" } else { "Broadcast" };
        let mut section: Vec<SpanRow> = Vec::new();
        section.extend(scenario_blocking(op, m8, &format!("{opname} blocking 8MB")));
        section.extend(scenario_nonblocking_single(
            op,
            m8,
            &format!("{opname} nonblocking 8MB"),
        ));
        section.extend(scenario_blocking(op, m2, &format!("{opname} blocking 2MB")));
        section.extend(scenario_nonblocking_single(
            op,
            m2,
            &format!("{opname} nonblocking 2MB"),
        ));
        section.extend(scenario_ndup(
            op,
            m8,
            4,
            &format!("{opname} nonblocking overlap N_DUP=4 (4x2MB)"),
        ));
        section.extend(scenario_ppn(op, m8, 4, &format!("{opname} 4 PPN overlap (4x2MB)")));
        print_section(&format!("{opname} of 8MB on 4 nodes (times on node 0)"), &section);
        all.extend(section);
    }
    println!(
        "\npaper anchors (Fig. 6): blocking 8MB reduce ≈ 5746us vs bcast ≈ 1392us; \
         Ireduce posts cost ≈ a buffer copy each (serialized), Ibcast posts are cheap; \
         both overlap techniques beat blocking for both operations."
    );
    write_json("fig6_time_diagram", &all);
}
