//! Figure 6: time diagram for reducing/broadcasting 8 MB on 4 nodes under
//! blocking, nonblocking-overlap (N_DUP = 4) and 4-PPN overlap, with 2 MB
//! and 8 MB single nonblocking calls for comparison. Reproduces the post /
//! wait breakdown of the paper's stacked bars (times on node 0).

use ovcomm_bench::{
    metrics_block, profile_block, render, trace_out_arg, write_json, Bar, MetricsBlock, Table,
};
use ovcomm_core::NDupComms;
use ovcomm_obs::ProfileBlock;
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct SpanRow {
    scenario: String,
    kind: String,
    label: String,
    chunk: Option<u32>,
    start_us: f64,
    dur_us: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Bcast,
    Reduce,
}

/// Run one scenario with tracing and return rank-0 (node-0) spans plus the
/// scenario's metrics and critical-path profile blocks. With
/// `--trace-out <path>` each scenario also writes a Perfetto trace to
/// `<path minus extension>-<scenario slug>.json`.
fn traced(
    scenario: &str,
    nranks: usize,
    ppn: usize,
    f: impl Fn(RankCtx) + Send + Sync + 'static,
) -> Scenario {
    let mut cfg = SimConfig::natural(nranks, ppn, MachineProfile::stampede2_skylake()).with_trace();
    if let Some(base) = trace_out_arg() {
        let slug: String = scenario
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let stem = base.with_extension("");
        cfg = cfg.with_trace_out(format!("{}-{slug}.json", stem.display()));
    }
    let out = run(cfg, move |rc: RankCtx| f(rc)).expect("fig6 scenario");
    let metrics = metrics_block(&out);
    let profile = profile_block(&out);
    let trace = out.trace.expect("tracing enabled");
    let node0_actors: Vec<u32> = (0..ppn as u32).collect();
    let rows = trace
        .spans()
        .iter()
        .filter(|s| {
            // Rank agents of node 0 plus their op actors (high-bit ids
            // encode the owning rank in bits 14..31).
            let owner = if s.actor & 0x8000_0000 != 0 {
                (s.actor >> 14) & 0x1FFFF
            } else {
                s.actor
            };
            node0_actors.contains(&owner)
        })
        .map(|s| SpanRow {
            scenario: scenario.to_string(),
            kind: format!("{:?}", s.kind),
            label: s.label.clone(),
            chunk: s.chunk,
            start_us: s.start.as_secs_f64() * 1e6,
            dur_us: s.end.saturating_since(s.start).as_micros_f64(),
        })
        .collect();
    (rows, metrics, profile)
}

/// One scenario's node-0 spans, metrics block and critical-path profile.
type Scenario = (Vec<SpanRow>, MetricsBlock, Option<ProfileBlock>);

fn scenario_blocking(op: Op, msg: usize, name: &str) -> Scenario {
    traced(name, 4, 1, move |rc| {
        let w = rc.world();
        match op {
            Op::Bcast => {
                let data = (rc.rank() == 0).then_some(Payload::Phantom(msg));
                let _ = w.bcast(0, data, msg);
            }
            Op::Reduce => {
                let _ = w.reduce(0, Payload::Phantom(msg));
            }
        }
    })
}

fn scenario_nonblocking_single(op: Op, msg: usize, name: &str) -> Scenario {
    traced(name, 4, 1, move |rc| {
        let w = rc.world();
        match op {
            Op::Bcast => {
                let data = (rc.rank() == 0).then_some(Payload::Phantom(msg));
                let r = w.ibcast(0, data, msg);
                let _ = w.wait_traced(&r, "wait MPI_Ibcast");
            }
            Op::Reduce => {
                let r = w.ireduce(0, Payload::Phantom(msg));
                let _ = w.wait_traced(&r, "wait MPI_Ireduce");
            }
        }
    })
}

fn scenario_ndup(op: Op, msg: usize, n_dup: usize, name: &str) -> Scenario {
    traced(name, 4, 1, move |rc| {
        let w = rc.world();
        let comms = NDupComms::new(&w, n_dup);
        match op {
            Op::Bcast => {
                let reqs: Vec<_> = comms
                    .iter()
                    .map(|(c, comm)| {
                        let data = (rc.rank() == 0).then_some(Payload::Phantom(msg / n_dup));
                        let r = comm.ibcast(0, data, msg / n_dup);
                        (c, r)
                    })
                    .collect();
                for (c, r) in &reqs {
                    let _ = comms
                        .comm(*c)
                        .wait_traced_chunk(r, "wait MPI_Ibcast", *c as u32);
                }
            }
            Op::Reduce => {
                let reqs: Vec<_> = comms
                    .iter()
                    .map(|(c, comm)| (c, comm.ireduce(0, Payload::Phantom(msg / n_dup))))
                    .collect();
                for (c, r) in &reqs {
                    let _ = comms
                        .comm(*c)
                        .wait_traced_chunk(r, "wait MPI_Ireduce", *c as u32);
                }
            }
        }
    })
}

fn scenario_ppn(op: Op, msg: usize, ppn: usize, name: &str) -> Scenario {
    traced(name, 4 * ppn, ppn, move |rc| {
        let w = rc.world();
        let local = rc.rank() % ppn;
        let node = rc.rank() / ppn;
        let col = w.split(local as i64, node as u64).expect("column comm");
        let part = msg / ppn;
        match op {
            Op::Bcast => {
                let data = (node == 0).then_some(Payload::Phantom(part));
                let _ = col.bcast(0, data, part);
            }
            Op::Reduce => {
                let _ = col.reduce(0, Payload::Phantom(part));
            }
        }
    })
}

/// Human-readable chunk tag from the structured span field (1-based, as in
/// the paper's Fig. 6 labeling).
fn chunk_suffix(chunk: Option<u32>) -> String {
    chunk.map_or(String::new(), |c| format!(" chunk {}", c + 1))
}

fn print_section(title: &str, rows: &[SpanRow]) {
    println!("\n== {title} ==");
    let mut table = Table::new(&["scenario", "span", "start(us)", "dur(us)"]);
    for r in rows {
        table.row(vec![
            r.scenario.clone(),
            format!("{}{} [{}]", r.label, chunk_suffix(r.chunk), r.kind),
            format!("{:.0}", r.start_us),
            format!("{:.0}", r.dur_us),
        ]);
    }
    table.print();
    // Fig-6-style bars on a shared axis.
    let bars: Vec<Bar> = rows
        .iter()
        .map(|r| Bar {
            label: format!("{} / {}{}", r.scenario, r.label, chunk_suffix(r.chunk)),
            start_us: r.start_us,
            dur_us: r.dur_us,
            fill: match r.kind.as_str() {
                "Post" => '#',
                "Wait" => '=',
                _ => '%',
            },
        })
        .collect();
    println!();
    print!("{}", render(&bars, 72));
}

#[derive(Serialize)]
struct ScenarioMetrics {
    scenario: String,
    metrics: MetricsBlock,
    profile: Option<ProfileBlock>,
}

#[derive(Serialize)]
struct Fig6Record {
    spans: Vec<SpanRow>,
    scenarios: Vec<ScenarioMetrics>,
}

fn main() {
    let m8 = 8 << 20;
    let m2 = 2 << 20;
    let mut all = Fig6Record {
        spans: Vec::new(),
        scenarios: Vec::new(),
    };
    for op in [Op::Reduce, Op::Bcast] {
        let opname = if op == Op::Reduce {
            "Reduction"
        } else {
            "Broadcast"
        };
        let mut section: Vec<SpanRow> = Vec::new();
        let scenarios: Vec<(String, Scenario)> = vec![
            {
                let name = format!("{opname} blocking 8MB");
                let r = scenario_blocking(op, m8, &name);
                (name, r)
            },
            {
                let name = format!("{opname} nonblocking 8MB");
                let r = scenario_nonblocking_single(op, m8, &name);
                (name, r)
            },
            {
                let name = format!("{opname} blocking 2MB");
                let r = scenario_blocking(op, m2, &name);
                (name, r)
            },
            {
                let name = format!("{opname} nonblocking 2MB");
                let r = scenario_nonblocking_single(op, m2, &name);
                (name, r)
            },
            {
                let name = format!("{opname} nonblocking overlap N_DUP=4 (4x2MB)");
                let r = scenario_ndup(op, m8, 4, &name);
                (name, r)
            },
            {
                let name = format!("{opname} 4 PPN overlap (4x2MB)");
                let r = scenario_ppn(op, m8, 4, &name);
                (name, r)
            },
        ];
        for (name, (spans, metrics, profile)) in scenarios {
            section.extend(spans);
            all.scenarios.push(ScenarioMetrics {
                scenario: name,
                metrics,
                profile,
            });
        }
        print_section(
            &format!("{opname} of 8MB on 4 nodes (times on node 0)"),
            &section,
        );
        all.spans.extend(section);
    }
    println!(
        "\npaper anchors (Fig. 6): blocking 8MB reduce ≈ 5746us vs bcast ≈ 1392us; \
         Ireduce posts cost ≈ a buffer copy each (serialized), Ibcast posts are cheap; \
         both overlap techniques beat blocking for both operations."
    );
    write_json("fig6_time_diagram", &all);
}
