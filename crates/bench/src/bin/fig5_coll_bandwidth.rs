//! Figure 5: broadcast and reduction bandwidth vs message size on 4 nodes
//! for the three cases of §V-B — blocking, nonblocking overlap with
//! N_DUP = 4, and 4-PPN overlap. Bandwidth is normalized by the algorithmic
//! volume 2(p−1)n/p.

use ovcomm_bench::{
    coll_bandwidth_metrics, plot_loglog, write_json, CollCase, CollKind, MetricsBlock, Series,
    Table,
};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    msg_bytes: usize,
    kind: String,
    case: String,
    bandwidth_mb_s: f64,
    metrics: MetricsBlock,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sizes: Vec<usize> = vec![
        16,
        128,
        1024,
        8 * 1024,
        64 * 1024,
        256 * 1024,
        1 << 20,
        4 << 20,
        16 << 20,
    ];
    let cases = [
        ("blocking", CollCase::Blocking),
        ("ndup4", CollCase::NonblockingOverlap(4)),
        ("4ppn", CollCase::PpnOverlap(4)),
    ];

    println!("Figure 5: collective bandwidth (MB/s) on 4 nodes\n");
    let mut table = Table::new(&[
        "msg",
        "Bcast blk",
        "Bcast ndup4",
        "Bcast 4ppn",
        "Reduce blk",
        "Reduce ndup4",
        "Reduce 4ppn",
    ]);
    let mut rows = Vec::new();
    for &msg in &sizes {
        let mut cells = vec![fmt_size(msg)];
        for kind in [CollKind::Bcast, CollKind::Reduce] {
            for (name, case) in cases {
                let (bw, metrics) = coll_bandwidth_metrics(&profile, kind, case, 4, msg);
                rows.push(Row {
                    msg_bytes: msg,
                    kind: format!("{kind:?}"),
                    case: name.to_string(),
                    bandwidth_mb_s: bw / 1e6,
                    metrics,
                });
                cells.push(format!("{:.0}", bw / 1e6));
            }
        }
        table.row(cells);
    }
    table.print();
    for kind in ["Bcast", "Reduce"] {
        let series: Vec<Series> = [("blocking", 'b'), ("ndup4", 'n'), ("4ppn", 'p')]
            .iter()
            .map(|&(case, glyph)| Series {
                label: format!("{kind} {case}"),
                glyph,
                points: rows
                    .iter()
                    .filter(|r| r.kind == kind && r.case == case && r.bandwidth_mb_s > 0.0)
                    .map(|r| (r.msg_bytes as f64, r.bandwidth_mb_s))
                    .collect(),
            })
            .collect();
        println!("\n{kind} bandwidth (MB/s, log) vs message size (B, log):\n");
        print!("{}", plot_loglog(&series, 64, 14));
    }
    println!(
        "\npaper anchors: blocking bcast ≈ 75% of peak at 16MB; blocking reduce far below; \
         both overlap cases improve on blocking."
    );
    write_json("fig5_coll_bandwidth", &rows);
}

fn fmt_size(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{}MB", n >> 20)
    } else if n >= 1024 {
        format!("{}KB", n >> 10)
    } else {
        format!("{n}B")
    }
}
