//! Multi-tenant traffic on one shared fat-tree fabric.
//!
//! The production analogue of the paper's overlap-between-operations:
//! several concurrent jobs ("tenants") each run their own collective
//! traffic on disjoint rank blocks of one cluster, contending for the
//! shared leaf/spine/core links. For every tenant the driver reports the
//! slowdown of its virtual completion time versus running alone on the
//! same fabric, plus the fabric-level overlap metrics of the shared run
//! (how much of the busy time carried ≥ 2 concurrent transfers).
//!
//! Four tenants × 256 ranks = 1,024 ranks on a 64-host three-level fat
//! tree (4 pods × 4 leaves × 4 hosts, 16 ranks per host) with a 4:1
//! taper (3.125 GB/s links vs 12 GB/s NICs — on a non-oversubscribed
//! fabric the NICs bind first and placement is irrelevant), under both
//! [`GroupPlacement`] policies: `Block` gives each tenant a whole pod —
//! its own traffic concentrates on that pod's tapered leaf links, but
//! tenants can't touch each other, so every slowdown is exactly 1.
//! `RoundRobin` stripes every tenant across all four pods: each tenant
//! alone runs *faster* (its flows spread over all 16 leaves), but the
//! tenants now meet on the shared spine/core layer and slow each other
//! down. The contrast between the two slowdown columns is the point of
//! the artifact.
//!
//! Writes `results/multi_tenant.json` (virtual-time data only;
//! byte-identical across reruns). `--smoke` shrinks iteration counts for
//! CI.

use ovcomm_bench::{metrics_block, write_json, MetricsBlock, Table};
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig, SimOutput, VerifyMode};
use ovcomm_simnet::{Fabric, GroupPlacement, MachineProfile, NodeMap};
use serde::Serialize;

const TENANTS: usize = 4;
const RANKS_PER_TENANT: usize = 256;
const PPN: usize = 16;
const PODS: usize = 4;
const HOSTS_PER_POD: usize = 16;

fn fabric() -> Fabric {
    Fabric::FatTree {
        pods: PODS,
        leaves_per_pod: 4,
        hosts_per_leaf: 4,
        spines_per_pod: 2,
        cores_per_spine: 2,
        link_bw: 3.125e9,
    }
}

/// Simulation config for `nranks` ranks placed onto the fat tree with the
/// given pod-grouping policy.
fn cfg(nranks: usize, placement: GroupPlacement) -> SimConfig {
    let map = NodeMap::grouped(nranks, PPN, HOSTS_PER_POD, PODS, placement);
    SimConfig::with_map(map, MachineProfile::stampede2_skylake())
        .with_fabric(fabric())
        .with_verify(VerifyMode::Off)
        .with_fiber_stack(256 << 10)
}

/// One tenant's traffic loop on its own communicator. Each tenant models
/// a different job shape so the shared run mixes heterogeneous traffic.
fn tenant_workload(tenant: usize, comm: &ovcomm_simmpi::Comm, iters: usize) {
    let me = comm.rank();
    let p = comm.size();
    for _ in 0..iters {
        match tenant {
            // Data-parallel job: gradient allreduce.
            0 => {
                let _ = comm.allreduce(Payload::Phantom(256 << 10));
            }
            // Parameter-server job: broadcast out, reduce back.
            1 => {
                let data = (me == 0).then_some(Payload::Phantom(256 << 10));
                let _ = comm.bcast(0, data, 256 << 10);
                let _ = comm.reduce(0, Payload::Phantom(256 << 10));
            }
            // Embedding-style job: allgather of per-rank shards.
            2 => {
                let total = 1 << 20;
                let shard = total / p;
                let _ = comm.allgather(Payload::Phantom(shard), total);
            }
            // Halo-exchange job: nearest-neighbour ring.
            _ => {
                let next = (me + 1) % p;
                let prev = (me + p - 1) % p;
                let _ = comm.sendrecv(next, prev, 9, Payload::Phantom(2 << 20));
            }
        }
    }
}

/// Virtual completion time of one tenant's rank block in a run.
fn tenant_makespan<T>(out: &SimOutput<T>, tenant: usize) -> f64 {
    out.end_times[tenant * RANKS_PER_TENANT..(tenant + 1) * RANKS_PER_TENANT]
        .iter()
        .map(|t| t.as_secs_f64())
        .fold(0.0, f64::max)
}

#[derive(Serialize)]
struct TenantRecord {
    tenant: usize,
    workload: &'static str,
    ranks: usize,
    isolated_secs: f64,
    shared_secs: f64,
    slowdown: f64,
}

#[derive(Serialize)]
struct PlacementReport {
    placement: &'static str,
    tenants: Vec<TenantRecord>,
    shared_makespan_secs: f64,
    shared_metrics: MetricsBlock,
}

#[derive(Serialize)]
struct MultiTenantReport {
    fabric: &'static str,
    placements: Vec<PlacementReport>,
}

const WORKLOAD_NAMES: [&str; TENANTS] = [
    "allreduce-256K",
    "bcast+reduce-256K",
    "allgather-1M",
    "ring-halo-2M",
];

fn run_placement(placement: GroupPlacement, iters: usize) -> PlacementReport {
    let name = match placement {
        GroupPlacement::Block => "block",
        GroupPlacement::RoundRobin => "round-robin",
    };

    // Shared run: all tenants at once, split off the world communicator.
    let shared = run(
        cfg(TENANTS * RANKS_PER_TENANT, placement),
        move |rc: RankCtx| {
            let w = rc.world();
            let tenant = rc.rank() / RANKS_PER_TENANT;
            let within = rc.rank() % RANKS_PER_TENANT;
            let comm = w
                .split(tenant as i64, within as u64)
                .unwrap_or_else(|| panic!("tenant split"));
            tenant_workload(tenant, &comm, iters);
        },
    )
    .unwrap_or_else(|e| panic!("shared multi-tenant run ({name}): {e}"));

    // Isolated baselines: each tenant alone on the same fabric, with the
    // same placement policy applied to its own ranks (so the slowdown
    // isolates contention, not the placement's own path lengths).
    let mut tenants = Vec::new();
    for (tenant, &workload) in WORKLOAD_NAMES.iter().enumerate() {
        let iso = run(cfg(RANKS_PER_TENANT, placement), move |rc: RankCtx| {
            let w = rc.world();
            tenant_workload(tenant, &w, iters);
        })
        .unwrap_or_else(|e| panic!("isolated run for tenant {tenant} ({name}): {e}"));
        let isolated_secs = iso.makespan.as_secs_f64();
        let shared_secs = tenant_makespan(&shared, tenant);
        tenants.push(TenantRecord {
            tenant,
            workload,
            ranks: RANKS_PER_TENANT,
            isolated_secs,
            shared_secs,
            slowdown: shared_secs / isolated_secs,
        });
    }

    eprintln!("placement: {name}");
    let mut table = Table::new(&["tenant", "workload", "isolated s", "shared s", "slowdown"]);
    for t in &tenants {
        table.row(vec![
            t.tenant.to_string(),
            t.workload.to_string(),
            format!("{:.6}", t.isolated_secs),
            format!("{:.6}", t.shared_secs),
            format!("{:.3}", t.slowdown),
        ]);
    }
    table.print();

    let report = PlacementReport {
        placement: name,
        tenants,
        shared_makespan_secs: shared.makespan.as_secs_f64(),
        shared_metrics: metrics_block(&shared),
    };
    eprintln!(
        "  shared makespan {:.6}s, overlap efficiency {:.3}",
        report.shared_makespan_secs, report.shared_metrics.overlap_efficiency
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 2 } else { 8 };

    let report = MultiTenantReport {
        fabric: "fat-tree 4 pods x 4 leaves x 4 hosts, 16 ranks/host",
        placements: vec![
            run_placement(GroupPlacement::Block, iters),
            run_placement(GroupPlacement::RoundRobin, iters),
        ],
    };
    if !smoke {
        write_json("multi_tenant", &report);
    }
}
