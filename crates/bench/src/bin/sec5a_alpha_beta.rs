//! §V-A analysis: the α–β model's theoretical communication time for the
//! baseline SymmSquareCube vs the simulator's measured time — reproducing
//! the paper's observation that the achieved bandwidth is far below peak
//! (30.19% in the paper), which motivates overlapping communications.

use ovcomm_bench::{symm_run, write_json, MeshSpec, Table};
use ovcomm_core::{block_bytes, AlphaBeta};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    t_p2p: f64,
    t_bcast: f64,
    t_reduce: f64,
    t_baseline_model: f64,
    t_comm_simulated: f64,
    achieved_fraction_of_peak: f64,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sys = paper_system("1hsg_70").unwrap();
    let p = 4usize;
    let ab = AlphaBeta::paper_sec5a();
    let n = block_bytes(sys.dimension, p);

    let t_p2p = ab.t_p2p(n);
    let t_bcast = ab.t_bcast(p, n);
    let t_reduce = ab.t_reduce(p, n);
    let t_model = ab.t_baseline_symm_square_cube(p, n);

    let stats = symm_run(
        &profile,
        sys.dimension,
        MeshSpec::Cube { p },
        KernelChoice::Baseline,
        1,
        3,
    );
    let t_comm = (stats.time_per_call - stats.compute_time).max(0.0);
    let fraction = t_model / t_comm;

    println!("Section V-A: alpha-beta model vs simulated baseline (1hsg_70, 64 nodes)\n");
    let mut table = Table::new(&["quantity", "seconds"]);
    table.row(vec!["T_P2P (model)".into(), format!("{t_p2p:.6}")]);
    table.row(vec!["T_Bcast (model)".into(), format!("{t_bcast:.6}")]);
    table.row(vec!["T_Reduce (model)".into(), format!("{t_reduce:.6}")]);
    table.row(vec![
        "T_baseline = 2(T_P2P+T_Reduce)+3T_Bcast".into(),
        format!("{t_model:.5}"),
    ]);
    table.row(vec!["simulated comm time".into(), format!("{t_comm:.5}")]);
    table.row(vec![
        "achieved fraction of peak".into(),
        format!("{:.1}%", fraction * 100.0),
    ]);
    table.print();
    println!(
        "\npaper: T_P2P=2.324e-3, T_Bcast=T_Reduce=3.487e-3, T_baseline=0.02208s, measured \
         0.07312s → 30.19% of peak. (Model numbers differ slightly because the paper quotes \
         27.89 'MB' in binary units.)"
    );
    write_json(
        "sec5a_alpha_beta",
        &Record {
            t_p2p,
            t_bcast,
            t_reduce,
            t_baseline_model: t_model,
            t_comm_simulated: t_comm,
            achieved_fraction_of_peak: fraction,
        },
    );
}
