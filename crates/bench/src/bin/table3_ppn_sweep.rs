//! Table III: optimized SymmSquareCube with N_DUP = 1 and 4 for different
//! numbers of processes per node (meshes 4³…8³, 54–64 nodes), 1hsg_70.
//! Combines the multiple-PPN and nonblocking overlap techniques — the
//! source of the paper's headline 91.2% improvement.

use ovcomm_bench::{symm_run, write_json, MeshSpec, Table};
use ovcomm_purify::{paper_system, KernelChoice};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ppn: usize,
    mesh: String,
    nodes: usize,
    tflops_ndup1: f64,
    tflops_ndup4: f64,
}

fn main() {
    let profile = MachineProfile::stampede2_skylake();
    let sys = paper_system("1hsg_70").unwrap();
    // The paper picks PPN so that 64·(PPN−1) < p³ ≤ 64·PPN.
    let configs = [(1usize, 4usize), (2, 5), (4, 6), (6, 7), (8, 8)];
    let iters = 2;

    println!("Table III: optimized SymmSquareCube vs PPN (1hsg_70)\n");
    let mut table = Table::new(&["PPN", "Mesh", "Nodes", "N_DUP=1 TF", "N_DUP=4 TF"]);
    let mut rows = Vec::new();
    // The paper's 91.2% headline is relative to the Algorithm-4 baseline
    // (PPN=1, no overlap at all).
    let baseline = symm_run(
        &profile,
        sys.dimension,
        MeshSpec::Cube { p: 4 },
        KernelChoice::Baseline,
        1,
        iters,
    );
    let mut best = (0.0f64, String::new());
    for (ppn, p) in configs {
        let mesh = MeshSpec::Cube { p };
        let s1 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::Optimized { n_dup: 1 },
            ppn,
            iters,
        );
        let s4 = symm_run(
            &profile,
            sys.dimension,
            mesh,
            KernelChoice::Optimized { n_dup: 4 },
            ppn,
            iters,
        );
        if s4.tflops > best.0 {
            best = (s4.tflops, format!("PPN={ppn} N_DUP=4"));
        }
        if s1.tflops > best.0 {
            best = (s1.tflops, format!("PPN={ppn} N_DUP=1"));
        }
        table.row(vec![
            ppn.to_string(),
            mesh.label(),
            s1.nodes.to_string(),
            format!("{:.2}", s1.tflops),
            format!("{:.2}", s4.tflops),
        ]);
        rows.push(Row {
            ppn,
            mesh: mesh.label(),
            nodes: s1.nodes,
            tflops_ndup1: s1.tflops,
            tflops_ndup4: s4.tflops,
        });
    }
    table.print();
    {
        let best_time = ovcomm_kernels::symm_square_cube_flops(sys.dimension) / (best.0 * 1e12);
        println!(
            "\nbest combined configuration: {} — {:.1}% faster than the Algorithm-4 baseline \
             ({:.2} TF at PPN=1); paper reports 91.2% (best at PPN=6, N_DUP=4).",
            best.1,
            (baseline.time_per_call / best_time - 1.0) * 100.0,
            baseline.tflops
        );
    }
    println!(
        "paper (Table III): N_DUP=1: 19.21/20.61/26.24/27.53/24.98; \
         N_DUP=4: 22.48/26.45/33.87/36.73/32.38 for PPN=1/2/4/6/8."
    );
    write_json("table3_ppn_sweep", &rows);
}
