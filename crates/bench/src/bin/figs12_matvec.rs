//! Figures 1–2 (the motivating example): parallel matrix–vector
//! multiplication communication phase on a 4×4 mesh — Algorithm 1
//! (blocking reduce then broadcast) vs Algorithm 2 (N_DUP pipelined
//! ireduce→ibcast) over a sweep of vector sizes and N_DUP values.
//!
//! `--backend rt` executes the same phase on the real shared-memory
//! runtime (wall-clock seconds, one box) instead of the simulator
//! (modeled seconds, 16 nodes).

use ovcomm_bench::{
    backend_arg, metrics_block, metrics_block_rt, profile_block, profile_block_rt, write_json,
    Backend, MetricsBlock, Table,
};
use ovcomm_core::{pipelined_reduce_bcast, Communicator, NDupComms, RankHandle};
use ovcomm_densemat::Partition1D;
use ovcomm_kernels::Mesh2D;
use ovcomm_obs::ProfileBlock;
use ovcomm_rt::{RtConfig, RtRankCtx};
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

const P: usize = 4;

#[derive(Serialize)]
struct Row {
    vector_elems: usize,
    n_dup: usize,
    alg1_s: f64,
    alg2_s: f64,
    speedup: f64,
    metrics: MetricsBlock,
    profile: Option<ProfileBlock>,
}

/// The reduce+broadcast phase (the part Figs. 1–2 illustrate), generic
/// over the backend: virtual seconds on sim, wall-clock seconds on rt.
fn phase<R: RankHandle>(rc: &R, n: usize, n_dup: Option<usize>) -> f64 {
    let mesh = Mesh2D::new(rc, P);
    let part = Partition1D::new(n, P);
    let contrib = Payload::Phantom(part.len(mesh.i) * 8);
    let bcast_len = part.len(mesh.j) * 8;
    rc.world().barrier();
    let t0 = rc.now();
    match n_dup {
        None => {
            let reduced = mesh.row.reduce(mesh.i, contrib);
            let data = (mesh.i == mesh.j).then(|| reduced.expect("diagonal is the reduce root"));
            let _ = mesh.col.bcast(mesh.j, data, bcast_len);
        }
        Some(d) => {
            let row_ndup = NDupComms::new(&mesh.row, d);
            let col_ndup = NDupComms::new(&mesh.col, d);
            let _ =
                pipelined_reduce_bcast(&row_ndup, mesh.i, &col_ndup, mesh.j, &contrib, bcast_len);
        }
    }
    rc.world().barrier();
    (rc.now() - t0).as_secs_f64()
}

/// Time the phase on the selected backend. Tracing stays on so every
/// record carries its critical-path profile next to the metrics.
fn comm_phase(
    backend: Backend,
    n: usize,
    n_dup: Option<usize>,
) -> (f64, MetricsBlock, Option<ProfileBlock>) {
    match backend {
        Backend::Sim => {
            let out = run(
                SimConfig::natural(P * P, 1, MachineProfile::stampede2_skylake()).with_trace(),
                move |rc: RankCtx| phase(&rc, n, n_dup),
            )
            .expect("matvec comm phase (sim)");
            let t = out.results.iter().cloned().fold(0.0, f64::max);
            (t, metrics_block(&out), profile_block(&out))
        }
        Backend::Rt => {
            let out = ovcomm_rt::run(
                RtConfig::natural(P * P, 1, MachineProfile::test_profile()).with_trace(),
                move |rc: RtRankCtx| phase(&rc, n, n_dup),
            )
            .expect("matvec comm phase (rt)");
            let t = out.results.iter().cloned().fold(0.0, f64::max);
            (t, metrics_block_rt(&out), profile_block_rt(&out))
        }
    }
}

fn main() {
    let backend = backend_arg();
    // Wall-clock runs move real bytes through mailboxes; keep the sweep a
    // size class smaller so the rt smoke run stays fast.
    let sizes: &[usize] = match backend {
        Backend::Sim => &[1 << 18, 1 << 21, 1 << 24, 1 << 26],
        Backend::Rt => &[1 << 16, 1 << 18, 1 << 20],
    };
    println!(
        "Figures 1-2: matvec reduce->broadcast phase, 4x4 mesh ({})\n",
        match backend {
            Backend::Sim => "simulated, 16 nodes",
            Backend::Rt => "measured, shared memory",
        }
    );
    let mut table = Table::new(&["vector", "N_DUP", "Alg1 (s)", "Alg2 (s)", "speedup"]);
    let mut rows = Vec::new();
    for &elems in sizes {
        let (t1, _, _) = comm_phase(backend, elems, None);
        for n_dup in [2usize, 4, 8] {
            let (t2, metrics, profile) = comm_phase(backend, elems, Some(n_dup));
            let label = if elems >= 1 << 20 {
                format!("{}M", elems >> 20)
            } else {
                format!("{}K", elems >> 10)
            };
            table.row(vec![
                label,
                n_dup.to_string(),
                format!("{t1:.6}"),
                format!("{t2:.6}"),
                format!("{:.2}", t1 / t2),
            ]);
            rows.push(Row {
                vector_elems: elems,
                n_dup,
                alg1_s: t1,
                alg2_s: t2,
                speedup: t1 / t2,
                metrics,
                profile,
            });
        }
    }
    table.print();
    println!(
        "\nAlgorithm 2's pipeline overlaps each chunk's broadcast with the next chunk's \
         reduction (Fig. 2); the win grows with the vector size as the phase becomes \
         bandwidth-bound."
    );
    match backend {
        Backend::Sim => write_json("figs12_matvec", &rows),
        Backend::Rt => write_json("figs12_matvec_rt", &rows),
    }
}
