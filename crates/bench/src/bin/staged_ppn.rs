//! Per-kernel PPN selection end to end (§III-B): an SCF-like application
//! launched at 8 PPN on 64 nodes (512 processes) whose purification stage
//! runs at a *different* PPN — the surplus processes sleep-poll an
//! `MPI_Ibarrier`. Compares keeping all 512 processes active against
//! waking only 1 or 2 per node for the purification kernel.

use ovcomm_bench::{metrics_block, profile_block, write_json, MetricsBlock, Table};
use ovcomm_core::StagePlan;
use ovcomm_obs::ProfileBlock;
use ovcomm_purify::{paper_system, scf_staged, KernelChoice, PurifyConfig, ScfConfig};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::{MachineProfile, SimDur};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    purify_ppn: usize,
    mesh: String,
    scf_time_s: f64,
    kernel_tflops: f64,
    metrics: MetricsBlock,
    profile: Option<ProfileBlock>,
}

fn staged(
    plan: StagePlan,
    choice: KernelChoice,
    label: &str,
    n: usize,
) -> (f64, f64, MetricsBlock, Option<ProfileBlock>) {
    let cfg = ScfConfig {
        purify: PurifyConfig {
            n,
            nocc: 0,
            tol: 1e-9,
            max_iter: 2, // two SymmSquareCube calls per SCF iteration
            phantom: true,
            seed: 0,
        },
        plan,
        fock_time: SimDur::from_millis(40),
        scf_iterations: 2,
    };
    let label = label.to_string();
    let out = run(
        SimConfig::natural(512, 8, MachineProfile::stampede2_skylake()).with_trace(),
        move |rc: RankCtx| {
            let res = scf_staged(&rc, &cfg, choice);
            (
                res.total_time.as_secs_f64(),
                res.purify_kernel_time.as_secs_f64(),
                res.kernel_calls,
            )
        },
    )
    .unwrap_or_else(|e| panic!("staged run {label}: {e}"));
    let total = out
        .results
        .iter()
        .map(|(t, _, _)| *t)
        .fold(0.0f64, f64::max);
    // Kernel TFlops from the slowest active rank's kernel time.
    let (ktime, calls) = out
        .results
        .iter()
        .filter(|(_, kt, c)| *c > 0 && *kt > 0.0)
        .map(|(_, kt, c)| (*kt, *c))
        .fold((0.0f64, 0usize), |acc, x| if x.0 > acc.0 { x } else { acc });
    let tflops = if calls > 0 {
        ovcomm_kernels::symm_square_cube_flops(n) * calls as f64 / ktime / 1e12
    } else {
        0.0
    };
    let profile = profile_block(&out);
    (total, tflops, metrics_block(&out), profile)
}

fn main() {
    let n = paper_system("1hsg_70").unwrap().dimension;
    println!("Per-kernel PPN (§III-B): 64 nodes x 8 PPN launched; purification wakes a subset\n");
    let mut table = Table::new(&["purify actives", "mesh", "SCF total (s)", "kernel TFlops"]);
    let mut rows = Vec::new();
    let configs: Vec<(usize, String, StagePlan, KernelChoice)> = vec![
        (
            8,
            "8x8x8 (3-D)".into(),
            StagePlan::per_node(8, 8),
            KernelChoice::Optimized { n_dup: 4 },
        ),
        (
            2,
            "8x8x2 (2.5D)".into(),
            StagePlan::per_node(2, 8),
            KernelChoice::TwoFiveD { c: 2, n_dup: 4 },
        ),
        (
            1,
            "4x4x4 (3-D)".into(),
            StagePlan::per_node(1, 8),
            KernelChoice::Optimized { n_dup: 4 },
        ),
    ];
    for (k, mesh, plan, choice) in configs {
        let (total, tflops, metrics, profile) = staged(plan, choice, &mesh, n);
        table.row(vec![
            format!("{k}/node"),
            mesh.clone(),
            format!("{total:.3}"),
            format!("{tflops:.2}"),
        ]);
        rows.push(Row {
            purify_ppn: k,
            mesh,
            scf_time_s: total,
            kernel_tflops: tflops,
            metrics,
            profile,
        });
    }
    table.print();
    println!(
        "\nthe mechanism lets the purification kernel run at whichever PPN/mesh is fastest \
         without changing the Fock stage's 8 PPN — the paper's GTFock modification."
    );
    write_json("staged_ppn", &rows);
}
