//! PR-over-PR bench trajectory: a pinned suite of representative runs
//! (the Figs. 1–2 matvec phase, Table I/II-style collectives, the
//! sim-vs-rt symm kernel) executed on **both** backends, appended as one
//! schema-versioned record to the root `BENCH_ovcomm.json`. Each case
//! carries its `MetricsBlock` and critical-path `ProfileBlock`, so the
//! file is a longitudinal record of both *performance* and *where the
//! time went*.
//!
//! Modes:
//!
//! - default: run the suite and append a record to `BENCH_ovcomm.json`.
//! - `--smoke`: smaller pinned sizes (the CI configuration).
//! - `--check`: compare against the most recent committed record with the
//!   same smoke flag and **exit nonzero** on regression; the file is not
//!   rewritten. Sim times are virtual and deterministic, so the gate is
//!   tight (`--threshold`, default 15%); rt times are wall clock on a
//!   shared CI box, so their gate is deliberately loose (`--rt-threshold`,
//!   default 100% — it catches order-of-magnitude breakage, not noise).
//! - `--label <s>`: tag the appended record.
//!
//! The run also writes annotated Perfetto traces (with the critical-path
//! track) for the matvec case to `results/bench_trajectory_<backend>.json`
//! and asserts the profiling acceptance property: every rt blame tree's
//! leaves sum to the measured makespan, and the rt runs name at least one
//! runtime-specific cause (spin-poll / park / rendezvous-stall /
//! progress-delay).
//!
//! `BENCH_ovcomm.json` is shared with the `rt_micro` microbenchmark,
//! whose records carry `kind: "rt-micro"`; this binary only reads and
//! gates against trajectory records (no `kind`, or `kind:
//! "trajectory"`).

// Bench drivers fail loudly by design.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::Path;

use ovcomm_bench::{
    canonical_json, metrics_block, metrics_block_rt, profile_block, profile_block_rt, Backend,
    MetricsBlock, Table,
};
use ovcomm_core::{
    overlapped_bcast, overlapped_reduce, pipelined_reduce_bcast, Communicator, NDupComms,
    RankHandle,
};
use ovcomm_densemat::{BlockBuf, BlockGrid, Partition1D};
use ovcomm_kernels::{
    symm_square_cube_cosma, symm_square_cube_optimized, symm_square_cube_summa, Mesh2D, Mesh3D,
    SummaBundles, SymmInput,
};
use ovcomm_obs::ProfileBlock;
use ovcomm_rt::{RtConfig, RtRankCtx};
use ovcomm_simmpi::{CollAlgo, CollSelector, Payload, RankCtx, SimConfig, VerifyMode};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;
use serde_json::Value;

/// Schema of one trajectory record (bump on shape changes).
const TRAJ_SCHEMA: u32 = 1;

/// The pinned suite: `(case name, nranks)`.
const SUITE: &[(&str, usize)] = &[
    ("matvec_ndup4", 16),
    ("bcast_blocking", 4),
    ("bcast_ndup4", 4),
    ("reduce_blocking", 4),
    ("reduce_ndup4", 4),
    ("symm3d_opt", 8),
    ("cosma_vs_summa", 4),
];

/// Sim-only cases: scales only the event-driven fiber engine can reach
/// (the rt backend spawns an OS thread per rank, so these would exhaust
/// the box). Tracks the engine's large-p wall-clock trajectory.
const SIM_ONLY_SUITE: &[(&str, usize)] = &[("allreduce_ed_p4096", 4096)];

/// Pinned problem size for a case: element count for matvec, message
/// bytes for collectives, matrix dimension for symm.
fn case_size(case: &str, backend: Backend, smoke: bool) -> usize {
    match (case, backend, smoke) {
        ("matvec_ndup4", Backend::Sim, false) => 1 << 21,
        ("matvec_ndup4", Backend::Sim, true) => 1 << 18,
        ("matvec_ndup4", Backend::Rt, false) => 1 << 18,
        ("matvec_ndup4", Backend::Rt, true) => 1 << 16,
        ("symm3d_opt", Backend::Sim, false) => 256,
        ("symm3d_opt", Backend::Sim, true) => 128,
        ("symm3d_opt", Backend::Rt, false) => 128,
        ("symm3d_opt", Backend::Rt, true) => 64,
        ("cosma_vs_summa", Backend::Sim, false) => 512,
        ("cosma_vs_summa", Backend::Sim, true) => 128,
        ("cosma_vs_summa", Backend::Rt, false) => 128,
        ("cosma_vs_summa", Backend::Rt, true) => 64,
        ("allreduce_ed_p4096", Backend::Sim, false) => 1 << 20,
        ("allreduce_ed_p4096", Backend::Sim, true) => 1 << 16,
        (_, Backend::Sim, false) => 8 << 20,
        (_, Backend::Sim, true) => 1 << 20,
        (_, Backend::Rt, false) => 1 << 18,
        (_, Backend::Rt, true) => 1 << 16,
    }
}

/// One suite case, generic over the backend's rank handle. Returns the
/// barrier-to-barrier phase time in (virtual or wall-clock) seconds.
fn workload<R: RankHandle>(rc: &R, case: &str, size: usize) -> f64 {
    let w = rc.world();
    w.barrier();
    let t0 = rc.now();
    match case {
        "matvec_ndup4" => {
            let mesh = Mesh2D::new(rc, 4);
            let part = Partition1D::new(size, 4);
            let contrib = Payload::Phantom(part.len(mesh.i) * 8);
            let bcast_len = part.len(mesh.j) * 8;
            let row = NDupComms::new(&mesh.row, 4);
            let col = NDupComms::new(&mesh.col, 4);
            let _ = pipelined_reduce_bcast(&row, mesh.i, &col, mesh.j, &contrib, bcast_len);
        }
        "bcast_blocking" => {
            let data = (rc.rank() == 0).then_some(Payload::Phantom(size));
            let _ = w.bcast(0, data, size);
        }
        "bcast_ndup4" => {
            let comms = NDupComms::new(&w, 4);
            let data = (rc.rank() == 0).then_some(Payload::Phantom(size));
            let _ = overlapped_bcast(&comms, 0, data.as_ref(), size);
        }
        "reduce_blocking" => {
            let _ = w.reduce(0, Payload::Phantom(size));
        }
        "reduce_ndup4" => {
            let comms = NDupComms::new(&w, 4);
            let _ = overlapped_reduce(&comms, 0, &Payload::Phantom(size));
        }
        "allreduce_ed_p4096" => {
            let _ = w.allreduce(Payload::Phantom(size));
        }
        "cosma_vs_summa" => {
            // Head-to-head phase: the two-sided SUMMA multiply followed by
            // the one-sided COSMA multiply on the same 2×2 mesh — the
            // trajectory tracks the paired cost so a regression in either
            // paradigm (or in the RMA epoch machinery) moves the number.
            let mesh = Mesh2D::new(rc, 2);
            let grid = BlockGrid::new(size, 2);
            let (r, c) = grid.block_dims(mesh.i, mesh.j);
            let input = SymmInput {
                n: size,
                d_block: Some(BlockBuf::Phantom(r, c)),
            };
            let bundles = SummaBundles::new(&mesh, 2);
            let _ = symm_square_cube_summa(rc, &mesh, &bundles, &input);
            let _ = symm_square_cube_cosma(rc, &mesh, &input);
        }
        "symm3d_opt" => {
            let mesh = Mesh3D::new(rc, 2);
            let grid = BlockGrid::new(size, 2);
            let (r, c) = grid.block_dims(mesh.i, mesh.j);
            let d_block = (mesh.k == 0).then_some(BlockBuf::Phantom(r, c));
            let bundles = mesh.dup_bundles(2);
            let input = SymmInput { n: size, d_block };
            let _ = symm_square_cube_optimized(rc, &mesh, &bundles, &input);
        }
        other => panic!("unknown suite case {other}"),
    }
    w.barrier();
    (rc.now() - t0).as_secs_f64()
}

#[derive(Serialize)]
struct CaseRecord {
    case: String,
    backend: String,
    seconds: f64,
    metrics: MetricsBlock,
    profile: Option<ProfileBlock>,
}

#[derive(Serialize)]
struct TrajRecord {
    schema: u32,
    kind: String,
    label: String,
    smoke: bool,
    cases: Vec<CaseRecord>,
}

/// `BENCH_ovcomm.json` holds both trajectory and `rt_micro` records; a
/// trajectory baseline is one with no `kind` (pre-split records) or
/// `kind: "trajectory"`.
fn is_trajectory(r: &Value) -> bool {
    match r.get("kind") {
        None => true,
        Some(Value::Str(k)) => k == "trajectory",
        Some(_) => false,
    }
}

/// Run one case on one backend; the matvec case also writes the annotated
/// Perfetto trace (critical-path track) for the CI artifact.
fn run_case(backend: Backend, case: &'static str, nranks: usize, smoke: bool) -> CaseRecord {
    let size = case_size(case, backend, smoke);
    let (seconds, metrics, profile, trace_and_makespan) = match backend {
        Backend::Sim => {
            // The large-p engine-trajectory case packs 32 ranks per node,
            // turns runtime verification off (its cost is Θ(messages) and
            // would dominate the measurement at 4096 ranks), and pins the
            // logarithmic-depth algorithm — the selector's long-message
            // choices make Θ(p²) messages, which is a different benchmark.
            let large = case == "allreduce_ed_p4096";
            let ppn = if large { 32 } else { 1 };
            let mut cfg =
                SimConfig::natural(nranks, ppn, MachineProfile::stampede2_skylake()).with_trace();
            if large {
                cfg = cfg
                    .with_verify(VerifyMode::Off)
                    .with_coll_select(
                        CollSelector::default().force(CollAlgo::AllreduceRecursiveDoubling),
                    )
                    .with_fiber_stack(128 << 10);
            }
            let out = ovcomm_simmpi::run(cfg, move |rc: RankCtx| workload(&rc, case, size))
                .unwrap_or_else(|e| panic!("sim {case}: {e}"));
            let t = out.results.iter().cloned().fold(0.0, f64::max);
            let (m, p) = (metrics_block(&out), profile_block(&out));
            (t, m, p, out.trace.map(|tr| (tr, out.makespan)))
        }
        Backend::Rt => {
            let out = ovcomm_rt::run(
                RtConfig::natural(nranks, 1, MachineProfile::test_profile()).with_trace(),
                move |rc: RtRankCtx| workload(&rc, case, size),
            )
            .unwrap_or_else(|e| panic!("rt {case}: {e}"));
            let t = out.results.iter().cloned().fold(0.0, f64::max);
            let (m, p) = (metrics_block_rt(&out), profile_block_rt(&out));
            (t, m, p, out.trace.map(|tr| (tr, out.makespan)))
        }
    };
    if case == "matvec_ndup4" {
        if let Some((trace, makespan)) = trace_and_makespan {
            if std::fs::create_dir_all("results").is_ok() {
                let segs = ovcomm_obs::critical_path_dag(trace.spans(), trace.edges(), makespan);
                let path = format!("results/bench_trajectory_{}.json", backend.name());
                match ovcomm_obs::write_trace_annotated(
                    Path::new(&path),
                    trace.spans(),
                    ovcomm_obs::perfetto::default_actor_name,
                    &segs,
                ) {
                    Ok(()) => eprintln!("wrote {path} (annotated Perfetto trace)"),
                    Err(e) => eprintln!("warning: cannot write {path}: {e}"),
                }
            }
        }
    }
    CaseRecord {
        case: case.to_string(),
        backend: backend.name().to_string(),
        seconds,
        metrics,
        profile,
    }
}

/// The profiling acceptance property: blame leaves sum to the makespan on
/// every profiled case, and the rt side decomposes its time into at least
/// one runtime-specific cause.
fn assert_profiles(cases: &[CaseRecord]) {
    let mut rt_named = false;
    for c in cases {
        let p = c.profile.as_ref().expect("traced suite run has a profile");
        let sum = p.blame.leaf_sum_us();
        let tol = 1e-6 * p.makespan_us.max(1.0);
        assert!(
            (sum - p.makespan_us).abs() <= tol,
            "{} {}: blame leaves sum to {sum}us, makespan {}us",
            c.backend,
            c.case,
            p.makespan_us
        );
        if c.backend == "rt"
            && ["spin-poll", "park", "rendezvous-stall", "progress-delay"]
                .iter()
                .any(|k| p.causes.contains_key(*k))
        {
            rt_named = true;
        }
    }
    assert!(
        rt_named,
        "no rt case named a runtime-specific cause (spin/park/rendezvous-stall/progress-delay)"
    );
}

/// `case/backend → seconds` of one stored trajectory record.
fn record_times(rec: &Value) -> Vec<(String, f64)> {
    let mut v = Vec::new();
    if let Some(cases) = rec.get("cases").and_then(Value::as_array) {
        for c in cases {
            if let (Some(name), Some(backend), Some(s)) = (
                c.get("case").and_then(Value::as_str),
                c.get("backend").and_then(Value::as_str),
                c.get("seconds").and_then(Value::as_f64),
            ) {
                v.push((format!("{name}/{backend}"), s));
            }
        }
    }
    v
}

/// Compare `cur` against the stored `prev` record; returns regression
/// descriptions (empty = gate passes). Missing baselines never fail —
/// new cases enter the trajectory on their first committed record.
fn regressions(prev: &Value, cur: &TrajRecord, thr_sim: f64, thr_rt: f64) -> Vec<String> {
    let base = record_times(prev);
    let mut bad = Vec::new();
    for c in &cur.cases {
        let key = format!("{}/{}", c.case, c.backend);
        let Some((_, old)) = base.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        let thr = if c.backend == "sim" { thr_sim } else { thr_rt };
        let allowed = old * (1.0 + thr);
        if c.seconds > allowed && c.seconds - old > 1e-9 {
            bad.push(format!(
                "{key}: {:.6}s vs baseline {:.6}s (+{:.1}% > {:.0}% allowed)",
                c.seconds,
                old,
                (c.seconds / old - 1.0) * 100.0,
                thr * 100.0
            ));
        }
    }
    bad
}

/// Parse the existing trajectory file into its record list (empty when
/// the file is missing or malformed — the trajectory restarts).
fn load_records(path: &Path) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match serde_json::from_str(&text) {
        Ok(v) => v
            .get("records")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default(),
        Err(e) => {
            eprintln!(
                "warning: {} unreadable ({e:?}); starting fresh",
                path.display()
            );
            Vec::new()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
    };
    let smoke = flag("--smoke");
    let check = flag("--check");
    let label = opt("--label").unwrap_or_else(|| "dev".to_string());
    let thr_sim: f64 = opt("--threshold").map_or(0.15, |s| s.parse().expect("--threshold"));
    let thr_rt: f64 = opt("--rt-threshold").map_or(1.0, |s| s.parse().expect("--rt-threshold"));
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_ovcomm.json".to_string());
    let out_path = Path::new(&out_path);

    println!(
        "bench trajectory: pinned suite on both backends ({} sizes)\n",
        if smoke { "smoke" } else { "full" }
    );
    let mut cases = Vec::new();
    for &(case, nranks) in SUITE {
        for backend in [Backend::Sim, Backend::Rt] {
            cases.push(run_case(backend, case, nranks, smoke));
        }
    }
    for &(case, nranks) in SIM_ONLY_SUITE {
        cases.push(run_case(Backend::Sim, case, nranks, smoke));
    }
    assert_profiles(&cases);

    let mut table = Table::new(&["case", "backend", "seconds", "top blame cause"]);
    for c in &cases {
        let top = c
            .profile
            .as_ref()
            .and_then(|p| {
                p.causes
                    .iter()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(k, v)| format!("{k} ({:.0}us)", v))
            })
            .unwrap_or_else(|| "-".to_string());
        table.row(vec![
            c.case.clone(),
            c.backend.clone(),
            format!("{:.6}", c.seconds),
            top,
        ]);
    }
    table.print();

    let record = TrajRecord {
        schema: TRAJ_SCHEMA,
        kind: "trajectory".to_string(),
        label,
        smoke,
        cases,
    };
    let mut records = load_records(out_path);

    if check {
        let prev = records.iter().rev().find(|r| {
            is_trajectory(r) && matches!(r.get("smoke"), Some(Value::Bool(b)) if *b == smoke)
        });
        match prev {
            None => println!("\nno committed baseline with smoke={smoke}; gate passes vacuously"),
            Some(prev) => {
                let bad = regressions(prev, &record, thr_sim, thr_rt);
                if bad.is_empty() {
                    println!(
                        "\ntrajectory gate: OK vs record `{}`",
                        prev.get("label").and_then(Value::as_str).unwrap_or("?")
                    );
                } else {
                    eprintln!("\ntrajectory gate: REGRESSION");
                    for b in &bad {
                        eprintln!("  {b}");
                    }
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    match serde_json::to_value(&record) {
        Ok(v) => records.push(v),
        Err(e) => panic!("cannot serialize trajectory record: {e:?}"),
    }
    let file = Value::Object(vec![
        ("schema".to_string(), Value::UInt(TRAJ_SCHEMA as u64)),
        ("records".to_string(), Value::Array(records)),
    ]);
    let text = canonical_json(&file).expect("canonical trajectory JSON");
    std::fs::write(out_path, text + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    println!("\nappended record to {}", out_path.display());
}
