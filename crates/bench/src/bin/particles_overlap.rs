//! Future-work demonstration (§VI): force-decomposition molecular dynamics
//! with the per-step reduce→broadcast pipelined (Algorithm 2 applied to an
//! N-body code). Sweeps the mesh size at a fixed particle count.

use ovcomm_bench::{metrics_block, profile_block, write_json, MetricsBlock, Table};
use ovcomm_kernels::{md_init, md_run, MdConfig, Mesh2D};
use ovcomm_obs::ProfileBlock;
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mesh_p: usize,
    nodes: usize,
    t_blocking_s: f64,
    t_overlap_s: f64,
    speedup: f64,
    metrics: MetricsBlock,
    profile: Option<ProfileBlock>,
}

fn md_time(
    p: usize,
    n: usize,
    overlap: Option<usize>,
) -> (f64, MetricsBlock, Option<ProfileBlock>) {
    let steps = 4;
    let out = run(
        SimConfig::natural(p * p, 1, MachineProfile::stampede2_skylake()).with_trace(),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let cfg = MdConfig {
                n_particles: n,
                steps,
                dt: 0.005,
                overlap,
                neighbors: Some(64), // cutoff interactions, as in real MD
            };
            let state = md_init(&rc, &mesh, &cfg, true);
            rc.world().barrier();
            let t0 = rc.now();
            let _ = md_run(&rc, &mesh, &cfg, state);
            rc.world().barrier();
            (rc.now() - t0).as_secs_f64() / steps as f64
        },
    )
    .expect("MD run");
    let t = out.results.iter().cloned().fold(0.0, f64::max);
    let profile = profile_block(&out);
    (t, metrics_block(&out), profile)
}

fn main() {
    let n = 16 << 20; // 16M particles
    println!("Force-decomposition MD (16M particles, PPN=1): step time\n");
    let mut table = Table::new(&[
        "mesh",
        "nodes",
        "blocking s/step",
        "overlap s/step",
        "speedup",
    ]);
    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let (tb, _, _) = md_time(p, n, None);
        let (to, metrics, profile) = md_time(p, n, Some(4));
        table.row(vec![
            format!("{p}x{p}"),
            (p * p).to_string(),
            format!("{tb:.6}"),
            format!("{to:.6}"),
            format!("{:.2}", tb / to),
        ]);
        rows.push(Row {
            mesh_p: p,
            nodes: p * p,
            t_blocking_s: tb,
            t_overlap_s: to,
            speedup: tb / to,
            metrics,
            profile,
        });
    }
    table.print();
    println!(
        "\nthe force reduction and position broadcast of each step pipeline chunk-by-chunk \
         on duplicated communicators — the paper's §VI particle-simulation direction."
    );
    write_json("particles_overlap", &rows);
}
