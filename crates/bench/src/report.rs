//! Table printing and JSON result records.
//!
//! Every JSON file the harness writes goes through [`canonical_json`]:
//! object keys are sorted recursively and floats are rounded to nine
//! significant digits, so regenerated records diff cleanly PR-over-PR
//! instead of churning on field order or last-bit float noise.

use std::fs;
use std::path::Path;

use serde::Serialize;
use serde_json::Value;

/// A simple fixed-width text table, printed paper-style.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Canonicalize a JSON value in place: sort object keys recursively and
/// round finite floats to nine significant digits. Applied to every
/// record the harness writes so output is byte-deterministic across runs
/// and stable under struct-field reordering.
pub fn canonicalize_value(v: &mut Value) {
    match v {
        Value::Float(f) if f.is_finite() => {
            // 9 significant digits: enough to compare runs, few
            // enough to absorb last-bit noise from summation order.
            *f = format!("{f:.8e}").parse().unwrap_or(*f);
        }
        Value::Array(items) => {
            for item in items {
                canonicalize_value(item);
            }
        }
        Value::Object(fields) => {
            for (_, item) in fields.iter_mut() {
                canonicalize_value(item);
            }
            fields.sort_by(|a, b| a.0.cmp(&b.0));
        }
        _ => {}
    }
}

/// Serialize `value` to canonical pretty JSON (sorted keys, rounded
/// floats — see [`canonicalize_value`]).
pub fn canonical_json<T: Serialize>(value: &T) -> Result<String, String> {
    let mut v = serde_json::to_value(value).map_err(|e| format!("{e:?}"))?;
    canonicalize_value(&mut v);
    serde_json::to_string_pretty(&v).map_err(|e| format!("{e:?}"))
}

/// The canonical input key of one record: the canonicalized values of the
/// `input_keys` fields (missing fields key as `Null`).
fn record_key(v: &Value, input_keys: &[&str]) -> Vec<Value> {
    input_keys
        .iter()
        .map(|k| {
            let mut f = v.get(k).cloned().unwrap_or(Value::Null);
            canonicalize_value(&mut f);
            f
        })
        .collect()
}

/// Merge freshly-measured rows against the previously committed ones,
/// keyed by their input fields. A new row whose inputs match a committed
/// record keeps the committed record verbatim — measured outputs (wall
/// clock, profiles) do not churn run-over-run; only rows whose inputs are
/// new or changed are replaced, and committed records whose inputs are no
/// longer produced are dropped. Row order follows the current run.
pub fn merge_rows(old: &[Value], new: Vec<Value>, input_keys: &[&str]) -> Vec<Value> {
    let old_keyed: Vec<(Vec<Value>, &Value)> =
        old.iter().map(|v| (record_key(v, input_keys), v)).collect();
    new.into_iter()
        .map(|nv| {
            let key = record_key(&nv, input_keys);
            match old_keyed.iter().find(|(k, _)| *k == key) {
                Some((_, ov)) => (*ov).clone(),
                None => nv,
            }
        })
        .collect()
}

/// Like [`write_json`], but keyed by each record's input fields via
/// [`merge_rows`]: records already in `results/<name>.json` with unchanged
/// inputs are preserved byte-for-byte, and the file is not rewritten at
/// all when the merged content is identical — so regenerating a report
/// produces an empty diff unless an input actually changed. Set
/// `OVCOMM_BENCH_REFRESH=1` to force remeasured values for every record.
pub fn merge_json<T: Serialize>(name: &str, rows: &[T], input_keys: &[&str]) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let mut new_vals = Vec::with_capacity(rows.len());
    for row in rows {
        match serde_json::to_value(row) {
            Ok(mut v) => {
                canonicalize_value(&mut v);
                new_vals.push(v);
            }
            Err(e) => {
                eprintln!("warning: cannot serialize {name} row: {e:?}");
                return;
            }
        }
    }
    let refresh = std::env::var_os("OVCOMM_BENCH_REFRESH").is_some_and(|v| v != "0");
    let existing = fs::read_to_string(&path).ok();
    let merged = match (&existing, refresh) {
        (Some(text), false) => match serde_json::from_str(text) {
            Ok(Value::Array(old)) => merge_rows(&old, new_vals, input_keys),
            _ => new_vals,
        },
        _ => new_vals,
    };
    match canonical_json(&Value::Array(merged)) {
        Ok(s) => {
            if existing.as_deref() == Some(s.as_str()) {
                eprintln!("{} unchanged (inputs identical)", path.display());
            } else if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {} (merged by inputs)", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Write a JSON record under `results/<name>.json` (creating the directory
/// next to the workspace root). Output is canonical: keys sorted, floats
/// rounded (see [`canonical_json`]).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match canonical_json(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["sys", "TFlops"]);
        t.row(vec!["1hsg_45".into(), "16.05".into()]);
        t.row(vec!["x".into(), "1.2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("TFlops"));
        assert!(lines[2].starts_with("1hsg_45"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn canonical_sorts_keys_and_rounds_floats() {
        let mut v = Value::Object(vec![
            ("zeta".into(), Value::Float(0.123_456_789_123_456_78)),
            (
                "alpha".into(),
                Value::Array(vec![Value::Object(vec![
                    ("b".into(), Value::Int(2)),
                    ("a".into(), Value::Int(1)),
                ])]),
            ),
        ]);
        canonicalize_value(&mut v);
        let Value::Object(fields) = &v else {
            panic!("object stays object")
        };
        assert_eq!(fields[0].0, "alpha");
        assert_eq!(fields[1].0, "zeta");
        let Value::Array(items) = &fields[0].1 else {
            panic!("array stays array")
        };
        let Value::Object(inner) = &items[0] else {
            panic!("nested object")
        };
        assert_eq!(inner[0].0, "a");
        assert_eq!(fields[1].1, Value::Float(0.123_456_789));
    }

    #[test]
    fn merge_rows_keeps_committed_records_with_unchanged_inputs() {
        let obj = |kernel: &str, n: u64, measured: f64| {
            Value::Object(vec![
                ("kernel".into(), Value::Str(kernel.into())),
                ("n".into(), Value::UInt(n)),
                ("measured_s".into(), Value::Float(measured)),
            ])
        };
        let old = vec![obj("summa", 64, 1.0), obj("cosma", 64, 2.0)];
        // Re-run: summa's inputs unchanged (noisy new measurement), cosma's
        // size changed, and a brand-new kernel appears.
        let new = vec![
            obj("summa", 64, 1.7),
            obj("cosma", 128, 3.0),
            obj("matvec", 64, 0.5),
        ];
        let merged = merge_rows(&old, new, &["kernel", "n"]);
        assert_eq!(merged.len(), 3);
        // Unchanged inputs → committed record kept verbatim (no churn).
        assert_eq!(merged[0], obj("summa", 64, 1.0));
        // Changed inputs → remeasured record replaces the committed one.
        assert_eq!(merged[1], obj("cosma", 128, 3.0));
        assert_eq!(merged[2], obj("matvec", 64, 0.5));
    }

    #[test]
    fn merge_rows_drops_records_no_longer_produced() {
        let obj = |kernel: &str| Value::Object(vec![("kernel".into(), Value::Str(kernel.into()))]);
        let old = vec![obj("summa"), obj("retired")];
        let merged = merge_rows(&old, vec![obj("summa")], &["kernel"]);
        assert_eq!(merged, vec![obj("summa")]);
    }

    #[test]
    fn canonical_json_is_deterministic() {
        #[derive(Serialize)]
        struct R {
            z: f64,
            a: u32,
        }
        let s1 = canonical_json(&R { z: 1.0 / 3.0, a: 7 }).unwrap();
        let s2 = canonical_json(&R { z: 1.0 / 3.0, a: 7 }).unwrap();
        assert_eq!(s1, s2);
        // Keys emitted in sorted order regardless of declaration order.
        assert!(s1.find("\"a\"").unwrap() < s1.find("\"z\"").unwrap());
    }
}
