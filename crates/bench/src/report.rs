//! Table printing and JSON result records.

use std::fs;
use std::path::Path;

use serde::Serialize;

/// A simple fixed-width text table, printed paper-style.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Write a JSON record under `results/<name>.json` (creating the directory
/// next to the workspace root).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["sys", "TFlops"]);
        t.row(vec!["1hsg_45".into(), "16.05".into()]);
        t.row(vec!["x".into(), "1.2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("TFlops"));
        assert!(lines[2].starts_with("1hsg_45"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
