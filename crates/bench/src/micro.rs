//! Micro-benchmarks: point-to-point bandwidth (Fig. 3) and collective
//! bandwidth under the three overlap cases (Figs. 4–5).

// Benchmark drivers fail loudly by design: `expect`/`unwrap` here surface
// simulator errors (including Strict-mode verification findings) directly
// as harness panics rather than recoverable results.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{overlapped_bcast, overlapped_reduce, NDupComms};
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::{MachineProfile, NodeMap};

use crate::metrics::{apply_coll_select, metrics_block, MetricsBlock};

/// Unidirectional point-to-point bandwidth between two nodes with `ppn`
/// sender/receiver pairs, each moving `msg` bytes. All sources live on node
/// 0, all destinations on node 1 (the paper's Fig. 3 setup). Returns the
/// aggregate bandwidth in bytes/second.
pub fn p2p_bandwidth(profile: &MachineProfile, ppn: usize, msg: usize) -> f64 {
    p2p_bandwidth_metrics(profile, ppn, msg).0
}

/// [`p2p_bandwidth`] plus the run's observability block.
pub fn p2p_bandwidth_metrics(
    profile: &MachineProfile,
    ppn: usize,
    msg: usize,
) -> (f64, MetricsBlock) {
    let nranks = 2 * ppn;
    let node_of: Vec<usize> = (0..nranks).map(|r| usize::from(r >= ppn)).collect();
    let cfg = apply_coll_select(SimConfig::with_map(
        NodeMap::custom(node_of),
        profile.clone(),
    ));
    let out = run(cfg, move |rc: RankCtx| {
        let w = rc.world();
        let me = rc.rank();
        if me < ppn {
            w.send(ppn + me, 0, Payload::Phantom(msg));
        } else {
            let _ = w.recv(me - ppn, 0);
        }
    })
    .expect("p2p micro-benchmark");
    let bw = (ppn * msg) as f64 / out.makespan.as_secs_f64();
    (bw, metrics_block(&out))
}

/// Which collective the micro-benchmark measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Broadcast from rank 0.
    Bcast,
    /// Sum-reduction to rank 0.
    Reduce,
}

/// How the collective is (or is not) overlapped — the three cases of §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollCase {
    /// One blocking collective, one process per node.
    Blocking,
    /// Nonblocking overlap: one process per node, N_DUP communicators each
    /// carrying 1/N_DUP of the message.
    NonblockingOverlap(usize),
    /// Multiple-PPN overlap: `ppn` processes per node, each in a column
    /// communicator (one rank per node) running a blocking collective of
    /// 1/ppn of the message (the paper's Fig. 4 configuration).
    PpnOverlap(usize),
}

/// Effective collective bandwidth over `nodes` nodes for an `msg`-byte
/// operation, normalized by the algorithmic volume `2(p−1)·n/p` as in the
/// paper's Fig. 5. Returns bytes/second.
pub fn coll_bandwidth(
    profile: &MachineProfile,
    kind: CollKind,
    case: CollCase,
    nodes: usize,
    msg: usize,
) -> f64 {
    coll_bandwidth_metrics(profile, kind, case, nodes, msg).0
}

/// [`coll_bandwidth`] plus the run's observability block.
pub fn coll_bandwidth_metrics(
    profile: &MachineProfile,
    kind: CollKind,
    case: CollCase,
    nodes: usize,
    msg: usize,
) -> (f64, MetricsBlock) {
    let (time, metrics) = coll_run(profile, kind, case, nodes, msg);
    let p = nodes as f64;
    let volume = 2.0 * (p - 1.0) * msg as f64 / p;
    (volume / time, metrics)
}

/// Virtual time of the collective under the given case.
pub fn coll_time(
    profile: &MachineProfile,
    kind: CollKind,
    case: CollCase,
    nodes: usize,
    msg: usize,
) -> f64 {
    coll_run(profile, kind, case, nodes, msg).0
}

fn coll_run(
    profile: &MachineProfile,
    kind: CollKind,
    case: CollCase,
    nodes: usize,
    msg: usize,
) -> (f64, MetricsBlock) {
    let out = match case {
        CollCase::Blocking => {
            let cfg = apply_coll_select(SimConfig::natural(nodes, 1, profile.clone()));
            run(cfg, move |rc: RankCtx| {
                let w = rc.world();
                match kind {
                    CollKind::Bcast => {
                        let data = (rc.rank() == 0).then_some(Payload::Phantom(msg));
                        let _ = w.bcast(0, data, msg);
                    }
                    CollKind::Reduce => {
                        let _ = w.reduce(0, Payload::Phantom(msg));
                    }
                }
            })
            .expect("blocking collective micro-benchmark")
        }
        CollCase::NonblockingOverlap(n_dup) => {
            let cfg = apply_coll_select(SimConfig::natural(nodes, 1, profile.clone()));
            run(cfg, move |rc: RankCtx| {
                let w = rc.world();
                let comms = NDupComms::new(&w, n_dup);
                match kind {
                    CollKind::Bcast => {
                        let data = (rc.rank() == 0).then_some(Payload::Phantom(msg));
                        let _ = overlapped_bcast(&comms, 0, data.as_ref(), msg);
                    }
                    CollKind::Reduce => {
                        let contrib = Payload::Phantom(msg);
                        let _ = overlapped_reduce(&comms, 0, &contrib);
                    }
                }
            })
            .expect("nonblocking-overlap micro-benchmark")
        }
        CollCase::PpnOverlap(ppn) => {
            // `nodes` nodes × ppn ranks; column communicator j contains the
            // ranks with local index j (one per node); each column runs a
            // blocking collective of msg/ppn bytes. Same inter-node volume
            // as the other cases (Fig. 4).
            let nranks = nodes * ppn;
            let part = msg / ppn;
            let cfg = apply_coll_select(SimConfig::natural(nranks, ppn, profile.clone()));
            run(cfg, move |rc: RankCtx| {
                let w = rc.world();
                let local = rc.rank() % ppn;
                let node = rc.rank() / ppn;
                let col = w
                    .split(local as i64, node as u64)
                    .expect("column communicator");
                match kind {
                    CollKind::Bcast => {
                        let data = (node == 0).then_some(Payload::Phantom(part));
                        let _ = col.bcast(0, data, part);
                    }
                    CollKind::Reduce => {
                        let _ = col.reduce(0, Payload::Phantom(part));
                    }
                }
            })
            .expect("ppn-overlap micro-benchmark")
        }
    };
    (out.makespan.as_secs_f64(), metrics_block(&out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_bandwidth_grows_with_ppn_at_moderate_sizes() {
        let p = MachineProfile::stampede2_skylake();
        let one = p2p_bandwidth(&p, 1, 256 * 1024);
        let four = p2p_bandwidth(&p, 4, 256 * 1024);
        assert!(four > 1.5 * one, "ppn4 {four} vs ppn1 {one}");
        assert!(four <= p.nic_bw * 1.01);
    }

    #[test]
    fn p2p_single_stream_approaches_peak_only_when_large() {
        let p = MachineProfile::stampede2_skylake();
        let small = p2p_bandwidth(&p, 1, 64 * 1024);
        let large = p2p_bandwidth(&p, 1, 16 << 20);
        assert!(small < 0.4 * p.nic_bw);
        assert!(large > 0.9 * p.nic_bw);
    }

    #[test]
    fn overlap_cases_beat_blocking_at_8mb() {
        let p = MachineProfile::stampede2_skylake();
        for kind in [CollKind::Bcast, CollKind::Reduce] {
            let blocking = coll_bandwidth(&p, kind, CollCase::Blocking, 4, 8 << 20);
            let ndup = coll_bandwidth(&p, kind, CollCase::NonblockingOverlap(4), 4, 8 << 20);
            let ppn = coll_bandwidth(&p, kind, CollCase::PpnOverlap(4), 4, 8 << 20);
            assert!(
                ndup > blocking,
                "{kind:?}: ndup {ndup} vs blocking {blocking}"
            );
            assert!(ppn > blocking, "{kind:?}: ppn {ppn} vs blocking {blocking}");
        }
    }
}
