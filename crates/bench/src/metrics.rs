//! The structured metrics block attached to every JSON record the harness
//! emits: overlap efficiency, NIC utilization and wait-time share of the
//! run each record was measured from — tagged with the backend (simulated
//! virtual time vs. rt wall clock) that produced it.

use ovcomm_obs::analyze;
use ovcomm_rt::RtOutput;
use ovcomm_simmpi::SimOutput;
use ovcomm_simnet::{SimTime, SpanKind, TraceSpan};
use serde::Serialize;

/// Headline observability figures of one run (simulated or real).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsBlock {
    /// Which backend produced this record: `"sim"` (virtual time, flow
    /// model) or `"rt"` (OS threads, wall clock).
    pub backend: &'static str,
    /// Fraction of communication-busy time carrying ≥ 2 concurrent
    /// transfers — how much of the communication was overlapped with other
    /// communication. On sim this is NIC-flow concurrency; on rt it is
    /// span concurrency across ranks (no flow model exists for real runs).
    pub overlap_efficiency: f64,
    /// Mean NIC busy fraction over the run.
    pub nic_busy_frac: f64,
    /// Share of total rank-time blocked in waits and blocking calls.
    pub wait_time_share: f64,
    /// Flows that ran to completion.
    pub completed_flows: u64,
    /// Mean per-flow queueing delay in microseconds.
    pub mean_queue_delay_us: f64,
    /// Spans clamped for `end < start` — non-zero flags an
    /// instrumentation bug.
    pub clamped_spans: u64,
}

/// Build the metrics block from a finished run. Works with or without
/// tracing: the NIC figures come from the always-on network accounting,
/// and the wait share from the always-on `simmpi.wait_ns` /
/// `simmpi.blocking_ns` histograms.
pub fn metrics_block<T>(out: &SimOutput<T>) -> MetricsBlock {
    let empty: &[TraceSpan] = &[];
    let spans = out.trace.as_ref().map_or(empty, |t| t.spans());
    let report = analyze(spans, &out.net, out.makespan);
    let blocked_ns: u64 = out
        .metrics
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("simmpi.wait_ns") || k.starts_with("simmpi.blocking_ns"))
        .map(|(_, h)| h.sum)
        .sum();
    let nranks = out.results.len().max(1) as f64;
    let total_ns = out.makespan.as_nanos() as f64 * nranks;
    let wait_time_share = if total_ns > 0.0 {
        (blocked_ns as f64 / total_ns).min(1.0)
    } else {
        0.0
    };
    MetricsBlock {
        backend: "sim",
        overlap_efficiency: report.nic_overlap2_frac,
        nic_busy_frac: report.nic_busy_frac,
        wait_time_share,
        completed_flows: report.completed_flows,
        mean_queue_delay_us: report.mean_queue_delay_us,
        clamped_spans: out.clamped_spans as u64,
    }
}

/// Sweep-line concurrency over communication spans: returns
/// (busy fraction, overlapped-given-busy fraction) of the makespan during
/// which ≥ 1 / ≥ 2 communication spans were active across all ranks.
fn span_concurrency(spans: &[TraceSpan], makespan: SimTime) -> (f64, f64) {
    let mut edges: Vec<(u64, i64)> = Vec::new();
    for s in spans {
        let comm = matches!(
            s.kind,
            SpanKind::BlockingCall | SpanKind::Wait | SpanKind::CollStep
        );
        if comm && s.end > s.start {
            edges.push((s.start.as_nanos(), 1));
            edges.push((s.end.as_nanos(), -1));
        }
    }
    edges.sort_unstable();
    let (mut depth, mut last, mut busy, mut over2) = (0i64, 0u64, 0u64, 0u64);
    for (t, d) in edges {
        if depth >= 1 {
            busy += t - last;
        }
        if depth >= 2 {
            over2 += t - last;
        }
        depth += d;
        last = t;
    }
    let total = makespan.as_nanos().max(1) as f64;
    let busy_frac = busy as f64 / total;
    let over2_frac = if busy > 0 {
        over2 as f64 / busy as f64
    } else {
        0.0
    };
    (busy_frac, over2_frac)
}

/// Build the metrics block from a finished **rt** (wall-clock) run. The
/// real backend has no flow network, so the NIC figures are replaced by
/// their span-based analogues: busy = some rank inside a communication
/// call, overlapped = ≥ 2 ranks concurrently communicating. The wait-time
/// share comes from the same `simmpi.wait_ns`/`simmpi.blocking_ns`
/// histograms both backends record.
pub fn metrics_block_rt<T>(out: &RtOutput<T>) -> MetricsBlock {
    let empty: &[TraceSpan] = &[];
    let spans = out.trace.as_ref().map_or(empty, |t| t.spans());
    let (busy_frac, over2_frac) = span_concurrency(spans, out.makespan);
    let blocked_ns: u64 = out
        .metrics
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("simmpi.wait_ns") || k.starts_with("simmpi.blocking_ns"))
        .map(|(_, h)| h.sum)
        .sum();
    let nranks = out.results.len().max(1) as f64;
    let total_ns = out.makespan.as_nanos() as f64 * nranks;
    let wait_time_share = if total_ns > 0.0 {
        (blocked_ns as f64 / total_ns).min(1.0)
    } else {
        0.0
    };
    MetricsBlock {
        backend: "rt",
        overlap_efficiency: over2_frac,
        nic_busy_frac: busy_frac,
        wait_time_share,
        // No flow model on real threads: count delivered messages instead.
        completed_flows: out.messages,
        mean_queue_delay_us: 0.0,
        clamped_spans: out.clamped_spans as u64,
    }
}

/// Which runtime a bench binary should execute on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Virtual-time simulator (the default; modeled times).
    Sim,
    /// Real shared-memory runtime (OS threads; measured wall-clock times).
    Rt,
}

impl Backend {
    /// Stable name, matching [`MetricsBlock::backend`].
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Rt => "rt",
        }
    }
}

/// `--backend {sim,rt}` from the process arguments; defaults to `sim`.
/// A malformed value aborts the bench loudly.
pub fn backend_arg() -> Backend {
    let mut spec = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--backend" {
            spec = args.next();
        } else if let Some(s) = a.strip_prefix("--backend=") {
            spec = Some(s.to_string());
        }
    }
    match spec.as_deref() {
        None | Some("sim") => Backend::Sim,
        Some("rt") => Backend::Rt,
        Some(other) => panic!("bad --backend `{other}`: expected sim or rt"),
    }
}

/// `--coll-select <spec>` from the process arguments, if present — the
/// collective-algorithm selection knob shared by all bench binaries.
/// The spec is parsed by [`ovcomm_simmpi::CollSelector::parse`]
/// (`<coll>=<bytes>` thresholds and `<coll>:<algo>` forcings, comma
/// separated); a malformed spec aborts the bench loudly.
pub fn coll_select_arg() -> Option<ovcomm_simmpi::CollSelector> {
    let mut spec = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--coll-select" {
            spec = args.next();
        } else if let Some(s) = a.strip_prefix("--coll-select=") {
            spec = Some(s.to_string());
        }
    }
    spec.map(|s| match ovcomm_simmpi::CollSelector::parse(&s) {
        Ok(sel) => sel,
        Err(e) => panic!("bad --coll-select spec `{s}`: {e}"),
    })
}

/// Apply the `--coll-select` CLI knob (when present) to a run config —
/// every simulated run the harness launches goes through this, so the
/// knob uniformly reaches micro-benchmarks and kernel runs alike.
pub fn apply_coll_select(cfg: ovcomm_simmpi::SimConfig) -> ovcomm_simmpi::SimConfig {
    match coll_select_arg() {
        Some(sel) => cfg.with_coll_select(sel),
        None => cfg,
    }
}

/// `--trace-out <path>` from the process arguments, if present — bench
/// binaries pass it through to [`ovcomm_simmpi::SimConfig::with_trace_out`]
/// so any table/figure run can be opened in ui.perfetto.dev.
pub fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
    use ovcomm_simnet::MachineProfile;

    #[test]
    fn metrics_block_reflects_communication() {
        let out = run(
            SimConfig::natural(4, 1, MachineProfile::test_profile()),
            |rc: RankCtx| {
                let w = rc.world();
                let data = (rc.rank() == 0).then_some(Payload::Phantom(1 << 20));
                let _ = w.bcast(0, data, 1 << 20);
            },
        )
        .unwrap();
        let m = metrics_block(&out);
        assert_eq!(m.backend, "sim");
        assert!(m.nic_busy_frac > 0.0, "bcast must use the NICs");
        assert!(m.wait_time_share > 0.0, "non-roots block in bcast");
        assert!(m.wait_time_share <= 1.0);
        assert!(m.completed_flows > 0);
        assert_eq!(m.clamped_spans, 0);
    }

    #[test]
    fn metrics_block_rt_reflects_real_communication() {
        let out = ovcomm_rt::run(
            ovcomm_rt::RtConfig::natural(4, 1, MachineProfile::test_profile()).with_trace(),
            |rc: ovcomm_rt::RtRankCtx| {
                let w = rc.world();
                let data = (rc.rank() == 0).then_some(Payload::Phantom(1 << 16));
                let _ = w.bcast(0, data, 1 << 16);
            },
        )
        .unwrap();
        let m = metrics_block_rt(&out);
        assert_eq!(m.backend, "rt");
        assert!(m.nic_busy_frac > 0.0, "bcast spans must register as busy");
        assert!(m.completed_flows > 0, "bcast moves messages");
        assert_eq!(m.clamped_spans, 0);
    }
}
