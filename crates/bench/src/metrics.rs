//! The structured metrics block attached to every JSON record the harness
//! emits: overlap efficiency, NIC utilization and wait-time share of the
//! simulated run each record was measured from.

use ovcomm_obs::analyze;
use ovcomm_simmpi::SimOutput;
use ovcomm_simnet::TraceSpan;
use serde::Serialize;

/// Headline observability figures of one simulated run.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsBlock {
    /// Fraction of NIC-busy time carrying ≥ 2 concurrent flows — how much
    /// of the communication was overlapped with other communication.
    pub overlap_efficiency: f64,
    /// Mean NIC busy fraction over the run.
    pub nic_busy_frac: f64,
    /// Share of total rank-time blocked in waits and blocking calls.
    pub wait_time_share: f64,
    /// Flows that ran to completion.
    pub completed_flows: u64,
    /// Mean per-flow queueing delay in microseconds.
    pub mean_queue_delay_us: f64,
    /// Spans clamped for `end < start` — non-zero flags an
    /// instrumentation bug.
    pub clamped_spans: u64,
}

/// Build the metrics block from a finished run. Works with or without
/// tracing: the NIC figures come from the always-on network accounting,
/// and the wait share from the always-on `simmpi.wait_ns` /
/// `simmpi.blocking_ns` histograms.
pub fn metrics_block<T>(out: &SimOutput<T>) -> MetricsBlock {
    let empty: &[TraceSpan] = &[];
    let spans = out.trace.as_ref().map_or(empty, |t| t.spans());
    let report = analyze(spans, &out.net, out.makespan);
    let blocked_ns: u64 = out
        .metrics
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("simmpi.wait_ns") || k.starts_with("simmpi.blocking_ns"))
        .map(|(_, h)| h.sum)
        .sum();
    let nranks = out.results.len().max(1) as f64;
    let total_ns = out.makespan.as_nanos() as f64 * nranks;
    let wait_time_share = if total_ns > 0.0 {
        (blocked_ns as f64 / total_ns).min(1.0)
    } else {
        0.0
    };
    MetricsBlock {
        overlap_efficiency: report.nic_overlap2_frac,
        nic_busy_frac: report.nic_busy_frac,
        wait_time_share,
        completed_flows: report.completed_flows,
        mean_queue_delay_us: report.mean_queue_delay_us,
        clamped_spans: out.clamped_spans as u64,
    }
}

/// `--coll-select <spec>` from the process arguments, if present — the
/// collective-algorithm selection knob shared by all bench binaries.
/// The spec is parsed by [`ovcomm_simmpi::CollSelector::parse`]
/// (`<coll>=<bytes>` thresholds and `<coll>:<algo>` forcings, comma
/// separated); a malformed spec aborts the bench loudly.
pub fn coll_select_arg() -> Option<ovcomm_simmpi::CollSelector> {
    let mut spec = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--coll-select" {
            spec = args.next();
        } else if let Some(s) = a.strip_prefix("--coll-select=") {
            spec = Some(s.to_string());
        }
    }
    spec.map(|s| match ovcomm_simmpi::CollSelector::parse(&s) {
        Ok(sel) => sel,
        Err(e) => panic!("bad --coll-select spec `{s}`: {e}"),
    })
}

/// Apply the `--coll-select` CLI knob (when present) to a run config —
/// every simulated run the harness launches goes through this, so the
/// knob uniformly reaches micro-benchmarks and kernel runs alike.
pub fn apply_coll_select(cfg: ovcomm_simmpi::SimConfig) -> ovcomm_simmpi::SimConfig {
    match coll_select_arg() {
        Some(sel) => cfg.with_coll_select(sel),
        None => cfg,
    }
}

/// `--trace-out <path>` from the process arguments, if present — bench
/// binaries pass it through to [`ovcomm_simmpi::SimConfig::with_trace_out`]
/// so any table/figure run can be opened in ui.perfetto.dev.
pub fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
    use ovcomm_simnet::MachineProfile;

    #[test]
    fn metrics_block_reflects_communication() {
        let out = run(
            SimConfig::natural(4, 1, MachineProfile::test_profile()),
            |rc: RankCtx| {
                let w = rc.world();
                let data = (rc.rank() == 0).then_some(Payload::Phantom(1 << 20));
                let _ = w.bcast(0, data, 1 << 20);
            },
        )
        .unwrap();
        let m = metrics_block(&out);
        assert!(m.nic_busy_frac > 0.0, "bcast must use the NICs");
        assert!(m.wait_time_share > 0.0, "non-roots block in bcast");
        assert!(m.wait_time_share <= 1.0);
        assert!(m.completed_flows > 0);
        assert_eq!(m.clamped_spans, 0);
    }
}
