//! ASCII log–log line charts — terminal renditions of the paper's
//! bandwidth-vs-message-size figures (Figs. 3 and 5).

/// One curve: a label, a plotting glyph, and (x, y) samples.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Glyph used for this curve's points.
    pub glyph: char,
    /// (x, y) samples; x and y must be positive (log axes).
    pub points: Vec<(f64, f64)>,
}

/// Render curves on a log–log grid of `width`×`height` characters.
pub fn plot_loglog(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 4);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    if all.is_empty() {
        return String::new();
    }
    for &(x, y) in &all {
        assert!(x > 0.0 && y > 0.0, "log axes need positive samples");
    }
    let (x0, x1) = all
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
    let (y0, y1) = all
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
    let (lx0, lx1) = (x0.ln(), (x1 * 1.0001).ln());
    let (ly0, ly1) = (y0.ln(), (y1 * 1.0001).ln());
    let xcol = |x: f64| (((x.ln() - lx0) / (lx1 - lx0)) * (width - 1) as f64).round() as usize;
    let yrow = |y: f64| {
        height - 1 - (((y.ln() - ly0) / (ly1 - ly0)) * (height - 1) as f64).round() as usize
    };

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let (c, r) = (xcol(x).min(width - 1), yrow(y).min(height - 1));
            grid[r][c] = s.glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let ylab = if r == 0 {
            format!("{:>9.0} |", y1)
        } else if r == height - 1 {
            format!("{:>9.0} |", y0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&ylab);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>9}  {:<width$}\n",
        "",
        "-".repeat(width),
        "",
        format!("{:.0} .. {:.0} (log x)", x0, x1),
    ));
    for s in series {
        out.push_str(&format!("{:>9}  {} = {}\n", "", s.glyph, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_two_series() {
        let s = vec![
            Series {
                label: "a".into(),
                glyph: '*',
                points: vec![(1.0, 10.0), (100.0, 1000.0)],
            },
            Series {
                label: "b".into(),
                glyph: 'o',
                points: vec![(1.0, 5.0), (100.0, 50.0)],
            },
        ];
        let out = plot_loglog(&s, 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("a"));
        // Higher series plots above the lower one at x=100.
        let lines: Vec<&str> = out.lines().collect();
        let star_line = lines.iter().position(|l| l.contains('*')).unwrap();
        let o_line = lines.iter().rposition(|l| l.contains('o')).unwrap();
        assert!(star_line < o_line);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn rejects_nonpositive() {
        plot_loglog(
            &[Series {
                label: "x".into(),
                glyph: '*',
                points: vec![(0.0, 1.0)],
            }],
            40,
            8,
        );
    }
}
