//! `ProfileBlock` builders: the critical-path/wait-blame record attached
//! next to each [`MetricsBlock`](crate::MetricsBlock) in bench JSON.
//!
//! The blocks come from [`ovcomm_obs::profile`], which rebuilds the
//! happens-before DAG from the run's trace spans plus send→recv and
//! post→wait edges and folds the DAG critical path into a
//! phase → operation → step → cause blame tree. Both backends emit the
//! same span/edge schema, so one builder per backend is all the harness
//! needs; runs without tracing yield `None` (no spans, nothing to blame).

use ovcomm_obs::ProfileBlock;
use ovcomm_rt::RtOutput;
use ovcomm_simmpi::SimOutput;

/// Build the profile block for a finished simulator run, or `None` when
/// the run was not traced.
pub fn profile_block<T>(out: &SimOutput<T>) -> Option<ProfileBlock> {
    let trace = out.trace.as_ref()?;
    Some(ovcomm_obs::profile(
        trace.spans(),
        trace.edges(),
        &out.metrics,
        out.makespan,
        "sim",
    ))
}

/// Build the profile block for a finished **rt** (wall-clock) run, or
/// `None` when the run was not traced. Wait time on the path splits into
/// spin/park/rendezvous-stall by the run's recorded `rt.wait_*_ns` sums.
pub fn profile_block_rt<T>(out: &RtOutput<T>) -> Option<ProfileBlock> {
    let trace = out.trace.as_ref()?;
    Some(ovcomm_obs::profile(
        trace.spans(),
        trace.edges(),
        &out.metrics,
        out.makespan,
        "rt",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
    use ovcomm_simnet::MachineProfile;

    #[test]
    fn sim_profile_tiles_makespan() {
        let out = run(
            SimConfig::natural(4, 1, MachineProfile::test_profile()).with_trace(),
            |rc: RankCtx| {
                let w = rc.world();
                let data = (rc.rank() == 0).then_some(Payload::Phantom(1 << 20));
                let _ = w.bcast(0, data, 1 << 20);
            },
        )
        .unwrap();
        let p = profile_block(&out).expect("traced run yields a profile");
        assert_eq!(p.backend, "sim");
        let sum: f64 = p.critical_path.iter().map(|s| s.dur_us).sum();
        assert!(
            (sum - p.makespan_us).abs() < 1e-6,
            "path tiles makespan: {sum} vs {}",
            p.makespan_us
        );
        assert!((p.blame.leaf_sum_us() - p.makespan_us).abs() < 1e-6);
    }

    #[test]
    fn untraced_run_has_no_profile() {
        let out = run(
            SimConfig::natural(2, 1, MachineProfile::test_profile()),
            |_rc: RankCtx| {},
        )
        .unwrap();
        assert!(profile_block(&out).is_none());
    }

    #[test]
    fn rt_profile_names_rt_causes() {
        let out = ovcomm_rt::run(
            ovcomm_rt::RtConfig::natural(4, 1, MachineProfile::test_profile()).with_trace(),
            |rc: ovcomm_rt::RtRankCtx| {
                let w = rc.world();
                let data = (rc.rank() == 0).then_some(Payload::Phantom(1 << 16));
                let _ = w.bcast(0, data, 1 << 16);
            },
        )
        .unwrap();
        let p = profile_block_rt(&out).expect("traced rt run yields a profile");
        assert_eq!(p.backend, "rt");
        assert!((p.blame.leaf_sum_us() - p.makespan_us).abs() < 1e-6);
    }
}
