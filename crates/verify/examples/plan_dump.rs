//! Dump the compiled per-rank schedules of one collective instance —
//! the worked example behind `docs/coll-plans.md`.
//!
//! ```sh
//! cargo run -p ovcomm-verify --example plan_dump
//! ```

use ovcomm_verify::plan::{build_all, lint_plans, CollAlgo};
use ovcomm_verify::CollKind;

fn main() {
    let (p, n, root) = (4, 1024, 0);
    let plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, p, n, root);
    for plan in &plans {
        print!("{}", plan.dump());
    }
    let findings = lint_plans(&plans);
    println!("lint findings: {}", findings.len());
    for f in &findings {
        println!("  {f}");
    }
}
