//! # ovcomm-verify
//!
//! MPI communication-correctness analyzer for the ovcomm simulator.
//!
//! The simulator records an [`Event`] log through a shared [`Verifier`]
//! while a run executes; after a successful run the log is analyzed for
//! collective-matching violations, leaked requests, unmatched messages and
//! order-dependent receive matching, and on deadlock the verifier's
//! blocked-agent table turns the engine's bare "deadlock" verdict into a
//! [`DeadlockReport`] with per-rank pending operations and the wait-for
//! cycle.
//!
//! Recording is wall-clock-only bookkeeping: it never advances virtual
//! clocks or schedules events, so enabling verification cannot change the
//! simulated timings or results.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod analyze;
mod deadlock;
mod event;
mod finding;
pub mod plan;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

pub use deadlock::{BlockedAgent, DeadlockReport, PendingOp};
pub use event::{AgentId, CollKind, Event, ReqId, RmaKind, Site, INTERNAL_TAG_BIT};
pub use finding::{CollCallDesc, Finding, FindingKind, LeakKind, SeqEntry, Severity};

/// How much verification a run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No event recording, no analysis; deadlocks report blocked ranks only.
    Off,
    /// Record and analyze; print findings to stderr but never fail the run.
    Warn,
    /// Record and analyze; error-severity findings fail the run. The
    /// default, so every test and bench doubles as a correctness check.
    #[default]
    Strict,
}

/// What one agent is currently blocked on (for deadlock diagnosis).
#[derive(Debug, Clone, Copy)]
enum Waiting {
    /// Blocked in a wait on a tracked request.
    Req(ReqId),
    /// Blocked in the `MPI_Comm_split` gather on a parent context.
    Split { ctx: u32 },
}

/// Verification output attached to a successful run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, errors first (empty when verification was off).
    pub findings: Vec<Finding>,
    /// Tracked requests whose last handle was dropped before completion.
    pub dropped_incomplete: u64,
    /// Tracked requests that completed but whose result was never taken.
    pub dropped_untaken: u64,
}

impl VerifyReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }
}

/// The event recorder shared by every agent of one simulated run.
///
/// All methods are callable from any thread; per-agent event order is
/// program order because each agent appends its own events.
#[derive(Default)]
pub struct Verifier {
    events: Mutex<Vec<Event>>,
    next_req: AtomicU64,
    waiting: Mutex<BTreeMap<AgentId, Waiting>>,
    dropped_incomplete: AtomicU64,
    dropped_untaken: AtomicU64,
}

impl Verifier {
    /// Fresh verifier.
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// Mint a unique request id.
    pub fn next_req_id(&self) -> ReqId {
        self.next_req.fetch_add(1, Ordering::Relaxed)
    }

    /// Append an event to the log.
    pub fn record(&self, ev: Event) {
        self.events.lock().push(ev);
    }

    /// Mark `agent` as blocked waiting on `req` (cleared by
    /// [`Verifier::wait_end`]). Entries that are never cleared — because a
    /// deadlock unwound the agent — are exactly the deadlock diagnosis.
    pub fn wait_begin(&self, agent: AgentId, req: ReqId) {
        self.waiting.lock().insert(agent, Waiting::Req(req));
    }

    /// Mark `agent` as blocked in a split on parent context `ctx`.
    pub fn wait_begin_split(&self, agent: AgentId, ctx: u32) {
        self.waiting.lock().insert(agent, Waiting::Split { ctx });
    }

    /// Clear `agent`'s blocked marker.
    pub fn wait_end(&self, agent: AgentId) {
        self.waiting.lock().remove(&agent);
    }

    /// Record the drop of a tracked request's last handle and bump the
    /// leak counters.
    pub fn req_dropped(&self, req: ReqId, completed: bool, taken: bool) {
        if !completed {
            self.dropped_incomplete.fetch_add(1, Ordering::Relaxed);
        } else if !taken {
            self.dropped_untaken.fetch_add(1, Ordering::Relaxed);
        }
        self.record(Event::ReqDropped {
            req,
            completed,
            taken,
        });
    }

    /// Current leak counters `(dropped_incomplete, dropped_untaken)`.
    pub fn drop_counters(&self) -> (u64, u64) {
        (
            self.dropped_incomplete.load(Ordering::Relaxed),
            self.dropped_untaken.load(Ordering::Relaxed),
        )
    }

    /// Run all analyses over the log.
    pub fn analyze(&self) -> Vec<Finding> {
        analyze::analyze(&self.events.lock())
    }

    /// Build the deadlock diagnosis from the blocked-agent table.
    /// `blocked` is the engine's `(actor id, world rank)` list of agents
    /// that were parked when deadlock was declared.
    pub fn deadlock_report(&self, blocked: &[(AgentId, u32)]) -> DeadlockReport {
        let events = self.events.lock();
        let waiting = self.waiting.lock();
        let mut entries: Vec<BlockedAgent> = blocked
            .iter()
            .map(|&(agent, rank)| {
                let pending = waiting.get(&agent).map(|w| match w {
                    Waiting::Req(req) => {
                        let (op, site) = analyze::describe_req(&events, *req)
                            .unwrap_or_else(|| ("an untracked operation".to_string(), None));
                        PendingOp {
                            op,
                            peers: analyze::req_peers(&events, *req),
                            site,
                        }
                    }
                    Waiting::Split { ctx } => PendingOp {
                        op: format!("MPI_Comm_split on comm {ctx} (some member never called it)"),
                        peers: Vec::new(),
                        site: None,
                    },
                });
                BlockedAgent {
                    agent,
                    rank,
                    is_op_agent: agent & 0x8000_0000 != 0,
                    pending,
                }
            })
            .collect();
        entries.sort_by_key(|b| (b.rank, b.agent));
        let mut report = DeadlockReport {
            blocked: entries,
            cycle: Vec::new(),
        };
        report.find_cycle();
        report
    }

    /// Number of recorded events (diagnostics).
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn send(agent: AgentId, ctx: u32, dst: u32, tag: u64, req: ReqId) -> Event {
        Event::SendPost {
            agent,
            rank: agent,
            ctx,
            dst,
            tag,
            bytes: 64,
            internal: false,
            req,
            site: None,
        }
    }

    fn recv(agent: AgentId, ctx: u32, src: u32, tag: u64, req: ReqId) -> Event {
        Event::RecvPost {
            agent,
            rank: agent,
            ctx,
            src,
            tag,
            internal: false,
            req,
            site: None,
        }
    }

    fn coll(rank: u32, ctx: u32, kind: CollKind, root: Option<u32>, len: usize) -> Event {
        Event::Coll {
            agent: rank,
            rank,
            ctx,
            kind,
            root,
            len,
            blocking: true,
            req: None,
            op_agent: None,
            site: None,
        }
    }

    fn decl(ctx: u32, members: &[u32]) -> Event {
        Event::CommDecl {
            ctx,
            members: Arc::new(members.to_vec()),
        }
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(Finding::code).collect()
    }

    #[test]
    fn root_mismatch_is_flagged_with_both_ranks() {
        let v = Verifier::new();
        v.record(decl(0, &[0, 1]));
        v.record(coll(0, 0, CollKind::Bcast, Some(0), 64));
        v.record(coll(1, 0, CollKind::Bcast, Some(1), 64));
        let f = v.analyze();
        assert!(codes(&f).contains(&"coll-mismatch"), "{f:?}");
        let text = f[0].to_string();
        assert!(text.contains("rank 0") && text.contains("rank 1"), "{text}");
        assert!(text.contains("root=0") && text.contains("root=1"), "{text}");
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn skipped_collective_is_count_divergence() {
        let v = Verifier::new();
        v.record(decl(0, &[0, 1, 2]));
        v.record(coll(0, 0, CollKind::Barrier, None, 0));
        v.record(coll(1, 0, CollKind::Barrier, None, 0));
        // rank 2 never calls.
        let f = v.analyze();
        assert!(codes(&f).contains(&"coll-count"), "{f:?}");
        assert!(f[0].to_string().contains("rank 2"), "{}", f[0]);
    }

    #[test]
    fn len_mismatch_is_only_a_warning() {
        let v = Verifier::new();
        v.record(decl(0, &[0, 1]));
        v.record(coll(0, 0, CollKind::Bcast, Some(0), 64));
        v.record(coll(1, 0, CollKind::Bcast, Some(0), 128));
        let f = v.analyze();
        assert_eq!(codes(&f), vec!["coll-len-mismatch"]);
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn reordered_collectives_on_same_group_comms() {
        let v = Verifier::new();
        v.record(decl(1, &[0, 1]));
        v.record(decl(2, &[0, 1]));
        v.record(coll(0, 1, CollKind::Bcast, Some(0), 8));
        v.record(coll(0, 2, CollKind::Bcast, Some(0), 8));
        v.record(coll(1, 2, CollKind::Bcast, Some(0), 8));
        v.record(coll(1, 1, CollKind::Bcast, Some(0), 8));
        let f = v.analyze();
        assert!(codes(&f).contains(&"cross-comm-order"), "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn leaked_recv_and_unmatched_messages() {
        let v = Verifier::new();
        let r = v.next_req_id();
        v.record(recv(1, 0, 0, 7, r));
        // Never matched, never waited.
        let f = v.analyze();
        let c = codes(&f);
        assert!(c.contains(&"request-leak"), "{f:?}");
        assert!(c.contains(&"unmatched-recv"), "{f:?}");
    }

    #[test]
    fn waited_and_matched_pair_is_clean() {
        let v = Verifier::new();
        let s = v.next_req_id();
        let r = v.next_req_id();
        v.record(send(0, 0, 1, 7, s));
        v.record(recv(1, 0, 0, 7, r));
        v.record(Event::Match { send: s, recv: r });
        v.record(Event::WaitDone { agent: 0, req: s });
        v.record(Event::WaitDone { agent: 1, req: r });
        assert!(v.analyze().is_empty());
    }

    #[test]
    fn back_to_back_same_envelope_sends_warn() {
        let v = Verifier::new();
        let (s1, s2) = (v.next_req_id(), v.next_req_id());
        let (r1, r2) = (v.next_req_id(), v.next_req_id());
        v.record(send(0, 0, 1, 7, s1));
        v.record(send(0, 0, 1, 7, s2)); // posted before s1 was waited
        v.record(recv(1, 0, 0, 7, r1));
        v.record(recv(1, 0, 0, 7, r2));
        v.record(Event::Match { send: s1, recv: r1 });
        v.record(Event::Match { send: s2, recv: r2 });
        for (a, q) in [(0, s1), (0, s2), (1, r1), (1, r2)] {
            v.record(Event::WaitDone { agent: a, req: q });
        }
        let f = v.analyze();
        assert!(codes(&f).contains(&"order-dependent-match"), "{f:?}");
        assert!(f.iter().all(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn sequential_same_envelope_sends_are_ordered_and_clean() {
        let v = Verifier::new();
        let (s1, s2) = (v.next_req_id(), v.next_req_id());
        let (r1, r2) = (v.next_req_id(), v.next_req_id());
        v.record(send(0, 0, 1, 7, s1));
        v.record(Event::WaitDone { agent: 0, req: s1 });
        v.record(send(0, 0, 1, 7, s2)); // posted after s1 completed
        v.record(recv(1, 0, 0, 7, r1));
        v.record(Event::Match { send: s1, recv: r1 });
        v.record(Event::WaitDone { agent: 1, req: r1 });
        v.record(recv(1, 0, 0, 7, r2));
        v.record(Event::Match { send: s2, recv: r2 });
        v.record(Event::WaitDone { agent: 0, req: s2 });
        v.record(Event::WaitDone { agent: 1, req: r2 });
        let f = v.analyze();
        assert!(
            !codes(&f).contains(&"order-dependent-match"),
            "sequential sends must not warn: {f:?}"
        );
    }

    #[test]
    fn deadlock_report_extracts_cycle() {
        let v = Verifier::new();
        let (ra, rb) = (v.next_req_id(), v.next_req_id());
        v.record(recv(0, 0, 1, 3, ra));
        v.record(recv(1, 0, 0, 3, rb));
        v.wait_begin(0, ra);
        v.wait_begin(1, rb);
        let report = v.deadlock_report(&[(0, 0), (1, 1)]);
        assert_eq!(report.blocked.len(), 2);
        assert!(!report.cycle.is_empty(), "{report}");
        let text = report.to_string();
        assert!(text.contains("wait-for cycle"), "{text}");
        assert!(text.contains("MPI_Irecv"), "{text}");
        assert!(text.contains("tag=3"), "{text}");
    }

    #[test]
    fn drop_counters_track_leaks() {
        let v = Verifier::new();
        let a = v.next_req_id();
        let b = v.next_req_id();
        v.req_dropped(a, false, false);
        v.req_dropped(b, true, false);
        assert_eq!(v.drop_counters(), (1, 1));
    }

    // ------------------------------------------------------------------
    // RMA epoch discipline
    // ------------------------------------------------------------------

    fn win_decl(rank: u32, win: u64, len: usize) -> Event {
        Event::WinDecl {
            agent: rank,
            rank,
            ctx: 0,
            win,
            len,
            site: None,
        }
    }

    fn fence(rank: u32, win: u64) -> Event {
        Event::WinFence {
            agent: rank,
            rank,
            win,
            site: None,
        }
    }

    fn rma(rank: u32, win: u64, kind: RmaKind, target: u32, offset: usize, len: usize) -> Event {
        Event::RmaOp {
            agent: rank,
            rank,
            win,
            kind,
            target,
            offset,
            len,
            req: None,
            site: None,
        }
    }

    fn win_close(v: &Verifier, ranks: &[u32], win: u64) {
        for &r in ranks {
            v.record(Event::WinFree {
                agent: r,
                rank: r,
                win,
                site: None,
            });
            v.record(Event::WinDropped {
                rank: r,
                win,
                freed: true,
            });
        }
    }

    #[test]
    fn fenced_puts_are_clean() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(win_decl(1, 1, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        v.record(rma(0, 1, RmaKind::Put, 1, 0, 32));
        v.record(rma(1, 1, RmaKind::Put, 0, 0, 32));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        win_close(&v, &[0, 1], 1);
        assert!(v.analyze().is_empty(), "{:?}", v.analyze());
    }

    #[test]
    fn put_before_first_fence_is_outside_epoch() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(rma(0, 1, RmaKind::Put, 1, 0, 32));
        v.record(fence(0, 1));
        win_close(&v, &[0], 1);
        let f = v.analyze();
        assert!(codes(&f).contains(&"rma-outside-epoch"), "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
        assert!(f[0].to_string().contains("MPI_Rput"), "{}", f[0]);
    }

    #[test]
    fn overlapping_put_and_accumulate_conflict() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(win_decl(1, 1, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        // Both origins hit rank 0's bytes 8..24 in the same epoch.
        v.record(rma(0, 1, RmaKind::Put, 0, 8, 16));
        v.record(rma(1, 1, RmaKind::Accumulate, 0, 16, 16));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        win_close(&v, &[0, 1], 1);
        let f = v.analyze();
        assert!(codes(&f).contains(&"rma-conflict"), "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn concurrent_accumulates_commute_and_are_clean() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(win_decl(1, 1, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        v.record(rma(0, 1, RmaKind::Accumulate, 0, 0, 64));
        v.record(rma(1, 1, RmaKind::Accumulate, 0, 0, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        win_close(&v, &[0, 1], 1);
        assert!(v.analyze().is_empty(), "{:?}", v.analyze());
    }

    #[test]
    fn same_range_in_different_epochs_is_clean() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(win_decl(1, 1, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        v.record(rma(0, 1, RmaKind::Put, 0, 0, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        v.record(rma(1, 1, RmaKind::Put, 0, 0, 64));
        v.record(fence(0, 1));
        v.record(fence(1, 1));
        win_close(&v, &[0, 1], 1);
        assert!(v.analyze().is_empty(), "{:?}", v.analyze());
    }

    #[test]
    fn lock_epoch_allows_ops_and_double_unlock_is_flagged() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(win_decl(1, 1, 64));
        v.record(Event::WinLock {
            agent: 0,
            rank: 0,
            win: 1,
            target: 1,
            site: None,
        });
        v.record(rma(0, 1, RmaKind::Accumulate, 1, 0, 8));
        v.record(Event::WinUnlock {
            agent: 0,
            rank: 0,
            win: 1,
            target: 1,
            site: None,
        });
        // Second unlock of the same target: nothing is held.
        v.record(Event::WinUnlock {
            agent: 0,
            rank: 0,
            win: 1,
            target: 1,
            site: None,
        });
        win_close(&v, &[0, 1], 1);
        let f = v.analyze();
        assert_eq!(codes(&f), vec!["rma-double-unlock"], "{f:?}");
    }

    #[test]
    fn unfenced_ops_at_free_are_unclosed_epoch() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(fence(0, 1));
        v.record(rma(0, 1, RmaKind::Put, 0, 0, 8));
        // Missing closing fence before free.
        win_close(&v, &[0], 1);
        let f = v.analyze();
        assert!(codes(&f).contains(&"rma-unclosed-epoch"), "{f:?}");
    }

    #[test]
    fn dropped_window_without_free_is_a_leak() {
        let v = Verifier::new();
        v.record(win_decl(0, 1, 64));
        v.record(Event::WinDropped {
            rank: 0,
            win: 1,
            freed: false,
        });
        let f = v.analyze();
        assert_eq!(codes(&f), vec!["win-leak"], "{f:?}");
        assert!(f[0].to_string().contains("rank 0"), "{}", f[0]);
    }
}
