//! Offline analyses over the event log.
//!
//! Three families:
//!
//! 1. **Collective matching** — every member of a communicator must issue
//!    the same sequence of collective kinds with consistent roots, and
//!    blocking collectives on communicators with identical member sets must
//!    be interleaved identically on every rank.
//! 2. **Resource checks** — user requests must be waited on or tested to
//!    completion; every send must match a receive and vice versa.
//! 3. **Race detection** — a vector-clock pass finds same-envelope
//!    operations whose matching depends on arrival order.
//!
//! All passes are deterministic given per-agent program order: per-agent
//! event subsequences are program-ordered by construction (each agent
//! appends its own events), and the final finding list is sorted.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use crate::event::{AgentId, CollKind, Event, ReqId, RmaKind, Site};
use crate::finding::{CollCallDesc, Finding, FindingKind, LeakKind, SeqEntry, Severity};

#[derive(Clone)]
struct CollRec {
    kind: CollKind,
    blocking: bool,
    root: Option<u32>,
    len: usize,
    site: Option<Site>,
}

enum Post {
    Send {
        rank: u32,
        ctx: u32,
        dst: u32,
        tag: u64,
        bytes: usize,
        internal: bool,
        site: Option<Site>,
    },
    Recv {
        rank: u32,
        ctx: u32,
        src: u32,
        tag: u64,
        internal: bool,
        site: Option<Site>,
    },
    Coll {
        rank: u32,
        ctx: u32,
        kind: CollKind,
        site: Option<Site>,
    },
    Rma {
        rank: u32,
        win: u64,
        kind: RmaKind,
        target: u32,
        bytes: usize,
        site: Option<Site>,
    },
}

impl Post {
    /// Human-readable operation description for leak reports.
    pub(crate) fn describe(&self) -> String {
        match self {
            Post::Send {
                ctx,
                dst,
                tag,
                bytes,
                ..
            } => {
                format!("MPI_Isend({bytes}B to rank {dst}, tag={tag}) on comm {ctx}")
            }
            Post::Recv { ctx, src, tag, .. } => {
                format!("MPI_Irecv(from rank {src}, tag={tag}) on comm {ctx}")
            }
            Post::Coll { ctx, kind, .. } => {
                format!("{} on comm {ctx}", kind.name(false))
            }
            Post::Rma {
                win,
                kind,
                target,
                bytes,
                ..
            } => {
                format!("{}({bytes}B, rank {target}) on win {win}", kind.name())
            }
        }
    }

    fn rank(&self) -> u32 {
        match self {
            Post::Send { rank, .. }
            | Post::Recv { rank, .. }
            | Post::Coll { rank, .. }
            | Post::Rma { rank, .. } => *rank,
        }
    }

    fn site(&self) -> Option<Site> {
        match self {
            Post::Send { site, .. }
            | Post::Recv { site, .. }
            | Post::Coll { site, .. }
            | Post::Rma { site, .. } => *site,
        }
    }
}

/// One one-sided operation inside an epoch group, for conflict detection.
struct RmaOpRec {
    rank: u32,
    kind: RmaKind,
    offset: usize,
    len: usize,
    site: Option<Site>,
}

impl RmaOpRec {
    fn describe(&self) -> String {
        format!(
            "rank {} {}({}B at offset {}..{})",
            self.rank,
            self.kind.name(),
            self.len,
            self.offset,
            self.offset + self.len
        )
    }

    fn overlaps(&self, other: &RmaOpRec) -> bool {
        self.len > 0
            && other.len > 0
            && self.offset < other.offset + other.len
            && other.offset < self.offset + self.len
    }
}

/// Do two overlapping one-sided accesses conflict, and how badly?
/// Concurrent gets are fine; concurrent accumulates commute by definition
/// (applied in deterministic origin order); anything involving a put is a
/// write-write or read-write race. Get-vs-accumulate is deterministic in
/// the staged epoch model but non-portable to real MPI, so it warns.
fn rma_conflict_severity(a: RmaKind, b: RmaKind) -> Option<Severity> {
    use RmaKind::*;
    match (a, b) {
        (Get, Get) | (Accumulate, Accumulate) => None,
        (Put, _) | (_, Put) => Some(Severity::Error),
        (Get, Accumulate) | (Accumulate, Get) => Some(Severity::Warning),
    }
}

/// Per-(rank, window) epoch state machine, driven in program order.
#[derive(Default)]
struct WinRankState {
    /// Completed fences (0 = no access epoch has been opened yet).
    fence_count: u64,
    /// Ops posted since the last fence (outside lock epochs).
    ops_since_fence: usize,
    /// Site of the most recent such op.
    last_op_site: Option<Site>,
    /// Held passive-target locks: target -> lock instance id.
    locks: BTreeMap<u32, u64>,
    /// Monotone lock instance counter.
    lock_seq: u64,
    /// Has `free` run?
    freed: bool,
}

#[derive(Default)]
struct ReqState {
    waited: bool,
    tested: bool,
    matched: Option<ReqId>,
    dropped_incomplete: bool,
}

type Vc = HashMap<AgentId, u64>;

fn vc_join(into: &mut Vc, other: &Vc) {
    for (&a, &t) in other {
        let e = into.entry(a).or_insert(0);
        *e = (*e).max(t);
    }
}

/// Run every analysis over the log; findings are sorted errors-first, then
/// by rendered text, so output is stable across thread schedules.
pub fn analyze(events: &[Event]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // ---- pass 1: index the log -------------------------------------
    let mut ctx_members: BTreeMap<u32, Arc<Vec<u32>>> = BTreeMap::new();
    // ctx -> rank -> per-rank collective sequence (program order).
    let mut coll_seqs: BTreeMap<u32, BTreeMap<u32, Vec<CollRec>>> = BTreeMap::new();
    // rank -> merged order of its blocking collectives across all comms.
    let mut rank_blocking: BTreeMap<u32, Vec<SeqEntry>> = BTreeMap::new();
    let mut posts: HashMap<ReqId, Post> = HashMap::new();
    let mut post_order: Vec<ReqId> = Vec::new();
    let mut states: HashMap<ReqId, ReqState> = HashMap::new();
    // (ctx, src, dst, tag) -> user send/recv reqs in post order (all from
    // one rank thread, so this order is program order).
    let mut send_envelopes: BTreeMap<(u32, u32, u32, u64), Vec<ReqId>> = BTreeMap::new();
    let mut recv_envelopes: BTreeMap<(u32, u32, u32, u64), Vec<ReqId>> = BTreeMap::new();
    // RMA: per-(rank, win) epoch state, creation sites, and epoch op
    // groups for conflict detection. Fence epochs are numbered by the
    // per-rank fence count — consistent across ranks because fence is
    // collective on the window — so ops from all origins targeting one
    // segment in the same global epoch share a group. Lock epochs key on
    // the origin too: the lock serializes different origins, so only
    // same-origin overlaps are races there.
    let mut win_sites: HashMap<(u32, u64), Option<Site>> = HashMap::new();
    let mut win_states: BTreeMap<(u32, u64), WinRankState> = BTreeMap::new();
    let mut fence_groups: BTreeMap<(u64, u32, u64), Vec<RmaOpRec>> = BTreeMap::new();
    let mut lock_groups: BTreeMap<(u64, u32, u32, u64), Vec<RmaOpRec>> = BTreeMap::new();

    for ev in events {
        match ev {
            Event::CommDecl { ctx, members } => {
                ctx_members.entry(*ctx).or_insert_with(|| members.clone());
            }
            Event::Coll {
                rank,
                ctx,
                kind,
                root,
                len,
                blocking,
                req,
                site,
                ..
            } => {
                coll_seqs
                    .entry(*ctx)
                    .or_default()
                    .entry(*rank)
                    .or_default()
                    .push(CollRec {
                        kind: *kind,
                        blocking: *blocking,
                        root: *root,
                        len: *len,
                        site: *site,
                    });
                if *blocking && *kind != CollKind::Dup {
                    rank_blocking.entry(*rank).or_default().push(SeqEntry {
                        ctx: *ctx,
                        kind: *kind,
                        site: *site,
                    });
                }
                if let Some(r) = req {
                    posts.insert(
                        *r,
                        Post::Coll {
                            rank: *rank,
                            ctx: *ctx,
                            kind: *kind,
                            site: *site,
                        },
                    );
                    post_order.push(*r);
                    states.entry(*r).or_default();
                }
            }
            Event::SendPost {
                rank,
                ctx,
                dst,
                tag,
                bytes,
                internal,
                req,
                site,
                ..
            } => {
                posts.insert(
                    *req,
                    Post::Send {
                        rank: *rank,
                        ctx: *ctx,
                        dst: *dst,
                        tag: *tag,
                        bytes: *bytes,
                        internal: *internal,
                        site: *site,
                    },
                );
                post_order.push(*req);
                states.entry(*req).or_default();
                if !internal {
                    send_envelopes
                        .entry((*ctx, *rank, *dst, *tag))
                        .or_default()
                        .push(*req);
                }
            }
            Event::RecvPost {
                rank,
                ctx,
                src,
                tag,
                internal,
                req,
                site,
                ..
            } => {
                posts.insert(
                    *req,
                    Post::Recv {
                        rank: *rank,
                        ctx: *ctx,
                        src: *src,
                        tag: *tag,
                        internal: *internal,
                        site: *site,
                    },
                );
                post_order.push(*req);
                states.entry(*req).or_default();
                if !internal {
                    recv_envelopes
                        .entry((*ctx, *src, *rank, *tag))
                        .or_default()
                        .push(*req);
                }
            }
            Event::Match { send, recv } => {
                states.entry(*send).or_default().matched = Some(*recv);
                states.entry(*recv).or_default().matched = Some(*send);
            }
            Event::WaitDone { req, .. } => {
                states.entry(*req).or_default().waited = true;
            }
            Event::TestObserved { req, .. } => {
                states.entry(*req).or_default().tested = true;
            }
            Event::CollDone { .. } => {}
            Event::ReqDropped { req, completed, .. } => {
                if !completed {
                    states.entry(*req).or_default().dropped_incomplete = true;
                }
            }
            Event::WinDecl {
                rank, win, site, ..
            } => {
                win_sites.insert((*rank, *win), *site);
                win_states.entry((*rank, *win)).or_default();
            }
            Event::WinFence { rank, win, .. } => {
                let st = win_states.entry((*rank, *win)).or_default();
                st.fence_count += 1;
                st.ops_since_fence = 0;
                st.last_op_site = None;
            }
            Event::WinLock {
                rank, win, target, ..
            } => {
                let st = win_states.entry((*rank, *win)).or_default();
                st.lock_seq += 1;
                let seq = st.lock_seq;
                st.locks.insert(*target, seq);
            }
            Event::WinUnlock {
                rank,
                win,
                target,
                site,
                ..
            } => {
                let st = win_states.entry((*rank, *win)).or_default();
                if st.locks.remove(target).is_none() {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::RmaDoubleUnlock {
                            rank: *rank,
                            win: *win,
                            target: *target,
                            site: *site,
                        },
                    });
                }
            }
            Event::RmaOp {
                rank,
                win,
                kind,
                target,
                offset,
                len,
                req,
                site,
                ..
            } => {
                if let Some(r) = req {
                    posts.insert(
                        *r,
                        Post::Rma {
                            rank: *rank,
                            win: *win,
                            kind: *kind,
                            target: *target,
                            bytes: *len,
                            site: *site,
                        },
                    );
                    post_order.push(*r);
                    states.entry(*r).or_default();
                }
                let rec = RmaOpRec {
                    rank: *rank,
                    kind: *kind,
                    offset: *offset,
                    len: *len,
                    site: *site,
                };
                let st = win_states.entry((*rank, *win)).or_default();
                if let Some(&lock_inst) = st.locks.get(target) {
                    lock_groups
                        .entry((*win, *target, *rank, lock_inst))
                        .or_default()
                        .push(rec);
                } else if st.fence_count >= 1 {
                    st.ops_since_fence += 1;
                    st.last_op_site = *site;
                    fence_groups
                        .entry((*win, *target, st.fence_count))
                        .or_default()
                        .push(rec);
                } else {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::RmaOutsideEpoch {
                            rank: *rank,
                            win: *win,
                            op: format!(
                                "{}({len}B, rank {target} at offset {offset})",
                                kind.name()
                            ),
                            site: *site,
                        },
                    });
                }
            }
            Event::WinFree { rank, win, .. } => {
                let st = win_states.entry((*rank, *win)).or_default();
                st.freed = true;
                if st.ops_since_fence > 0 {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::RmaUnclosedEpoch {
                            rank: *rank,
                            win: *win,
                            what: format!(
                                "{} unsynchronized operation(s) posted after the last fence",
                                st.ops_since_fence
                            ),
                            site: st.last_op_site,
                        },
                    });
                    st.ops_since_fence = 0;
                }
                for (&target, _) in std::mem::take(&mut st.locks).iter() {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::RmaUnclosedEpoch {
                            rank: *rank,
                            win: *win,
                            what: format!("lock on rank {target} still held"),
                            site: None,
                        },
                    });
                }
            }
            Event::WinDropped { rank, win, freed } => {
                if !freed {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::WinLeak {
                            rank: *rank,
                            win: *win,
                            site: win_sites.get(&(*rank, *win)).copied().flatten(),
                        },
                    });
                }
            }
        }
    }

    // ---- analysis 0: RMA epoch closure and conflicts ----------------
    // Windows never freed: anything still open at end-of-log is
    // unsynchronized (the leak itself is reported via `WinDropped`).
    for ((rank, win), st) in &win_states {
        if st.freed {
            continue;
        }
        if st.ops_since_fence > 0 {
            findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::RmaUnclosedEpoch {
                    rank: *rank,
                    win: *win,
                    what: format!(
                        "{} unsynchronized operation(s) posted after the last fence",
                        st.ops_since_fence
                    ),
                    site: st.last_op_site,
                },
            });
        }
        for &target in st.locks.keys() {
            findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::RmaUnclosedEpoch {
                    rank: *rank,
                    win: *win,
                    what: format!("lock on rank {target} still held"),
                    site: None,
                },
            });
        }
    }
    // Overlap sweep inside each epoch group. Groups are per (window,
    // target, epoch[, origin]), so they stay small; one finding per group
    // keeps a single buggy loop from flooding the report.
    let sweep = |win: u64, target: u32, ops: &[RmaOpRec], findings: &mut Vec<Finding>| {
        'outer: for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                let (a, b) = (&ops[i], &ops[j]);
                if !a.overlaps(b) {
                    continue;
                }
                if let Some(severity) = rma_conflict_severity(a.kind, b.kind) {
                    findings.push(Finding {
                        severity,
                        kind: FindingKind::RmaConflict {
                            win,
                            target,
                            a: a.describe(),
                            b: b.describe(),
                            site: b.site,
                        },
                    });
                    break 'outer;
                }
            }
        }
    };
    for ((win, target, _epoch), ops) in &fence_groups {
        sweep(*win, *target, ops, &mut findings);
    }
    for ((win, target, _origin, _lock), ops) in &lock_groups {
        sweep(*win, *target, ops, &mut findings);
    }

    // ---- analysis 1a: per-communicator collective matching ---------
    let empty: Vec<CollRec> = Vec::new();
    for (ctx, per_rank) in &coll_seqs {
        let members: Vec<u32> = match ctx_members.get(ctx) {
            Some(m) => (**m).clone(),
            None => per_rank.keys().copied().collect(),
        };
        if members.is_empty() {
            continue;
        }
        let seq_of = |r: u32| per_rank.get(&r).unwrap_or(&empty);
        let r0 = members[0];
        let s0 = seq_of(r0);
        'content: for &r in &members[1..] {
            let s = seq_of(r);
            for i in 0..s0.len().min(s.len()) {
                let (a, b) = (&s0[i], &s[i]);
                let desc = |rank: u32, c: &CollRec| CollCallDesc {
                    rank,
                    kind: c.kind,
                    blocking: c.blocking,
                    root: c.root,
                    len: c.len,
                    site: c.site,
                };
                if a.kind != b.kind || a.root != b.root || a.blocking != b.blocking {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::CollectiveMismatch {
                            ctx: *ctx,
                            index: i,
                            a: desc(r0, a),
                            b: desc(r, b),
                        },
                    });
                    break 'content;
                }
                if a.len != b.len {
                    findings.push(Finding {
                        severity: Severity::Warning,
                        kind: FindingKind::CollectiveLengthMismatch {
                            ctx: *ctx,
                            index: i,
                            a: desc(r0, a),
                            b: desc(r, b),
                        },
                    });
                    break 'content;
                }
            }
        }
        let (mut min_rank, mut min_count) = (r0, s0.len());
        let (mut max_rank, mut max_count) = (r0, s0.len());
        for &r in &members {
            let c = seq_of(r).len();
            if c < min_count {
                min_rank = r;
                min_count = c;
            }
            if c > max_count {
                max_rank = r;
                max_count = c;
            }
        }
        if min_count != max_count {
            findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::CollectiveCountDivergence {
                    ctx: *ctx,
                    min_rank,
                    min_count,
                    max_rank,
                    max_count,
                },
            });
        }
    }

    // ---- analysis 1b: cross-communicator interleaving --------------
    let mut groups: BTreeMap<Vec<u32>, Vec<u32>> = BTreeMap::new();
    for (ctx, members) in &ctx_members {
        groups.entry((**members).clone()).or_default().push(*ctx);
    }
    for (members, ctxs) in &groups {
        if ctxs.len() < 2 || members.len() < 2 {
            continue;
        }
        let ctxset: BTreeSet<u32> = ctxs.iter().copied().collect();
        let proj = |r: u32| -> Vec<SeqEntry> {
            rank_blocking
                .get(&r)
                .map(|v| {
                    v.iter()
                        .filter(|e| ctxset.contains(&e.ctx))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        let r0 = members[0];
        let p0 = proj(r0);
        'group: for &r in &members[1..] {
            let p = proj(r);
            for i in 0..p0.len().min(p.len()) {
                // A kind divergence on the same ctx is already reported by
                // the per-communicator pass; only flag interleave changes.
                if p0[i].ctx != p[i].ctx {
                    findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::CrossCommReorder {
                            ctxs: ctxs.clone(),
                            rank_a: r0,
                            rank_b: r,
                            index: i,
                            a: Some(p0[i].clone()),
                            b: Some(p[i].clone()),
                        },
                    });
                    break 'group;
                }
            }
        }
    }

    // ---- analysis 2: request leaks and unmatched messages ----------
    for req in &post_order {
        let (Some(post), Some(st)) = (posts.get(req), states.get(req)) else {
            continue;
        };
        let internal = match post {
            Post::Send { internal, .. } | Post::Recv { internal, .. } => *internal,
            Post::Coll { .. } | Post::Rma { .. } => false,
        };
        if !internal && !st.waited && !st.tested {
            findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::RequestLeak {
                    rank: post.rank(),
                    op: post.describe(),
                    site: post.site(),
                    leak: if st.dropped_incomplete {
                        LeakKind::DroppedIncomplete
                    } else {
                        LeakKind::NeverWaited
                    },
                },
            });
        }
        if st.matched.is_none() {
            match post {
                Post::Send {
                    ctx,
                    rank,
                    dst,
                    tag,
                    bytes,
                    internal,
                    site,
                } => findings.push(Finding {
                    severity: if *internal {
                        Severity::Warning
                    } else {
                        Severity::Error
                    },
                    kind: FindingKind::UnmatchedSend {
                        ctx: *ctx,
                        src: *rank,
                        dst: *dst,
                        tag: *tag,
                        bytes: *bytes,
                        internal: *internal,
                        site: *site,
                    },
                }),
                Post::Recv {
                    ctx,
                    rank,
                    src,
                    tag,
                    internal,
                    site,
                } => findings.push(Finding {
                    severity: if *internal {
                        Severity::Warning
                    } else {
                        Severity::Error
                    },
                    kind: FindingKind::UnmatchedRecv {
                        ctx: *ctx,
                        src: *src,
                        dst: *rank,
                        tag: *tag,
                        internal: *internal,
                        site: *site,
                    },
                }),
                Post::Coll { .. } | Post::Rma { .. } => {}
            }
        }
    }

    // ---- analysis 3: vector-clock order-dependence -----------------
    // Each agent's component ticks on each of its own events; cross-agent
    // edges are: rank -> op-agent at dispatch, matched-peer post -> wait
    // completion, and op-agent finish -> waiter.
    //
    // Vector clocks grow one component per agent, so this pass is
    // quadratic in the number of agents and dominates analysis time on
    // very large simulations (tens of thousands of ranks). Past the cap
    // below it is skipped; the linear mismatch/leak passes above still
    // run, and the race findings it produces are warnings, not errors.
    const VC_MAX_AGENTS: usize = 512;
    let mut vc_agents: std::collections::HashSet<AgentId> = std::collections::HashSet::new();
    for ev in events {
        match ev {
            Event::Coll {
                agent, op_agent, ..
            } => {
                vc_agents.insert(*agent);
                if let Some(o) = op_agent {
                    vc_agents.insert(*o);
                }
            }
            Event::SendPost { agent, .. }
            | Event::RecvPost { agent, .. }
            | Event::WaitDone { agent, .. }
            | Event::TestObserved { agent, .. } => {
                vc_agents.insert(*agent);
            }
            Event::CollDone { op_agent, .. } => {
                vc_agents.insert(*op_agent);
            }
            _ => {}
        }
    }
    if vc_agents.len() > VC_MAX_AGENTS {
        findings.sort_by_key(|x| (x.severity, x.to_string()));
        return findings;
    }
    let mut clocks: HashMap<AgentId, Vc> = HashMap::new();
    let mut post_snap: HashMap<ReqId, Vc> = HashMap::new();
    let mut completion_snap: HashMap<ReqId, Vc> = HashMap::new();
    // First completion observation of a request: (observer, observer tick).
    let mut comp_mark: HashMap<ReqId, (AgentId, u64)> = HashMap::new();

    fn tick(clocks: &mut HashMap<AgentId, Vc>, a: AgentId) -> Vc {
        let vc = clocks.entry(a).or_default();
        *vc.entry(a).or_insert(0) += 1;
        vc.clone()
    }

    for ev in events {
        match ev {
            Event::Coll {
                agent, op_agent, ..
            } => {
                let vc = tick(&mut clocks, *agent);
                if let Some(o) = op_agent {
                    vc_join(clocks.entry(*o).or_default(), &vc);
                }
            }
            Event::SendPost { agent, req, .. } | Event::RecvPost { agent, req, .. } => {
                let vc = tick(&mut clocks, *agent);
                post_snap.insert(*req, vc);
            }
            Event::Match { send, recv } => {
                // Completing a recv implies the matched send was posted;
                // completing a rendezvous send implies the recv was posted.
                if let Some(vs) = post_snap.get(send).cloned() {
                    vc_join(completion_snap.entry(*recv).or_default(), &vs);
                }
                if let Some(vr) = post_snap.get(recv).cloned() {
                    vc_join(completion_snap.entry(*send).or_default(), &vr);
                }
            }
            Event::CollDone { req, op_agent } => {
                let vc = tick(&mut clocks, *op_agent);
                completion_snap.insert(*req, vc);
            }
            Event::WaitDone { agent, req } | Event::TestObserved { agent, req } => {
                if let Some(cs) = completion_snap.get(req).cloned() {
                    vc_join(clocks.entry(*agent).or_default(), &cs);
                }
                let vc = tick(&mut clocks, *agent);
                comp_mark
                    .entry(*req)
                    .or_insert_with(|| (*agent, vc.get(agent).copied().unwrap_or(0)));
            }
            _ => {}
        }
    }

    let mut race_check = |envelopes: &BTreeMap<(u32, u32, u32, u64), Vec<ReqId>>,
                          what: &'static str| {
        for ((ctx, src, dst, tag), reqs) in envelopes {
            for pair in reqs.windows(2) {
                let (prev, cur) = (pair[0], pair[1]);
                let both_matched = states.get(&prev).is_some_and(|s| s.matched.is_some())
                    && states.get(&cur).is_some_and(|s| s.matched.is_some());
                if !both_matched {
                    continue; // pure leaks are reported above
                }
                let ordered = match comp_mark.get(&prev) {
                    Some((w, t)) => post_snap
                        .get(&cur)
                        .and_then(|vc| vc.get(w))
                        .is_some_and(|seen| seen >= t),
                    None => false,
                };
                if !ordered {
                    findings.push(Finding {
                        severity: Severity::Warning,
                        kind: FindingKind::OrderDependentMatch {
                            ctx: *ctx,
                            src: *src,
                            dst: *dst,
                            tag: *tag,
                            what,
                            site: posts.get(&cur).and_then(Post::site),
                        },
                    });
                    break; // one finding per envelope
                }
            }
        }
    };
    race_check(&send_envelopes, "sends");
    race_check(&recv_envelopes, "receives");

    findings.sort_by_key(|x| (x.severity, x.to_string()));
    findings
}

/// Look up the post descriptor of a request, for deadlock reporting.
pub(crate) fn describe_req(events: &[Event], req: ReqId) -> Option<(String, Option<Site>)> {
    for ev in events {
        match ev {
            Event::SendPost {
                req: r,
                ctx,
                dst,
                tag,
                bytes,
                internal,
                site,
                ..
            } if *r == req => {
                let op = if *internal {
                    format!(
                        "internal collective send ({bytes}B to rank {dst}, tag {tag:#x}) on comm {ctx}"
                    )
                } else {
                    format!("MPI_Isend({bytes}B to rank {dst}, tag={tag}) on comm {ctx}")
                };
                return Some((op, *site));
            }
            Event::RecvPost {
                req: r,
                ctx,
                src,
                tag,
                internal,
                site,
                ..
            } if *r == req => {
                let op = if *internal {
                    format!(
                        "internal collective receive (from rank {src}, tag {tag:#x}) on comm {ctx}"
                    )
                } else {
                    format!("MPI_Irecv(from rank {src}, tag={tag}) on comm {ctx}")
                };
                return Some((op, *site));
            }
            Event::Coll {
                req: Some(r),
                ctx,
                kind,
                root,
                site,
                ..
            } if *r == req => {
                let root_s = root.map_or(String::new(), |x| format!("root={x}, "));
                return Some((
                    format!("{}({root_s}on comm {ctx})", kind.name(false)),
                    *site,
                ));
            }
            _ => {}
        }
    }
    None
}

/// Peer world ranks whose action is needed to complete `req` (for the
/// deadlock wait-for graph).
pub(crate) fn req_peers(events: &[Event], req: ReqId) -> Vec<u32> {
    for ev in events {
        match ev {
            Event::SendPost { req: r, dst, .. } if *r == req => return vec![*dst],
            Event::RecvPost { req: r, src, .. } if *r == req => return vec![*src],
            _ => {}
        }
    }
    Vec::new()
}
