//! The lint catalogue: everything the analyzer can report.

use std::fmt;

use crate::event::{CollKind, Site};

/// How serious a finding is.
///
/// `Error` findings fail the run under `VerifyMode::Strict`; `Warning`
/// findings are surfaced (stderr under `Warn`, and always in the run
/// output) but never fail a run — they mark patterns that are legal under
/// MPI's non-overtaking rule or benign in the simulator but worth a look.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Definite misuse of the MPI-like API.
    Error,
    /// Suspicious but not provably wrong.
    Warning,
}

/// How a request was leaked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeakKind {
    /// Posted but never waited on and never observed complete via test.
    NeverWaited,
    /// Every handle was dropped before the operation completed.
    DroppedIncomplete,
}

/// One rank's collective call, for mismatch diagnostics.
#[derive(Debug, Clone)]
pub struct CollCallDesc {
    /// World rank that issued the call.
    pub rank: u32,
    /// Which collective.
    pub kind: CollKind,
    /// Blocking form?
    pub blocking: bool,
    /// Communicator-relative root, where applicable.
    pub root: Option<u32>,
    /// Payload length.
    pub len: usize,
    /// Call site.
    pub site: Option<Site>,
}

impl fmt::Display for CollCallDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} called {}(",
            self.rank,
            self.kind.name(self.blocking)
        )?;
        let mut sep = "";
        if let Some(r) = self.root {
            write!(f, "root={r}")?;
            sep = ", ";
        }
        write!(f, "{sep}len={})", self.len)?;
        if let Some(s) = self.site {
            write!(f, " at {}:{}", s.file(), s.line())?;
        }
        Ok(())
    }
}

/// A blocking collective in a rank's cross-communicator call order.
#[derive(Debug, Clone)]
pub struct SeqEntry {
    /// Context it ran on.
    pub ctx: u32,
    /// Which collective.
    pub kind: CollKind,
    /// Call site.
    pub site: Option<Site>,
}

impl fmt::Display for SeqEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on comm {}", self.kind.name(true), self.ctx)?;
        if let Some(s) = self.site {
            write!(f, " at {}:{}", s.file(), s.line())?;
        }
        Ok(())
    }
}

/// What the analyzer found.
#[derive(Debug, Clone)]
pub enum FindingKind {
    /// Two ranks issued different collectives (kind/root/blocking-form) at
    /// the same position of a communicator's call sequence.
    CollectiveMismatch {
        /// Context id.
        ctx: u32,
        /// Position in the per-communicator sequence.
        index: usize,
        /// The reference rank's call.
        a: CollCallDesc,
        /// The diverging rank's call.
        b: CollCallDesc,
    },
    /// Same kind and root, but different payload lengths (suspicious;
    /// tolerated because some kernels pass per-rank local sizes).
    CollectiveLengthMismatch {
        /// Context id.
        ctx: u32,
        /// Position in the per-communicator sequence.
        index: usize,
        /// The reference rank's call.
        a: CollCallDesc,
        /// The diverging rank's call.
        b: CollCallDesc,
    },
    /// Members of a communicator issued different *numbers* of collectives
    /// (e.g. a sleeping surplus rank skipped one).
    CollectiveCountDivergence {
        /// Context id.
        ctx: u32,
        /// Rank with the fewest calls.
        min_rank: u32,
        /// Its call count.
        min_count: usize,
        /// Rank with the most calls.
        max_rank: u32,
        /// Its call count.
        max_count: usize,
    },
    /// Two communicators over the same member ranks saw their blocking
    /// collectives interleaved differently on different ranks — the classic
    /// reordered-collectives-on-dup'd-comms deadlock recipe.
    CrossCommReorder {
        /// The contexts sharing a member set.
        ctxs: Vec<u32>,
        /// Reference rank.
        rank_a: u32,
        /// Diverging rank.
        rank_b: u32,
        /// Position in the merged blocking-collective order.
        index: usize,
        /// Reference rank's call at that position (if any).
        a: Option<SeqEntry>,
        /// Diverging rank's call at that position (if any).
        b: Option<SeqEntry>,
    },
    /// A user request was leaked.
    RequestLeak {
        /// World rank that posted it.
        rank: u32,
        /// Human-readable operation, e.g. `MPI_Irecv(src=0, tag=3) on comm 1`.
        op: String,
        /// Post site.
        site: Option<Site>,
        /// How it leaked.
        leak: LeakKind,
    },
    /// A send was never matched by any receive.
    UnmatchedSend {
        /// Context id.
        ctx: u32,
        /// Sender world rank.
        src: u32,
        /// Destination world rank.
        dst: u32,
        /// Matching tag.
        tag: u64,
        /// Message size.
        bytes: usize,
        /// Collective-internal?
        internal: bool,
        /// Post site.
        site: Option<Site>,
    },
    /// A receive was never matched by any send.
    UnmatchedRecv {
        /// Context id.
        ctx: u32,
        /// Expected source world rank.
        src: u32,
        /// Receiver world rank.
        dst: u32,
        /// Matching tag.
        tag: u64,
        /// Collective-internal?
        internal: bool,
        /// Post site.
        site: Option<Site>,
    },
    /// Two same-envelope operations were in flight concurrently, so which
    /// message matches which receive depends on arrival order. Legal under
    /// MPI's non-overtaking rule, but a frequent source of surprising
    /// matches — reported as a warning.
    OrderDependentMatch {
        /// Context id.
        ctx: u32,
        /// Sender world rank.
        src: u32,
        /// Receiver world rank.
        dst: u32,
        /// Matching tag.
        tag: u64,
        /// `"sends"` or `"receives"`.
        what: &'static str,
        /// Post site of the second, unordered operation.
        site: Option<Site>,
    },
    /// A one-sided operation was posted outside any epoch: no fence has
    /// opened an access epoch on the window and the origin holds no
    /// passive-target lock on the target.
    RmaOutsideEpoch {
        /// Origin world rank.
        rank: u32,
        /// Window id.
        win: u64,
        /// Human-readable operation, e.g. `MPI_Rput(64B to rank 2 at offset 8)`.
        op: String,
        /// Post site.
        site: Option<Site>,
    },
    /// Two one-sided operations touched overlapping bytes of the same
    /// target segment within one epoch with at least one of them writing —
    /// the result depends on apply order across origins.
    RmaConflict {
        /// Window id.
        win: u64,
        /// Target window rank whose segment is contended.
        target: u32,
        /// First operation (description includes origin rank and range).
        a: String,
        /// Second, conflicting operation.
        b: String,
        /// Post site of the second operation.
        site: Option<Site>,
    },
    /// A window handle was dropped without `free` — the `Win` analogue of
    /// a request leak, reported with the creation call site.
    WinLeak {
        /// World rank whose handle leaked.
        rank: u32,
        /// Window id.
        win: u64,
        /// `win_create` call site.
        site: Option<Site>,
    },
    /// One-sided operations (or a held passive-target lock) were never
    /// closed by a fence/unlock before the window was freed or the run
    /// ended — the data is unsynchronized.
    RmaUnclosedEpoch {
        /// World rank with the open epoch.
        rank: u32,
        /// Window id.
        win: u64,
        /// What is left open, e.g. `2 unsynchronized operation(s)` or
        /// `lock on rank 1`.
        what: String,
        /// Site of the last offending call.
        site: Option<Site>,
    },
    /// `unlock` without a matching held lock (double unlock, or unlock of
    /// a never-locked target).
    RmaDoubleUnlock {
        /// World rank that called unlock.
        rank: u32,
        /// Window id.
        win: u64,
        /// Target window rank.
        target: u32,
        /// Unlock call site.
        site: Option<Site>,
    },
}

/// One verified observation about the run.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Error or warning.
    pub severity: Severity,
    /// What was found.
    pub kind: FindingKind,
}

impl Finding {
    /// Short stable code identifying the lint (used in rendered output and
    /// the DESIGN.md catalogue).
    pub fn code(&self) -> &'static str {
        match &self.kind {
            FindingKind::CollectiveMismatch { .. } => "coll-mismatch",
            FindingKind::CollectiveLengthMismatch { .. } => "coll-len-mismatch",
            FindingKind::CollectiveCountDivergence { .. } => "coll-count",
            FindingKind::CrossCommReorder { .. } => "cross-comm-order",
            FindingKind::RequestLeak { .. } => "request-leak",
            FindingKind::UnmatchedSend { .. } => "unmatched-send",
            FindingKind::UnmatchedRecv { .. } => "unmatched-recv",
            FindingKind::OrderDependentMatch { .. } => "order-dependent-match",
            FindingKind::RmaOutsideEpoch { .. } => "rma-outside-epoch",
            FindingKind::RmaConflict { .. } => "rma-conflict",
            FindingKind::WinLeak { .. } => "win-leak",
            FindingKind::RmaUnclosedEpoch { .. } => "rma-unclosed-epoch",
            FindingKind::RmaDoubleUnlock { .. } => "rma-double-unlock",
        }
    }
}

fn site_suffix(site: &Option<Site>) -> String {
    match site {
        Some(s) => format!(", posted at {}:{}", s.file(), s.line()),
        None => String::new(),
    }
}

fn tag_str(tag: u64, internal: bool) -> String {
    if internal {
        format!("internal tag {tag:#x}")
    } else {
        format!("tag={tag}")
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: ", self.code())?;
        match &self.kind {
            FindingKind::CollectiveMismatch { ctx, index, a, b } => write!(
                f,
                "mismatched collective #{index} on comm {ctx}: {a}, but {b}"
            ),
            FindingKind::CollectiveLengthMismatch { ctx, index, a, b } => write!(
                f,
                "length differs at collective #{index} on comm {ctx}: {a}, but {b}"
            ),
            FindingKind::CollectiveCountDivergence {
                ctx,
                min_rank,
                min_count,
                max_rank,
                max_count,
            } => write!(
                f,
                "comm {ctx}: rank {min_rank} issued {min_count} collective(s) but rank \
                 {max_rank} issued {max_count} — some member skipped a collective"
            ),
            FindingKind::CrossCommReorder {
                ctxs,
                rank_a,
                rank_b,
                index,
                a,
                b,
            } => {
                write!(
                    f,
                    "blocking collectives on comms {ctxs:?} (same member set) are \
                     interleaved differently: at position {index}, rank {rank_a} ran "
                )?;
                match a {
                    Some(e) => write!(f, "{e}")?,
                    None => write!(f, "nothing")?,
                }
                write!(f, " but rank {rank_b} ran ")?;
                match b {
                    Some(e) => write!(f, "{e}")?,
                    None => write!(f, "nothing")?,
                }
                Ok(())
            }
            FindingKind::RequestLeak {
                rank,
                op,
                site,
                leak,
            } => {
                let how = match leak {
                    LeakKind::NeverWaited => "never waited on or tested to completion",
                    LeakKind::DroppedIncomplete => "dropped before the operation completed",
                };
                write!(f, "rank {rank} leaked {op}: {how}{}", site_suffix(site))
            }
            FindingKind::UnmatchedSend {
                ctx,
                src,
                dst,
                tag,
                bytes,
                internal,
                site,
            } => write!(
                f,
                "send of {bytes}B from rank {src} to rank {dst} ({}) on comm {ctx} was \
                 never matched by a receive{}",
                tag_str(*tag, *internal),
                site_suffix(site)
            ),
            FindingKind::UnmatchedRecv {
                ctx,
                src,
                dst,
                tag,
                internal,
                site,
            } => write!(
                f,
                "receive at rank {dst} from rank {src} ({}) on comm {ctx} was never \
                 matched by a send{}",
                tag_str(*tag, *internal),
                site_suffix(site)
            ),
            FindingKind::OrderDependentMatch {
                ctx,
                src,
                dst,
                tag,
                what,
                site,
            } => write!(
                f,
                "concurrent same-envelope {what} (comm {ctx}, rank {src} -> rank {dst}, \
                 tag={tag}): matching depends on arrival order{}",
                site_suffix(site)
            ),
            FindingKind::RmaOutsideEpoch {
                rank,
                win,
                op,
                site,
            } => write!(
                f,
                "rank {rank} posted {op} on win {win} outside any epoch (no fence opened \
                 an access epoch and no lock is held on the target){}",
                site_suffix(site)
            ),
            FindingKind::RmaConflict {
                win,
                target,
                a,
                b,
                site,
            } => write!(
                f,
                "conflicting one-sided accesses to rank {target}'s segment of win {win} \
                 in the same epoch: {a} overlaps {b}{}",
                site_suffix(site)
            ),
            FindingKind::WinLeak { rank, win, site } => {
                let created = match site {
                    Some(s) => format!(", created at {}:{}", s.file(), s.line()),
                    None => String::new(),
                };
                write!(
                    f,
                    "rank {rank} dropped win {win} without freeing it{created}"
                )
            }
            FindingKind::RmaUnclosedEpoch {
                rank,
                win,
                what,
                site,
            } => write!(
                f,
                "rank {rank} left an epoch open on win {win} at finalize: {what}{}",
                site_suffix(site)
            ),
            FindingKind::RmaDoubleUnlock {
                rank,
                win,
                target,
                site,
            } => write!(
                f,
                "rank {rank} unlocked rank {target} on win {win} without holding the \
                 lock (double unlock){}",
                site_suffix(site)
            ),
        }
    }
}
