//! The verification event model.
//!
//! The simulator (ovcomm-simmpi) appends one [`Event`] per interesting
//! action — communicator creation, collective calls, point-to-point posts,
//! matches, waits, tests, request drops — into a shared log owned by the
//! [`crate::Verifier`]. All analyses run offline over this log after the
//! run completes, so recording never perturbs virtual time.
//!
//! Event identities:
//!
//! * `agent` is the engine actor id of the recording execution context
//!   (rank threads use their world rank; nonblocking-collective progress
//!   actors use high-bit-tagged ids).
//! * `rank` is always the world rank the agent acts for.
//! * `ctx` is the communicator context id (the matching namespace).
//! * `req` identifies a tracked request; ids are minted by
//!   [`crate::Verifier::next_req_id`] and are unique within a run.

use std::sync::Arc;

/// Unique id of a tracked request within one run.
pub type ReqId = u64;

/// Engine actor id (world rank for rank agents, high-bit-tagged for
/// operation agents).
pub type AgentId = u32;

/// A call site captured via `#[track_caller]`.
pub type Site = &'static std::panic::Location<'static>;

/// Tag bit marking internal (collective-implementation) messages.
pub const INTERNAL_TAG_BIT: u64 = 1 << 63;

/// Collective operation kinds, including the communicator-management calls
/// that MPI requires every member to issue in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollKind {
    /// Broadcast.
    Bcast,
    /// Reduction to a root.
    Reduce,
    /// All-reduce.
    Allreduce,
    /// Barrier.
    Barrier,
    /// Scatter from a root.
    Scatter,
    /// Gather to a root.
    Gather,
    /// All-gather.
    Allgather,
    /// Communicator duplication (local bookkeeping in the simulator, but
    /// order-sensitive like `MPI_Comm_dup`).
    Dup,
    /// Communicator split (synchronizing, like `MPI_Comm_split`).
    Split,
}

impl CollKind {
    /// MPI-style display name; `blocking == false` selects the `I`-form.
    pub fn name(self, blocking: bool) -> &'static str {
        match (self, blocking) {
            (CollKind::Bcast, true) => "MPI_Bcast",
            (CollKind::Bcast, false) => "MPI_Ibcast",
            (CollKind::Reduce, true) => "MPI_Reduce",
            (CollKind::Reduce, false) => "MPI_Ireduce",
            (CollKind::Allreduce, true) => "MPI_Allreduce",
            (CollKind::Allreduce, false) => "MPI_Iallreduce",
            (CollKind::Barrier, true) => "MPI_Barrier",
            (CollKind::Barrier, false) => "MPI_Ibarrier",
            (CollKind::Scatter, _) => "MPI_Scatter",
            (CollKind::Gather, _) => "MPI_Gather",
            (CollKind::Allgather, _) => "MPI_Allgather",
            (CollKind::Dup, _) => "MPI_Comm_dup",
            (CollKind::Split, _) => "MPI_Comm_split",
        }
    }
}

/// One-sided (RMA) operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RmaKind {
    /// Origin writes into the target's window segment.
    Put,
    /// Origin reads from the target's window segment.
    Get,
    /// Origin element-wise adds into the target's window segment.
    Accumulate,
}

impl RmaKind {
    /// MPI-style display name (the request-returning `R`-forms, which is
    /// what the `Win` API models).
    pub fn name(self) -> &'static str {
        match self {
            RmaKind::Put => "MPI_Rput",
            RmaKind::Get => "MPI_Rget",
            RmaKind::Accumulate => "MPI_Raccumulate",
        }
    }
}

/// One entry of the verification log.
#[derive(Debug, Clone)]
pub enum Event {
    /// A communicator context came into existence on some rank. Emitted by
    /// every member; the analyzer deduplicates.
    CommDecl {
        /// Context id.
        ctx: u32,
        /// Member world ranks in communicator order.
        members: Arc<Vec<u32>>,
    },
    /// A collective call was issued (blocking or nonblocking, including
    /// `dup`/`split`). Recorded on the calling rank thread at post time, so
    /// per-(rank, ctx) event order is program order.
    Coll {
        /// Recording agent (always a rank agent).
        agent: AgentId,
        /// World rank.
        rank: u32,
        /// Communicator context the collective runs on (the parent for
        /// `dup`/`split`).
        ctx: u32,
        /// Which collective.
        kind: CollKind,
        /// Communicator-relative root, where applicable.
        root: Option<u32>,
        /// Payload length in bytes (0 for barrier/dup/split).
        len: usize,
        /// Blocking form?
        blocking: bool,
        /// Tracked request of the nonblocking form.
        req: Option<ReqId>,
        /// Progress actor running the nonblocking form.
        op_agent: Option<AgentId>,
        /// User call site.
        site: Option<Site>,
    },
    /// A send was posted.
    SendPost {
        /// Posting agent (rank thread or collective progress actor).
        agent: AgentId,
        /// World rank of the sender.
        rank: u32,
        /// Context id.
        ctx: u32,
        /// Destination world rank.
        dst: u32,
        /// Full matching tag (bit 63 marks internal collective traffic).
        tag: u64,
        /// Message size.
        bytes: usize,
        /// Collective-internal message?
        internal: bool,
        /// Tracked request.
        req: ReqId,
        /// Call site.
        site: Option<Site>,
    },
    /// A receive was posted.
    RecvPost {
        /// Posting agent.
        agent: AgentId,
        /// World rank of the receiver.
        rank: u32,
        /// Context id.
        ctx: u32,
        /// Source world rank.
        src: u32,
        /// Full matching tag.
        tag: u64,
        /// Collective-internal message?
        internal: bool,
        /// Tracked request.
        req: ReqId,
        /// Call site.
        site: Option<Site>,
    },
    /// The matching layer paired a send with a receive. Always recorded
    /// before either request completes.
    Match {
        /// The send request.
        send: ReqId,
        /// The receive request.
        recv: ReqId,
    },
    /// An agent finished an `MPI_Wait` on a request.
    WaitDone {
        /// Waiting agent.
        agent: AgentId,
        /// The request.
        req: ReqId,
    },
    /// An `MPI_Test` observed a request complete (unsuccessful polls are
    /// not recorded).
    TestObserved {
        /// Testing agent.
        agent: AgentId,
        /// The request.
        req: ReqId,
    },
    /// A nonblocking collective's progress actor finished. Recorded before
    /// the request completes.
    CollDone {
        /// The collective's tracked request.
        req: ReqId,
        /// The progress actor.
        op_agent: AgentId,
    },
    /// The last handle to a tracked request was dropped.
    ReqDropped {
        /// The request.
        req: ReqId,
        /// Had it completed by then?
        completed: bool,
        /// Had its result been taken (waited)?
        taken: bool,
    },
    /// A one-sided window came into existence on some rank (`win_create`
    /// is collective). Emitted by every member.
    WinDecl {
        /// Recording agent (always a rank agent).
        agent: AgentId,
        /// World rank.
        rank: u32,
        /// Context id of the communicator the window was created over.
        ctx: u32,
        /// Window id, shared by every member's events for this window.
        win: u64,
        /// Size of this rank's exposed segment in bytes.
        len: usize,
        /// User call site of `win_create`.
        site: Option<Site>,
    },
    /// A rank completed an active-target `fence` on a window — the only
    /// synchronization point of the fence epoch model.
    WinFence {
        /// Recording agent.
        agent: AgentId,
        /// World rank.
        rank: u32,
        /// Window id.
        win: u64,
        /// User call site.
        site: Option<Site>,
    },
    /// A rank acquired a passive-target lock on `target`'s segment.
    WinLock {
        /// Recording agent.
        agent: AgentId,
        /// World rank of the origin.
        rank: u32,
        /// Window id.
        win: u64,
        /// Target world-ish (window) rank being locked.
        target: u32,
        /// User call site.
        site: Option<Site>,
    },
    /// A rank released a passive-target lock on `target`'s segment.
    WinUnlock {
        /// Recording agent.
        agent: AgentId,
        /// World rank of the origin.
        rank: u32,
        /// Window id.
        win: u64,
        /// Target window rank being unlocked.
        target: u32,
        /// User call site.
        site: Option<Site>,
    },
    /// A one-sided operation was posted by an origin rank. The target
    /// posts nothing — that is the point of the paradigm.
    RmaOp {
        /// Recording agent (the origin).
        agent: AgentId,
        /// Origin world rank.
        rank: u32,
        /// Window id.
        win: u64,
        /// Which one-sided operation.
        kind: RmaKind,
        /// Target window rank.
        target: u32,
        /// Byte offset into the target segment.
        offset: usize,
        /// Length in bytes.
        len: usize,
        /// Tracked request of data-returning forms (`get`); `None` for
        /// `put`/`accumulate`, which complete at the closing fence/unlock.
        req: Option<ReqId>,
        /// User call site.
        site: Option<Site>,
    },
    /// A rank freed its window handle (collective; closes the window).
    WinFree {
        /// Recording agent.
        agent: AgentId,
        /// World rank.
        rank: u32,
        /// Window id.
        win: u64,
        /// User call site.
        site: Option<Site>,
    },
    /// A rank's window handle was dropped. `freed == false` means the
    /// window leaked — dropped without `free` (the `Win` analogue of
    /// [`Event::ReqDropped`]).
    WinDropped {
        /// World rank whose handle dropped.
        rank: u32,
        /// Window id.
        win: u64,
        /// Was `free` called first?
        freed: bool,
    },
}
