//! Pure algorithm builders: the classical collective algorithms,
//! transliterated from blocking-style code into [`CollPlan`] schedules.
//!
//! Each builder is a pure function of `(p, me, n, root)` — it never touches
//! the network, clocks or payload bytes, so plans can be built for **all**
//! ranks at once and statically linted before execution. Blocking
//! operations become posted steps plus fences (see
//! [`PlanBuilder`]); peer formulas, tag step-bases and slack
//! placement replicate the original hand-written implementations exactly,
//! which keeps modeled virtual times unchanged.
//!
//! Non-power-of-two communicators are handled the classical way: the
//! recursive algorithms fold the `r = p - m` surplus ranks into a
//! power-of-two core (`m` = largest power of two ≤ `p`) before the core
//! phase and unfold afterwards where the collective requires it.

// Builder invariants (e.g. "every non-root rank receives exactly once in a
// binomial tree", "all ring chunks are present after p-1 rounds") are
// structural properties of the algorithms; expect() documents them.
#![allow(clippy::expect_used)]

use crate::event::CollKind;

use super::{chunk_bounds, BufId, CollAlgo, CollPlan, PlanBuilder};

/// Map a root-relative virtual rank back to a communicator index.
fn from_v(p: usize, root: usize, v: usize) -> usize {
    (v + root) % p
}

/// Map a communicator index to its root-relative virtual rank.
fn to_v(p: usize, root: usize, rank: usize) -> usize {
    (rank + p - root) % p
}

/// The power-of-two core of a communicator: `m` = largest power of two
/// ≤ `p`, `r = p - m` surplus ranks folded pairwise into the first `2r`.
struct Core {
    m: usize,
    r: usize,
}

impl Core {
    fn new(p: usize) -> Core {
        let mut m = 1usize;
        while m * 2 <= p {
            m *= 2;
        }
        Core { m, r: p - m }
    }

    /// Communicator-space index of core rank `c`.
    fn comm_of(&self, c: usize) -> usize {
        if c < self.r {
            2 * c
        } else {
            c + self.r
        }
    }
}

/// Binomial-tree broadcast. Returns the full-payload buffer on every rank.
fn bcast_binomial(pb: &mut PlanBuilder, root: usize, step_base: u32) -> BufId {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let mut buf = if vrank == 0 {
        Some(pb.input_buf())
    } else {
        None
    };
    // Receive phase: a non-root rank receives once, from the parent that
    // differs in its lowest set bit.
    let mut mask = 1usize;
    let mut recv_round = 0u32;
    while mask < p {
        if vrank & mask != 0 {
            pb.slack();
            buf = Some(pb.recv(from_v(p, root, vrank - mask), step_base + recv_round, n));
            break;
        }
        mask <<= 1;
        recv_round += 1;
    }
    let buf = buf.expect("binomial bcast: every rank has the payload after its receive");
    // Send phase: forward to children at decreasing mask levels.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            pb.slack();
            pb.send(
                from_v(p, root, vrank + mask),
                step_base + mask.trailing_zeros(),
                buf,
            );
        }
        mask >>= 1;
    }
    buf
}

/// Range-halving scatter tree. Returns this rank's chunk
/// (`bounds[vrank]..bounds[vrank+1]` of `chunk_bounds(n, p)`).
fn scatter_tree(pb: &mut PlanBuilder, root: usize, step_base: u32) -> BufId {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let bounds = chunk_bounds(n, p);
    let mut buf = if vrank == 0 {
        Some(pb.input_buf())
    } else {
        None
    };
    let (mut lo, mut hi) = (0usize, p);
    let mut step = step_base;
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        if vrank < mid {
            if vrank == lo {
                let cut = bounds[mid] - bounds[lo];
                let b = buf.expect("scatter tree: range owner holds its range");
                let (keep, give) = pb.split_at(b, cut);
                pb.slack();
                pb.send(from_v(p, root, mid), step, give);
                buf = Some(keep);
            }
            hi = mid;
        } else {
            if vrank == mid {
                pb.slack();
                buf = Some(pb.recv(from_v(p, root, lo), step, bounds[hi] - bounds[mid]));
            }
            lo = mid;
        }
        step += 1;
    }
    buf.expect("scatter tree: every rank ends owning its chunk")
}

/// Ring allgather in root-relative virtual-rank space: rank `vrank`
/// contributes `my_chunk` (= chunk `vrank` of `chunk_bounds(n, p)`) and
/// every rank returns the full concatenation.
fn allgather_ring(pb: &mut PlanBuilder, root: usize, my_chunk: BufId, step_base: u32) -> BufId {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let bounds = chunk_bounds(n, p);
    assert_eq!(
        pb.len_of(my_chunk),
        bounds[vrank + 1] - bounds[vrank],
        "allgather chunk length mismatch"
    );
    let mut chunks: Vec<Option<BufId>> = vec![None; p];
    chunks[vrank] = Some(my_chunk);
    if p > 1 {
        let right = from_v(p, root, (vrank + 1) % p);
        let left = from_v(p, root, (vrank + p - 1) % p);
        for s in 0..p - 1 {
            let send_idx = (vrank + p - s) % p;
            let recv_idx = (vrank + p - s - 1) % p;
            pb.slack();
            let rlen = bounds[recv_idx + 1] - bounds[recv_idx];
            let sbuf = chunks[send_idx].expect("ring: sent chunk was produced a round earlier");
            let rbuf = pb.exchange(right, left, step_base + s as u32, sbuf, rlen);
            chunks[recv_idx] = Some(rbuf);
        }
    }
    let parts: Vec<BufId> = chunks
        .into_iter()
        .map(|c| c.expect("ring: all chunks present after p-1 rounds"))
        .collect();
    pb.concat(&parts)
}

/// Dissemination barrier: log2(p) rounds of pairwise empty-token exchange.
fn barrier_dissemination(pb: &mut PlanBuilder) {
    let p = pb.p();
    let me = pb.me();
    let mut dist = 1usize;
    let mut step = 0u32;
    while dist < p {
        let to = (me + dist) % p;
        let from = (me + p - dist) % p;
        pb.slack();
        let token = pb.empty();
        pb.exchange(to, from, step, token, 0);
        dist <<= 1;
        step += 1;
    }
}

/// Fold the `2r` lowest ranks pairwise so a power-of-two core holds the
/// partial sums. Works in virtual-rank space via the `fv` index map
/// (identity for rootless collectives). Returns this rank's folded payload
/// and `Some(core rank)` if it joins the core, `None` if it retires.
fn fold(
    pb: &mut PlanBuilder,
    core: &Core,
    vrank: usize,
    fv: &dyn Fn(usize) -> usize,
    step: u32,
) -> (BufId, Option<usize>) {
    let n = pb.n();
    let r = core.r;
    let contrib = pb.input_buf();
    if vrank < 2 * r {
        let half = chunk_bounds(n, 2)[1];
        let (lo, hi) = pb.split_at(contrib, half);
        if vrank % 2 == 1 {
            // Odd surplus rank: swap halves, reduce the high half, hand it
            // back to the even partner, retire.
            let partner = fv(vrank - 1);
            pb.slack();
            let their_hi = pb.exchange(partner, partner, step, lo, n - half);
            let reduced_hi = pb.reduce(hi, their_hi);
            pb.send(partner, step + 1, reduced_hi);
            (contrib, None)
        } else {
            // Even surplus rank: reduce the low half, receive the reduced
            // high half, join the core with the full folded vector.
            let partner = fv(vrank + 1);
            pb.slack();
            let their_lo = pb.exchange(partner, partner, step, hi, half);
            let reduced_lo = pb.reduce(lo, their_lo);
            let reduced_hi = pb.recv(partner, step + 1, n - half);
            let folded = pb.concat(&[reduced_lo, reduced_hi]);
            (folded, Some(vrank / 2))
        }
    } else {
        (contrib, Some(vrank - r))
    }
}

/// Unfold after an allreduce core phase: even surplus ranks forward the
/// full result to their retired odd partners. Returns the result buffer.
fn unfold(pb: &mut PlanBuilder, core: &Core, result: Option<BufId>, step: u32) -> BufId {
    let me = pb.me();
    let n = pb.n();
    if me < 2 * core.r {
        if me % 2 == 1 {
            pb.slack();
            pb.recv(me - 1, step, n)
        } else {
            let b = result.expect("unfold: core rank holds the result");
            pb.slack();
            pb.send(me + 1, step, b);
            b
        }
    } else {
        result.expect("unfold: core rank holds the result")
    }
}

/// Recursive-halving reduce-scatter over a power-of-two core of `m` ranks.
/// `contrib` covers `bounds[0]..bounds[m]`; returns chunk `cv`
/// (`bounds[cv]..bounds[cv+1]`) fully reduced.
fn reduce_scatter_halving(
    pb: &mut PlanBuilder,
    cv: usize,
    m: usize,
    core_to_comm: &dyn Fn(usize) -> usize,
    contrib: BufId,
    bounds: &[usize],
    step_base: u32,
) -> BufId {
    let (mut lo, mut hi) = (0usize, m);
    let mut buf = contrib;
    let mut step = step_base;
    while hi - lo > 1 {
        let half = (hi - lo) / 2;
        let mid = lo + half;
        let cut = bounds[mid] - bounds[lo];
        let (low, high) = pb.split_at(buf, cut);
        let (keep, give, partner) = if cv < mid {
            (low, high, cv + half)
        } else {
            (high, low, cv - half)
        };
        pb.slack();
        let keep_len = pb.len_of(keep);
        let incoming = pb.exchange(
            core_to_comm(partner),
            core_to_comm(partner),
            step,
            give,
            keep_len,
        );
        buf = pb.reduce(keep, incoming);
        if cv < mid {
            hi = mid;
        } else {
            lo = mid;
        }
        step += 1;
    }
    buf
}

/// Binomial gather of reduced chunks to core rank 0. Returns the full
/// vector at core rank 0, `None` elsewhere.
fn gather_to_zero(
    pb: &mut PlanBuilder,
    cv: usize,
    m: usize,
    core_to_comm: &dyn Fn(usize) -> usize,
    chunk: BufId,
    bounds: &[usize],
    step_base: u32,
) -> Option<BufId> {
    let mut buf = chunk;
    let mut mask = 1usize;
    while mask < m {
        if cv & mask != 0 {
            pb.slack();
            pb.send(
                core_to_comm(cv - mask),
                step_base + mask.trailing_zeros(),
                buf,
            );
            return None;
        }
        let src = cv + mask;
        if src < m {
            pb.slack();
            let rlen = bounds[src + mask] - bounds[src];
            let incoming = pb.recv(core_to_comm(src), step_base + mask.trailing_zeros(), rlen);
            buf = pb.concat(&[buf, incoming]);
        }
        mask <<= 1;
    }
    Some(buf)
}

/// Ring allreduce: ring reduce-scatter, then ring allgather rooted so each
/// rank's owned chunk lines up with its allgather position.
fn allreduce_ring(pb: &mut PlanBuilder) -> BufId {
    let p = pb.p();
    let me = pb.me();
    let n = pb.n();
    let bounds = chunk_bounds(n, p);
    let mut acc: Vec<BufId> = (0..p)
        .map(|i| pb.input_slice(bounds[i], bounds[i + 1] - bounds[i]))
        .collect();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + p - s - 1) % p;
        pb.slack();
        let rlen = pb.len_of(acc[recv_idx]);
        let incoming = pb.exchange(right, left, s as u32, acc[send_idx], rlen);
        acc[recv_idx] = pb.reduce(acc[recv_idx], incoming);
    }
    // After the reduce-scatter, rank me fully owns chunk (me+1)%p. Root
    // the allgather at p-1 so vrank == (me+1)%p == owned chunk index.
    allgather_ring(pb, p - 1, acc[(me + 1) % p], 500)
}

/// Recursive-doubling allreduce with surplus-rank fold/unfold.
fn allreduce_recursive_doubling(pb: &mut PlanBuilder) -> BufId {
    let core = Core::new(pb.p());
    let n = pb.n();
    let me = pb.me();
    let (folded, role) = fold(pb, &core, me, &|v| v, 0);
    let result = if let Some(cv) = role {
        let mut acc = folded;
        let mut mask = 1usize;
        let mut step = 10u32;
        while mask < core.m {
            let partner = core.comm_of(cv ^ mask);
            pb.slack();
            let incoming = pb.exchange(partner, partner, step, acc, n);
            acc = pb.reduce(acc, incoming);
            mask <<= 1;
            step += 1;
        }
        Some(acc)
    } else {
        None
    };
    unfold(pb, &core, result, 100)
}

/// Reduce-scatter + ring-allgather allreduce over the power-of-two core.
fn allreduce_rsag(pb: &mut PlanBuilder) -> BufId {
    let core = Core::new(pb.p());
    let n = pb.n();
    let me = pb.me();
    let (folded, role) = fold(pb, &core, me, &|v| v, 0);
    let m = core.m;
    let bounds = chunk_bounds(n, m);
    let result = if let Some(cv) = role {
        let ctc = |c: usize| core.comm_of(c);
        let chunk = reduce_scatter_halving(pb, cv, m, &ctc, folded, &bounds, 10);
        // Ring allgather over the core ranks (chunk cv lives at core rank
        // cv after the halving phase).
        let mut chunks: Vec<Option<BufId>> = vec![None; m];
        chunks[cv] = Some(chunk);
        if m > 1 {
            let right = core.comm_of((cv + 1) % m);
            let left = core.comm_of((cv + m - 1) % m);
            for s in 0..m - 1 {
                let send_idx = (cv + m - s) % m;
                let recv_idx = (cv + m - s - 1) % m;
                pb.slack();
                let rlen = bounds[recv_idx + 1] - bounds[recv_idx];
                let sbuf =
                    chunks[send_idx].expect("rsag ring: sent chunk produced a round earlier");
                chunks[recv_idx] = Some(pb.exchange(right, left, 100 + s as u32, sbuf, rlen));
            }
        }
        let parts: Vec<BufId> = chunks
            .into_iter()
            .map(|c| c.expect("rsag ring: all chunks present"))
            .collect();
        Some(pb.concat(&parts))
    } else {
        None
    };
    unfold(pb, &core, result, 1000)
}

/// Binomial-tree reduce toward the root. Returns the result at the root.
fn reduce_binomial(pb: &mut PlanBuilder, root: usize, step_base: u32) -> Option<BufId> {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let mut acc = pb.input_buf();
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask == 0 {
            let src_v = vrank + mask;
            if src_v < p {
                pb.slack();
                let incoming =
                    pb.recv(from_v(p, root, src_v), step_base + mask.trailing_zeros(), n);
                acc = pb.reduce(acc, incoming);
            }
            mask <<= 1;
        } else {
            pb.slack();
            pb.send(
                from_v(p, root, vrank - mask),
                step_base + mask.trailing_zeros(),
                acc,
            );
            return None;
        }
    }
    Some(acc)
}

/// Ring reduce-scatter + direct gather to the root.
fn reduce_ring(pb: &mut PlanBuilder, root: usize) -> Option<BufId> {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let fv = |v: usize| from_v(p, root, v);
    let bounds = chunk_bounds(n, p);
    let mut acc: Vec<BufId> = (0..p)
        .map(|i| pb.input_slice(bounds[i], bounds[i + 1] - bounds[i]))
        .collect();
    let right = fv((vrank + 1) % p);
    let left = fv((vrank + p - 1) % p);
    for s in 0..p - 1 {
        let send_idx = (vrank + p - s) % p;
        let recv_idx = (vrank + p - s - 1) % p;
        pb.slack();
        let rlen = pb.len_of(acc[recv_idx]);
        let incoming = pb.exchange(right, left, s as u32, acc[send_idx], rlen);
        acc[recv_idx] = pb.reduce(acc[recv_idx], incoming);
    }
    // Rank vrank now fully owns chunk (vrank+1)%p; everyone sends theirs
    // straight to the root, which assembles the vector in chunk order.
    let owned = (vrank + 1) % p;
    if vrank == 0 {
        let mut chunks: Vec<Option<BufId>> = vec![None; p];
        chunks[owned] = Some(acc[owned]);
        for c in 0..p {
            if c == owned {
                continue;
            }
            let owner_v = (c + p - 1) % p;
            pb.slack();
            let rlen = bounds[c + 1] - bounds[c];
            chunks[c] = Some(pb.recv(fv(owner_v), 500 + c as u32, rlen));
        }
        let parts: Vec<BufId> = chunks
            .into_iter()
            .map(|x| x.expect("reduce ring: all chunks gathered"))
            .collect();
        Some(pb.concat(&parts))
    } else {
        pb.slack();
        pb.send(fv(0), 500 + owned as u32, acc[owned]);
        None
    }
}

/// Rabenseifner reduce: fold into the power-of-two core, recursive-halving
/// reduce-scatter, binomial gather of chunks to the root.
fn reduce_rabenseifner(pb: &mut PlanBuilder, root: usize) -> Option<BufId> {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let core = Core::new(p);
    let fv = |v: usize| from_v(p, root, v);
    let (folded, role) = fold(pb, &core, vrank, &fv, 0);
    let cv = role?;
    let ctc = |c: usize| fv(core.comm_of(c));
    let bounds = chunk_bounds(n, core.m);
    let chunk = reduce_scatter_halving(pb, cv, core.m, &ctc, folded, &bounds, 10);
    gather_to_zero(pb, cv, core.m, &ctc, chunk, &bounds, 100)
}

/// Binomial-tree gather of per-rank chunks to the root.
fn gather_binomial(pb: &mut PlanBuilder, root: usize) -> Option<BufId> {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let bounds = chunk_bounds(n, p);
    let mut buf = pb.input_buf();
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            pb.slack();
            pb.send(from_v(p, root, vrank - mask), mask.trailing_zeros(), buf);
            return None;
        }
        let src = vrank + mask;
        if src < p {
            pb.slack();
            // Sender src holds chunks [src, min(src+mask, p)) when it fires.
            let top = (src + mask).min(p);
            let rlen = bounds[top] - bounds[src];
            let incoming = pb.recv(from_v(p, root, src), mask.trailing_zeros(), rlen);
            buf = pb.concat(&[buf, incoming]);
        }
        mask <<= 1;
    }
    Some(buf)
}

/// Linear gather for long messages: every rank sends its chunk straight to
/// the root, which drains all receives concurrently (tag = sender's
/// virtual rank).
fn gather_linear(pb: &mut PlanBuilder, root: usize) -> Option<BufId> {
    let p = pb.p();
    let n = pb.n();
    let vrank = to_v(p, root, pb.me());
    let bounds = chunk_bounds(n, p);
    let chunk = pb.input_buf();
    if vrank == 0 {
        pb.slack();
        let mut parts = vec![chunk];
        let mut posted = Vec::with_capacity(p - 1);
        for v in 1..p {
            let rlen = bounds[v + 1] - bounds[v];
            let (sid, b) = pb.irecv(from_v(p, root, v), v as u32, rlen);
            posted.push(sid);
            parts.push(b);
        }
        for s in posted {
            pb.fence_on(s);
        }
        Some(pb.concat(&parts))
    } else {
        pb.slack();
        pb.send(from_v(p, root, 0), vrank as u32, chunk);
        None
    }
}

/// Build rank `me`'s schedule for one collective instance.
///
/// `root` is the communicator-relative root (pass 0 for rootless
/// collectives); `n` is the total logical payload in bytes. Panics if
/// `algo` does not implement `kind` or cannot run on `p` ranks.
pub fn build_plan(
    kind: CollKind,
    algo: CollAlgo,
    p: usize,
    me: usize,
    n: usize,
    root: usize,
) -> CollPlan {
    assert_eq!(algo.kind(), kind, "{algo} does not implement {kind:?}");
    assert!(algo.supports(p), "{algo} cannot run on {p} ranks");
    assert!(me < p && root < p, "bad rank/root for p={p}");
    let vrank = to_v(p, root, me);
    let bounds = chunk_bounds(n, p);
    let input = match kind {
        CollKind::Bcast | CollKind::Scatter => (me == root).then_some((0, n)),
        CollKind::Reduce | CollKind::Allreduce => Some((0, n)),
        CollKind::Gather | CollKind::Allgather => {
            Some((bounds[vrank], bounds[vrank + 1] - bounds[vrank]))
        }
        CollKind::Barrier => None,
        CollKind::Dup | CollKind::Split => panic!("no plans for communicator management"),
    };
    let mut pb = PlanBuilder::new(kind, algo, p, me, n, root, input);
    if p == 1 {
        // Trivial single-rank collective: the output is the input, nothing
        // goes on the wire.
        if kind != CollKind::Barrier {
            let b = pb.input_buf();
            pb.set_output(b);
        }
        return pb.finish();
    }
    let out: Option<BufId> = match algo {
        CollAlgo::BcastBinomial => Some(bcast_binomial(&mut pb, root, 0)),
        CollAlgo::BcastScatterAllgather => {
            let chunk = scatter_tree(&mut pb, root, 0);
            Some(allgather_ring(&mut pb, root, chunk, 1000))
        }
        CollAlgo::ReduceBinomial => reduce_binomial(&mut pb, root, 0),
        CollAlgo::ReduceRabenseifner => reduce_rabenseifner(&mut pb, root),
        CollAlgo::ReduceRing => reduce_ring(&mut pb, root),
        CollAlgo::AllreduceRecursiveDoubling => Some(allreduce_recursive_doubling(&mut pb)),
        CollAlgo::AllreduceRsag => Some(allreduce_rsag(&mut pb)),
        CollAlgo::AllreduceRing => Some(allreduce_ring(&mut pb)),
        CollAlgo::GatherBinomial => gather_binomial(&mut pb, root),
        CollAlgo::GatherLinear => gather_linear(&mut pb, root),
        CollAlgo::ScatterTree => Some(scatter_tree(&mut pb, root, 0)),
        CollAlgo::AllgatherRing => {
            let b = pb.input_buf();
            Some(allgather_ring(&mut pb, 0, b, 0))
        }
        CollAlgo::BarrierDissemination => {
            barrier_dissemination(&mut pb);
            None
        }
    };
    if let Some(b) = out {
        pb.set_output(b);
    }
    pb.finish()
}

/// Build the schedules of **all** `p` ranks for one collective instance
/// (the unit the static linter checks and the executor caches).
pub fn build_all(kind: CollKind, algo: CollAlgo, p: usize, n: usize, root: usize) -> Vec<CollPlan> {
    (0..p)
        .map(|me| build_plan(kind, algo, p, me, n, root))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StepOp;

    // (from, to, tag, bytes) of every posted message.
    type Msgs = Vec<(usize, usize, u32, usize)>;

    fn sends_and_recvs(plans: &[CollPlan]) -> (Msgs, Msgs) {
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for plan in plans {
            for s in &plan.steps {
                match &s.op {
                    StepOp::Send { peer, buf, tag } => {
                        sends.push((plan.me, *peer, *tag, plan.buf_len(*buf)));
                    }
                    StepOp::Recv { peer, into, tag } => {
                        recvs.push((*peer, plan.me, *tag, plan.buf_len(*into)));
                    }
                    _ => {}
                }
            }
        }
        (sends, recvs)
    }

    #[test]
    fn every_algo_builds_with_matching_envelopes() {
        for &algo in CollAlgo::all() {
            for p in [1usize, 2, 3, 4, 5, 7, 8] {
                for n in [0usize, 64, 1000] {
                    let roots: &[usize] = match algo.kind() {
                        CollKind::Bcast
                        | CollKind::Reduce
                        | CollKind::Scatter
                        | CollKind::Gather => {
                            if p > 1 {
                                &[0, 1]
                            } else {
                                &[0]
                            }
                        }
                        _ => &[0],
                    };
                    for &root in roots {
                        let plans = build_all(algo.kind(), algo, p, n, root);
                        assert_eq!(plans.len(), p);
                        let (mut sends, mut recvs) = sends_and_recvs(&plans);
                        sends.sort_unstable();
                        recvs.sort_unstable();
                        assert_eq!(
                            sends, recvs,
                            "{algo} p={p} n={n} root={root}: send/recv envelopes differ"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binomial_bcast_sends_p_minus_1_messages() {
        for p in [2usize, 3, 8, 13] {
            let plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, p, 256, 0);
            let total: usize = plans
                .iter()
                .map(|pl| {
                    pl.steps
                        .iter()
                        .filter(|s| matches!(s.op, StepOp::Send { .. }))
                        .count()
                })
                .sum();
            assert_eq!(total, p - 1);
        }
    }

    #[test]
    fn outputs_exist_where_expected() {
        let p = 6;
        let plans = build_all(CollKind::Reduce, CollAlgo::ReduceRing, p, 4096, 2);
        for plan in &plans {
            if plan.me == 2 {
                assert!(plan.output.is_some());
                assert_eq!(plan.buf_len(plan.output.unwrap()), 4096);
            } else {
                assert!(plan.output.is_none(), "rank {} has output", plan.me);
            }
        }
        let plans = build_all(CollKind::Allreduce, CollAlgo::AllreduceRing, p, 4096, 0);
        for plan in &plans {
            assert_eq!(plan.output.map(|b| plan.buf_len(b)), Some(4096));
        }
    }

    #[test]
    fn gather_linear_root_posts_concurrent_recvs() {
        let p = 5;
        let plans = build_all(CollKind::Gather, CollAlgo::GatherLinear, p, 400, 0);
        let recvs = plans[0]
            .steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Recv { .. }))
            .count();
        assert_eq!(recvs, p - 1);
        // No recv step depends on another recv: they are all in flight at once.
        for s in &plans[0].steps {
            if matches!(s.op, StepOp::Recv { .. }) {
                assert!(s.deps.is_empty());
            }
        }
    }

    #[test]
    fn single_rank_plans_are_wire_silent() {
        for &algo in CollAlgo::all() {
            let plans = build_all(algo.kind(), algo, 1, 128, 0);
            assert_eq!(plans[0].messages(), 0, "{algo}");
        }
    }
}
