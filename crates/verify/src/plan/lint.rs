//! Static linter for collective plans.
//!
//! Given the plans of **all** ranks of one collective instance, the linter
//! virtually executes them — no clocks, no payloads — and reports:
//!
//! * structural defects (`plan-bad-structure`): out-of-range buffers,
//!   peers, deps, reads of never-produced buffers, missing/unexpected
//!   outputs;
//! * envelope defects: sends never matched by a receive
//!   (`plan-unmatched-send`), receives never matched by a send
//!   (`plan-unmatched-recv`), matched pairs of different sizes
//!   (`plan-len-mismatch`);
//! * in-plan deadlock (`plan-deadlock`): ranks that can never finish under
//!   conservative rendezvous semantics (every send blocks until its
//!   receive is posted) — a plan clean under this model cannot deadlock in
//!   the simulator, whose eager small-message path only completes sends
//!   *earlier*;
//! * reduction/coverage defects: a rank's output not assembling exactly
//!   the bytes the collective promises, with every byte reduced over
//!   exactly the right contributor set (`plan-chunk-gap`), or a
//!   contribution summed twice (`plan-double-count`).
//!
//! Coverage uses *provenance segments*: every buffer byte is tracked as a
//! logical position in the collective's `n`-byte vector plus the set of
//! ranks whose contributions have been reduced into it. Receives copy the
//! sender's provenance, reductions union contributor sets (flagging
//! overlap), copies rearrange ranges — so the final output can be checked
//! byte-for-byte against the collective's semantics.
//!
//! The virtual execution is an event-driven worklist over rank program
//! counters: a rank re-runs only when one of its pending operations
//! completes, keeping the pass `O(steps + matches)`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::event::CollKind;

use super::mc::McCounterexample;
use super::{chunk_bounds, BufId, CollPlan, StepOp};

/// One defect found by the static plan linter. All findings are
/// error-severity: a plan exhibiting any of them is wrong for every
/// timing model.
#[derive(Debug, Clone)]
pub enum PlanFinding {
    /// The plan set is malformed (ids out of range, inconsistent shapes,
    /// missing outputs, reads of never-produced buffers...).
    BadStructure {
        /// Rank whose plan is malformed.
        rank: usize,
        /// What is wrong.
        detail: String,
    },
    /// A send no receive ever matches.
    UnmatchedSend {
        /// Sender.
        from: usize,
        /// Destination.
        to: usize,
        /// Step tag.
        tag: u32,
        /// Payload size.
        bytes: usize,
    },
    /// A receive no send ever matches.
    UnmatchedRecv {
        /// Receiver.
        at: usize,
        /// Expected source.
        from: usize,
        /// Step tag.
        tag: u32,
        /// Expected size.
        bytes: usize,
    },
    /// A matched send/receive pair disagrees on the byte count.
    LenMismatch {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Step tag.
        tag: u32,
        /// Sent bytes.
        send_bytes: usize,
        /// Expected bytes at the receiver.
        recv_bytes: usize,
    },
    /// A rank's result does not assemble exactly the bytes the collective
    /// promises (hole, wrong order, wrong contributor set), or a reduction
    /// combined misaligned ranges.
    ChunkGap {
        /// Rank with the broken result.
        rank: usize,
        /// What is missing or misplaced.
        detail: String,
    },
    /// A contribution was reduced into the same bytes twice.
    DoubleCount {
        /// Rank performing the double-counting reduction.
        rank: usize,
        /// Which contributions overlap.
        detail: String,
    },
    /// Under rendezvous semantics some ranks can never finish.
    Deadlock {
        /// Ranks stuck mid-plan or with forever-pending operations.
        stuck: Vec<usize>,
        /// First blocked step of the lowest stuck rank.
        detail: String,
    },
    /// A violation found by the stateful model checker
    /// ([`super::mc::model_check`]), carrying the full counterexample
    /// interleaving that exhibits it.
    Mc(McCounterexample),
}

impl PlanFinding {
    /// Short stable code identifying the lint (mirrors
    /// [`crate::Finding::code`]).
    pub fn code(&self) -> &'static str {
        match self {
            PlanFinding::BadStructure { .. } => "plan-bad-structure",
            PlanFinding::UnmatchedSend { .. } => "plan-unmatched-send",
            PlanFinding::UnmatchedRecv { .. } => "plan-unmatched-recv",
            PlanFinding::LenMismatch { .. } => "plan-len-mismatch",
            PlanFinding::ChunkGap { .. } => "plan-chunk-gap",
            PlanFinding::DoubleCount { .. } => "plan-double-count",
            PlanFinding::Deadlock { .. } => "plan-deadlock",
            PlanFinding::Mc(ce) => ce.code,
        }
    }
}

impl fmt::Display for PlanFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: ", self.code())?;
        match self {
            PlanFinding::BadStructure { rank, detail } => {
                write!(f, "rank {rank}: {detail}")
            }
            PlanFinding::UnmatchedSend {
                from,
                to,
                tag,
                bytes,
            } => write!(
                f,
                "send of {bytes}B from rank {from} to rank {to} (step tag {tag}) is never received"
            ),
            PlanFinding::UnmatchedRecv {
                at,
                from,
                tag,
                bytes,
            } => write!(
                f,
                "receive of {bytes}B at rank {at} from rank {from} (step tag {tag}) is never sent"
            ),
            PlanFinding::LenMismatch {
                from,
                to,
                tag,
                send_bytes,
                recv_bytes,
            } => write!(
                f,
                "rank {from} sends {send_bytes}B but rank {to} expects {recv_bytes}B (step tag {tag})"
            ),
            PlanFinding::ChunkGap { rank, detail } => write!(f, "rank {rank}: {detail}"),
            PlanFinding::DoubleCount { rank, detail } => write!(f, "rank {rank}: {detail}"),
            PlanFinding::Deadlock { stuck, detail } => {
                write!(f, "plan deadlocks: ranks {stuck:?} never finish; {detail}")
            }
            PlanFinding::Mc(ce) => write!(f, "{ce}"),
        }
    }
}

/// A set of contributing ranks (bitmask over the communicator).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RankSet(Vec<u64>);

impl RankSet {
    pub(crate) fn single(r: usize, p: usize) -> RankSet {
        let mut v = vec![0u64; p.div_ceil(64)];
        v[r / 64] |= 1 << (r % 64);
        RankSet(v)
    }

    pub(crate) fn all(p: usize) -> RankSet {
        let mut v = vec![u64::MAX; p.div_ceil(64)];
        if !p.is_multiple_of(64) {
            if let Some(last) = v.last_mut() {
                *last = (1u64 << (p % 64)) - 1;
            }
        }
        RankSet(v)
    }

    pub(crate) fn union(&self, o: &RankSet) -> RankSet {
        RankSet(self.0.iter().zip(o.0.iter()).map(|(a, b)| a | b).collect())
    }

    pub(crate) fn intersects(&self, o: &RankSet) -> bool {
        self.0.iter().zip(o.0.iter()).any(|(a, b)| a & b != 0)
    }

    fn ranks(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (w, &bits) in self.0.iter().enumerate() {
            for b in 0..64 {
                if bits & (1 << b) != 0 {
                    out.push(w * 64 + b);
                }
            }
        }
        out
    }
}

impl fmt::Display for RankSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.ranks();
        if r.len() > 6 {
            write!(f, "{{{} ranks}}", r.len())
        } else {
            write!(f, "{{{:?}}}", r)
        }
    }
}

/// One provenance segment: `len` buffer bytes holding logical positions
/// `lo..lo+len`, reduced over contributor set `mask`.
#[derive(Debug, Clone, Hash)]
pub(crate) struct Seg {
    pub(crate) len: usize,
    pub(crate) lo: usize,
    pub(crate) mask: RankSet,
}

/// A buffer's contents: provenance segments in buffer-byte order
/// (zero-length segments are never stored).
pub(crate) type BufVal = Vec<Seg>;

/// Extract buffer bytes `off..off+len` from a value.
pub(crate) fn slice_val(val: &BufVal, off: usize, len: usize) -> BufVal {
    let mut out = Vec::new();
    let (mut pos, mut want_from, mut want) = (0usize, off, len);
    for s in val {
        if want == 0 {
            break;
        }
        let end = pos + s.len;
        if end > want_from {
            let skip = want_from - pos;
            let take = (s.len - skip).min(want);
            out.push(Seg {
                len: take,
                lo: s.lo + skip,
                mask: s.mask.clone(),
            });
            want -= take;
            want_from += take;
        }
        pos = end;
    }
    out
}

pub(crate) fn val_len(val: &BufVal) -> usize {
    val.iter().map(|s| s.len).sum()
}

/// Split both values at the union of their internal breakpoints so they
/// can be compared segment by segment. Values must have equal total
/// length.
pub(crate) fn refine(a: &BufVal, b: &BufVal) -> (BufVal, BufVal) {
    let mut cuts: Vec<usize> = Vec::new();
    for v in [a, b] {
        let mut pos = 0;
        for s in v {
            pos += s.len;
            cuts.push(pos);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    let cut_up = |v: &BufVal| -> BufVal {
        let mut out = Vec::new();
        let mut prev = 0;
        for &c in &cuts {
            if c > prev {
                out.extend(slice_val(v, prev, c - prev));
                prev = c;
            }
        }
        out
    };
    (cut_up(a), cut_up(b))
}

/// A posted, not-yet-matched operation: `(rank, step index, bytes)`.
type Posted = (usize, usize, usize);

/// Virtual-execution state for the whole plan set.
struct Exec<'a> {
    plans: &'a [CollPlan],
    p: usize,
    /// Per rank, per buffer: provenance (None until produced).
    vals: Vec<Vec<Option<BufVal>>>,
    /// Per rank, per step: completed? (posted ops complete on match;
    /// non-posted steps complete when executed).
    done: Vec<Vec<bool>>,
    /// Per rank: program counter.
    pcs: Vec<usize>,
    /// FIFO queues of pending posts per (src, dst, tag) envelope.
    sends: BTreeMap<(usize, usize, u32), VecDeque<Posted>>,
    recvs: BTreeMap<(usize, usize, u32), VecDeque<Posted>>,
    /// Outstanding posted-op count per rank (for end-of-plan drain).
    pending: Vec<usize>,
    findings: Vec<PlanFinding>,
    /// Ranks that hit an unrecoverable structural problem mid-execution.
    poisoned: Vec<bool>,
}

impl<'a> Exec<'a> {
    fn new(plans: &'a [CollPlan]) -> Exec<'a> {
        let p = plans.len();
        Exec {
            plans,
            p,
            vals: plans
                .iter()
                .map(|pl| {
                    pl.bufs
                        .iter()
                        .map(|b| match b.input_off {
                            Some(off) => {
                                let base = pl.input.map(|(o, _)| o).unwrap_or(0);
                                Some(if b.len == 0 {
                                    Vec::new()
                                } else {
                                    vec![Seg {
                                        len: b.len,
                                        lo: base + off,
                                        mask: RankSet::single(pl.me, p),
                                    }]
                                })
                            }
                            // Zero-length literals (barrier tokens) exist
                            // without a producing step.
                            None if b.len == 0 => Some(Vec::new()),
                            None => None,
                        })
                        .collect()
                })
                .collect(),
            done: plans.iter().map(|pl| vec![false; pl.steps.len()]).collect(),
            pcs: vec![0; p],
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            pending: vec![0; p],
            findings: Vec::new(),
            poisoned: vec![false; p],
        }
    }

    /// Buffers a step reads (whose recv-producers it implicitly waits on).
    fn reads(op: &StepOp) -> Vec<BufId> {
        match op {
            StepOp::Slack | StepOp::Recv { .. } => Vec::new(),
            StepOp::Send { buf, .. } => vec![*buf],
            StepOp::Reduce { a, b, .. } => vec![*a, *b],
            StepOp::Copy { parts, .. } => parts.iter().map(|c| c.buf).collect(),
        }
    }

    /// Can rank `r`'s step `idx` run now? (All explicit deps and all
    /// recv-producers of read buffers completed.)
    fn runnable(&self, r: usize, idx: usize, producer: &[Vec<Option<usize>>]) -> bool {
        let step = &self.plans[r].steps[idx];
        if step.deps.iter().any(|d| !self.done[r][d.0 as usize]) {
            return false;
        }
        Exec::reads(&step.op)
            .iter()
            .all(|b| match producer[r][b.0 as usize] {
                Some(ps) if matches!(self.plans[r].steps[ps].op, StepOp::Recv { .. }) => {
                    self.done[r][ps]
                }
                _ => true,
            })
    }

    /// Try to match the head of both queues for one envelope; on a match,
    /// complete both steps and return the two ranks to re-wake.
    fn try_match(&mut self, key: (usize, usize, u32)) -> Option<(usize, usize)> {
        let (sr, ss, sbytes) = self.sends.get_mut(&key).and_then(VecDeque::pop_front)?;
        let r = self.recvs.get_mut(&key).and_then(VecDeque::pop_front);
        let Some((rr, rs, rbytes)) = r else {
            // Put the send back; no receive yet.
            if let Some(q) = self.sends.get_mut(&key) {
                q.push_front((sr, ss, sbytes));
            }
            return None;
        };
        if sbytes != rbytes {
            self.findings.push(PlanFinding::LenMismatch {
                from: key.0,
                to: key.1,
                tag: key.2,
                send_bytes: sbytes,
                recv_bytes: rbytes,
            });
        }
        // Transfer provenance from the sent buffer to the receive buffer.
        let sent_val = match &self.plans[sr].steps[ss].op {
            StepOp::Send { buf, .. } => self.vals[sr][buf.0 as usize].clone().unwrap_or_default(),
            _ => Vec::new(),
        };
        if let StepOp::Recv { into, .. } = self.plans[rr].steps[rs].op {
            let fitted = if val_len(&sent_val) == rbytes {
                sent_val
            } else {
                // Mismatched sizes already flagged; keep going with what
                // arrived, truncated to the declared buffer size.
                slice_val(&sent_val, 0, rbytes)
            };
            self.vals[rr][into.0 as usize] = Some(fitted);
        }
        self.done[sr][ss] = true;
        self.done[rr][rs] = true;
        self.pending[sr] -= 1;
        self.pending[rr] -= 1;
        Some((sr, rr))
    }

    /// Read a buffer's value, poisoning the rank if it was never produced.
    fn val(&mut self, r: usize, b: BufId) -> Option<BufVal> {
        match self.vals[r][b.0 as usize].clone() {
            Some(v) => Some(v),
            None => {
                self.findings.push(PlanFinding::BadStructure {
                    rank: r,
                    detail: format!("step reads buffer b{} before it is produced", b.0),
                });
                self.poisoned[r] = true;
                None
            }
        }
    }

    /// Execute step `idx` of rank `r` (which is runnable). Returns ranks
    /// to re-wake beyond `r` itself.
    fn execute(&mut self, r: usize, idx: usize) -> Vec<usize> {
        let op = self.plans[r].steps[idx].op.clone();
        let mut wake = Vec::new();
        match op {
            StepOp::Slack => {
                self.done[r][idx] = true;
            }
            StepOp::Send { peer, buf, tag } => {
                // Value must exist at post time (executor clones it here).
                if self.val(r, buf).is_none() {
                    return wake;
                }
                let key = (r, peer, tag);
                let bytes = self.plans[r].buf_len(buf);
                self.sends
                    .entry(key)
                    .or_default()
                    .push_back((r, idx, bytes));
                self.pending[r] += 1;
                if let Some((a, b)) = self.try_match(key) {
                    wake.push(a);
                    wake.push(b);
                }
            }
            StepOp::Recv { peer, into, tag } => {
                let key = (peer, r, tag);
                let bytes = self.plans[r].buf_len(into);
                self.recvs
                    .entry(key)
                    .or_default()
                    .push_back((r, idx, bytes));
                self.pending[r] += 1;
                if let Some((a, b)) = self.try_match(key) {
                    wake.push(a);
                    wake.push(b);
                }
            }
            StepOp::Reduce { a, b, into } => {
                let (Some(va), Some(vb)) = (self.val(r, a), self.val(r, b)) else {
                    return wake;
                };
                let (ra, rb) = refine(&va, &vb);
                let mut out = Vec::with_capacity(ra.len());
                for (sa, sb) in ra.iter().zip(rb.iter()) {
                    if sa.lo != sb.lo {
                        self.findings.push(PlanFinding::ChunkGap {
                            rank: r,
                            detail: format!(
                                "reduction combines misaligned ranges: logical {}..{} with {}..{}",
                                sa.lo,
                                sa.lo + sa.len,
                                sb.lo,
                                sb.lo + sb.len
                            ),
                        });
                    }
                    if sa.mask.intersects(&sb.mask) {
                        self.findings.push(PlanFinding::DoubleCount {
                            rank: r,
                            detail: format!(
                                "logical bytes {}..{} reduced over overlapping contributor sets \
                                 {} and {}",
                                sa.lo,
                                sa.lo + sa.len,
                                sa.mask,
                                sb.mask
                            ),
                        });
                    }
                    out.push(Seg {
                        len: sa.len,
                        lo: sa.lo,
                        mask: sa.mask.union(&sb.mask),
                    });
                }
                self.vals[r][into.0 as usize] = Some(out);
                self.done[r][idx] = true;
            }
            StepOp::Copy { parts, into } => {
                let mut out: BufVal = Vec::new();
                for part in &parts {
                    let Some(v) = self.val(r, part.buf) else {
                        return wake;
                    };
                    out.extend(slice_val(&v, part.off, part.len));
                }
                self.vals[r][into.0 as usize] = Some(out);
                self.done[r][idx] = true;
            }
        }
        wake
    }

    /// Run the worklist to quiescence.
    fn run(&mut self, producer: &[Vec<Option<usize>>]) {
        let mut queue: VecDeque<usize> = (0..self.p).collect();
        let mut queued = vec![true; self.p];
        while let Some(r) = queue.pop_front() {
            queued[r] = false;
            while !self.poisoned[r] && self.pcs[r] < self.plans[r].steps.len() {
                let idx = self.pcs[r];
                if !self.runnable(r, idx, producer) {
                    break;
                }
                self.pcs[r] = idx + 1;
                for w in self.execute(r, idx) {
                    if !queued[w] {
                        queued[w] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
    }
}

/// Human-readable description of what rank `r` is blocked on.
fn blocked_detail(plans: &[CollPlan], pcs: &[usize], pending: &[usize], r: usize) -> String {
    let plan = &plans[r];
    if pcs[r] < plan.steps.len() {
        let step = &plan.steps[pcs[r]];
        format!("rank {r} blocked at step s{} ({:?})", pcs[r], step.op)
    } else {
        format!(
            "rank {r} finished its steps but {} posted operation(s) never complete",
            pending[r]
        )
    }
}

fn bad(out: &mut Vec<PlanFinding>, rank: usize, detail: String) {
    out.push(PlanFinding::BadStructure { rank, detail });
}

/// Structural validation of one plan (ids, ranges, shapes).
pub(crate) fn check_structure(plans: &[CollPlan]) -> Vec<PlanFinding> {
    let mut out = Vec::new();
    let p = plans.len();
    for (r, plan) in plans.iter().enumerate() {
        if plan.me != r || plan.p != p {
            bad(
                &mut out,
                r,
                format!(
                    "plan claims me={} p={} at index {r} of {p}",
                    plan.me, plan.p
                ),
            );
            continue;
        }
        if plan.kind != plans[0].kind
            || plan.algo != plans[0].algo
            || plan.n != plans[0].n
            || plan.root != plans[0].root
        {
            bad(
                &mut out,
                r,
                "plans disagree on (kind, algo, n, root)".to_string(),
            );
            continue;
        }
        let nb = plan.bufs.len() as u32;
        if let Some((_, ilen)) = plan.input {
            for (i, b) in plan.bufs.iter().enumerate() {
                if let Some(off) = b.input_off {
                    if off + b.len > ilen {
                        bad(
                            &mut out,
                            r,
                            format!("buffer b{i} slices input out of range"),
                        );
                    }
                }
            }
        } else if plan.bufs.iter().any(|b| b.input_off.is_some()) {
            bad(
                &mut out,
                r,
                "buffer slices an input this rank does not have".to_string(),
            );
        }
        if let Some(o) = plan.output {
            if o.0 >= nb {
                bad(&mut out, r, format!("output buffer b{} out of range", o.0));
            }
        }
        for (i, step) in plan.steps.iter().enumerate() {
            for d in &step.deps {
                if d.0 as usize >= i {
                    bad(
                        &mut out,
                        r,
                        format!("step s{i} depends on later step s{}", d.0),
                    );
                } else if !matches!(
                    plan.steps[d.0 as usize].op,
                    StepOp::Send { .. } | StepOp::Recv { .. }
                ) {
                    bad(
                        &mut out,
                        r,
                        format!("step s{i} depends on non-posted step s{}", d.0),
                    );
                }
            }
            let mut bufs: Vec<(BufId, &'static str)> = Vec::new();
            match &step.op {
                StepOp::Slack => {}
                StepOp::Send { peer, buf, .. } => {
                    bufs.push((*buf, "sends"));
                    if *peer >= p || *peer == r {
                        bad(
                            &mut out,
                            r,
                            format!("step s{i} sends to invalid peer {peer}"),
                        );
                    }
                }
                StepOp::Recv { peer, into, .. } => {
                    bufs.push((*into, "receives into"));
                    if *peer >= p || *peer == r {
                        bad(
                            &mut out,
                            r,
                            format!("step s{i} receives from invalid peer {peer}"),
                        );
                    }
                }
                StepOp::Reduce { a, b, into } => {
                    bufs.push((*a, "reduces"));
                    bufs.push((*b, "reduces"));
                    bufs.push((*into, "reduces into"));
                    if a.0 < nb && b.0 < nb && plan.buf_len(*a) != plan.buf_len(*b) {
                        bad(
                            &mut out,
                            r,
                            format!(
                                "step s{i} reduces buffers of different lengths ({} vs {})",
                                plan.buf_len(*a),
                                plan.buf_len(*b)
                            ),
                        );
                    }
                }
                StepOp::Copy { parts, into } => {
                    bufs.push((*into, "copies into"));
                    for part in parts {
                        bufs.push((part.buf, "copies"));
                        if part.buf.0 < nb && part.off + part.len > plan.buf_len(part.buf) {
                            bad(
                                &mut out,
                                r,
                                format!("step s{i} copies out of range of b{}", part.buf.0),
                            );
                        }
                    }
                }
            }
            for (b, what) in bufs {
                if b.0 >= nb {
                    bad(
                        &mut out,
                        r,
                        format!("step s{i} {what} buffer b{} out of range", b.0),
                    );
                }
            }
        }
    }
    out
}

/// Expected provenance of rank `r`'s output, or `None` if the rank must
/// not produce one.
pub(crate) fn expected_output(
    kind: CollKind,
    p: usize,
    n: usize,
    root: usize,
    r: usize,
) -> Option<BufVal> {
    let chunked = |owner_of: &dyn Fn(usize) -> RankSet| -> BufVal {
        let bounds = chunk_bounds(n, p);
        (0..p)
            .filter(|&c| bounds[c + 1] > bounds[c])
            .map(|c| Seg {
                len: bounds[c + 1] - bounds[c],
                lo: bounds[c],
                mask: owner_of(c),
            })
            .collect()
    };
    let whole = |mask: RankSet| -> BufVal {
        if n == 0 {
            Vec::new()
        } else {
            vec![Seg {
                len: n,
                lo: 0,
                mask,
            }]
        }
    };
    match kind {
        CollKind::Bcast => Some(whole(RankSet::single(root, p))),
        CollKind::Allreduce => Some(whole(RankSet::all(p))),
        CollKind::Reduce => (r == root).then(|| whole(RankSet::all(p))),
        CollKind::Scatter => {
            let bounds = chunk_bounds(n, p);
            let v = (r + p - root) % p;
            let len = bounds[v + 1] - bounds[v];
            Some(if len == 0 {
                Vec::new()
            } else {
                vec![Seg {
                    len,
                    lo: bounds[v],
                    mask: RankSet::single(root, p),
                }]
            })
        }
        CollKind::Gather => (r == root).then(|| chunked(&|c| RankSet::single((c + root) % p, p))),
        CollKind::Allgather => Some(chunked(&|c| RankSet::single(c, p))),
        CollKind::Barrier | CollKind::Dup | CollKind::Split => None,
    }
}

/// Statically lint the plans of all ranks of one collective instance.
/// Returns every defect found (empty for a correct plan set).
pub fn lint_plans(plans: &[CollPlan]) -> Vec<PlanFinding> {
    if plans.is_empty() {
        return vec![PlanFinding::BadStructure {
            rank: 0,
            detail: "empty plan set".to_string(),
        }];
    }
    let structural = check_structure(plans);
    if !structural.is_empty() {
        return structural;
    }
    let p = plans.len();
    // Producer step of each buffer (for implicit recv dependencies) and
    // single-producer validation.
    let mut producer: Vec<Vec<Option<usize>>> =
        plans.iter().map(|pl| vec![None; pl.bufs.len()]).collect();
    let mut findings = Vec::new();
    for (r, plan) in plans.iter().enumerate() {
        for (i, step) in plan.steps.iter().enumerate() {
            let into = match &step.op {
                StepOp::Recv { into, .. }
                | StepOp::Reduce { into, .. }
                | StepOp::Copy { into, .. } => Some(*into),
                _ => None,
            };
            if let Some(b) = into {
                let slot = &mut producer[r][b.0 as usize];
                if slot.is_some() || plan.bufs[b.0 as usize].input_off.is_some() {
                    findings.push(PlanFinding::BadStructure {
                        rank: r,
                        detail: format!("buffer b{} produced more than once", b.0),
                    });
                } else {
                    *slot = Some(i);
                }
            }
        }
    }
    if !findings.is_empty() {
        return findings;
    }

    let mut exec = Exec::new(plans);
    exec.run(&producer);

    let mut findings = std::mem::take(&mut exec.findings);
    // Unmatched posted operations.
    for (&(from, to, tag), q) in &exec.sends {
        for &(_, _, bytes) in q {
            findings.push(PlanFinding::UnmatchedSend {
                from,
                to,
                tag,
                bytes,
            });
        }
    }
    for (&(from, at, tag), q) in &exec.recvs {
        for &(_, _, bytes) in q {
            findings.push(PlanFinding::UnmatchedRecv {
                at,
                from,
                tag,
                bytes,
            });
        }
    }
    // Ranks that never finish: mid-plan, or with pending ops the final
    // drain would wait on forever.
    let stuck: Vec<usize> = (0..p)
        .filter(|&r| {
            !exec.poisoned[r] && (exec.pcs[r] < plans[r].steps.len() || exec.pending[r] > 0)
        })
        .collect();
    if let Some(&first) = stuck.first() {
        let detail = blocked_detail(plans, &exec.pcs, &exec.pending, first);
        findings.push(PlanFinding::Deadlock { stuck, detail });
    }
    if !findings.is_empty() {
        return findings;
    }

    // Output coverage: every rank's result must be exactly what the
    // collective promises.
    for (r, plan) in plans.iter().enumerate() {
        let expect = expected_output(plan.kind, p, plan.n, plan.root, r);
        match (&expect, plan.output) {
            (None, Some(_)) => findings.push(PlanFinding::BadStructure {
                rank: r,
                detail: "rank declares an output this collective does not give it".to_string(),
            }),
            (Some(_), None) => findings.push(PlanFinding::ChunkGap {
                rank: r,
                detail: "rank is owed a result but the plan produces none".to_string(),
            }),
            (None, None) => {}
            (Some(want), Some(out)) => {
                let got = exec.vals[r][out.0 as usize].clone().unwrap_or_default();
                if val_len(&got) != val_len(want) {
                    findings.push(PlanFinding::ChunkGap {
                        rank: r,
                        detail: format!(
                            "output holds {}B but the collective promises {}B",
                            val_len(&got),
                            val_len(want)
                        ),
                    });
                    continue;
                }
                let (rg, rw) = refine(&got, want);
                let mut pos = 0usize;
                for (g, w) in rg.iter().zip(rw.iter()) {
                    if g.lo != w.lo {
                        findings.push(PlanFinding::ChunkGap {
                            rank: r,
                            detail: format!(
                                "output byte {pos} holds logical byte {} but should hold {}",
                                g.lo, w.lo
                            ),
                        });
                    } else if g.mask != w.mask {
                        findings.push(PlanFinding::ChunkGap {
                            rank: r,
                            detail: format!(
                                "logical bytes {}..{} reduced over {} but should cover {}",
                                g.lo,
                                g.lo + g.len,
                                g.mask,
                                w.mask
                            ),
                        });
                    }
                    pos += g.len;
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::super::builders::build_all;
    use super::super::{CollAlgo, PlanBuilder, StepOp};
    use super::*;

    fn codes(f: &[PlanFinding]) -> Vec<&'static str> {
        f.iter().map(PlanFinding::code).collect()
    }

    #[test]
    fn every_builder_is_lint_clean() {
        for &algo in CollAlgo::all() {
            for p in [1usize, 2, 3, 4, 5, 6, 7, 8, 12] {
                for n in [0usize, 8, 64, 1000, 4096] {
                    let roots: &[usize] = if p > 1 { &[0, 1, p - 1] } else { &[0] };
                    for &root in roots {
                        let root = if matches!(
                            algo.kind(),
                            CollKind::Allreduce | CollKind::Allgather | CollKind::Barrier
                        ) {
                            0
                        } else {
                            root
                        };
                        let plans = build_all(algo.kind(), algo, p, n, root);
                        let f = lint_plans(&plans);
                        assert!(
                            f.is_empty(),
                            "{algo} p={p} n={n} root={root}: {:?}",
                            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mismatched_peer_mutation_is_caught() {
        let mut plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, 4, 256, 0);
        // Redirect the root's first send to the wrong child.
        let step = plans[0]
            .steps
            .iter_mut()
            .find(|s| matches!(s.op, StepOp::Send { .. }))
            .unwrap();
        if let StepOp::Send { peer, .. } = &mut step.op {
            *peer = if *peer == 1 { 3 } else { 1 };
        }
        let f = lint_plans(&plans);
        let c = codes(&f);
        assert!(
            c.contains(&"plan-unmatched-send") || c.contains(&"plan-unmatched-recv"),
            "{f:?}"
        );
        assert!(c.contains(&"plan-deadlock"), "{f:?}");
    }

    #[test]
    fn chunk_gap_mutation_is_caught() {
        let mut plans = build_all(CollKind::Gather, CollAlgo::GatherBinomial, 4, 512, 0);
        // Drop one part from the root's final assembly.
        let mut shrink = None;
        let copy = plans[0]
            .steps
            .iter_mut()
            .rev()
            .find(|s| matches!(&s.op, StepOp::Copy { parts, .. } if parts.len() > 1))
            .unwrap();
        if let StepOp::Copy { parts, into } = &mut copy.op {
            let dropped = parts.pop().unwrap();
            shrink = Some((*into, dropped.len));
        }
        let (into, len) = shrink.unwrap();
        plans[0].bufs[into.0 as usize].len -= len;
        // Shrink downstream references to the now-shorter output.
        let f = lint_plans(&plans);
        assert!(codes(&f).contains(&"plan-chunk-gap"), "{f:?}");
    }

    #[test]
    fn double_count_is_caught() {
        // A "2-rank allreduce" where one rank reduces its own contribution
        // with itself instead of the partner's data.
        let mut pb = PlanBuilder::new(
            CollKind::Allreduce,
            CollAlgo::AllreduceRecursiveDoubling,
            1,
            0,
            16,
            0,
            Some((0, 16)),
        );
        let a = pb.input_buf();
        let b = pb.input_buf();
        let s = pb.reduce(a, b);
        pb.set_output(s);
        let f = lint_plans(&[pb.finish()]);
        assert!(codes(&f).contains(&"plan-double-count"), "{f:?}");
    }

    #[test]
    fn send_recv_size_disagreement_is_caught() {
        let mut pb0 = PlanBuilder::new(
            CollKind::Bcast,
            CollAlgo::BcastBinomial,
            2,
            0,
            16,
            0,
            Some((0, 16)),
        );
        let b = pb0.input_buf();
        pb0.send(1, 0, b);
        pb0.set_output(b);
        let mut pb1 = PlanBuilder::new(CollKind::Bcast, CollAlgo::BcastBinomial, 2, 1, 16, 0, None);
        let got = pb1.recv(0, 0, 8); // expects 8B of a 16B message
        let doubled = pb1.concat(&[got, got]);
        pb1.set_output(doubled);
        let f = lint_plans(&[pb0.finish(), pb1.finish()]);
        assert!(codes(&f).contains(&"plan-len-mismatch"), "{f:?}");
    }

    #[test]
    fn circular_blocking_recvs_deadlock() {
        let mk = |me: usize, peer: usize| {
            let mut pb = PlanBuilder::new(
                CollKind::Allreduce,
                CollAlgo::AllreduceRecursiveDoubling,
                2,
                me,
                8,
                0,
                Some((0, 8)),
            );
            let mine = pb.input_buf();
            let theirs = pb.recv(peer, 0, 8); // both recv first: classic deadlock
            pb.send(peer, 0, mine);
            let s = pb.reduce(mine, theirs);
            pb.set_output(s);
            pb.finish()
        };
        let f = lint_plans(&[mk(0, 1), mk(1, 0)]);
        let c = codes(&f);
        assert!(c.contains(&"plan-deadlock"), "{f:?}");
    }

    #[test]
    fn wrong_concat_order_is_a_chunk_gap() {
        let p = 3;
        let mut plans = build_all(CollKind::Allgather, CollAlgo::AllgatherRing, p, 240, 0);
        // Swap the first two parts of rank 0's final concat.
        let copy = plans[0]
            .steps
            .iter_mut()
            .rev()
            .find(|s| matches!(&s.op, StepOp::Copy { parts, .. } if parts.len() == p))
            .unwrap();
        if let StepOp::Copy { parts, .. } = &mut copy.op {
            parts.swap(0, 1);
        }
        let f = lint_plans(&plans);
        assert!(codes(&f).contains(&"plan-chunk-gap"), "{f:?}");
    }
}
