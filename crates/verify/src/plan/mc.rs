//! Stateful model checking of [`CollPlan`] schedules.
//!
//! Where the [linter](super::lint) virtually executes one plan set under a
//! single conservative semantics, the model checker explores **every**
//! schedule the runtime could produce, across three axes of
//! nondeterminism:
//!
//! * **Receive-match order** — composed instances racing their posts into
//!   the same wire envelope can enqueue in any order;
//! * **Transfer protocol** — the eager/rendezvous cutoff is treated as a
//!   symbolic boundary: each plan set is checked at every message-size
//!   *cutpoint* (`{0} ∪ {s+1 | s a distinct send size}`), so a plan that
//!   is safe when sends complete at post time but deadlocks when they
//!   complete at match time is caught, and vice versa;
//! * **Composition** — several [`PlanInstance`]s posted concurrently (the
//!   paper's `N_DUP` overlap), checked for match-isolation: no message of
//!   one instance may ever be consumed by another.
//!
//! ## Reduction
//!
//! Exhaustive interleaving exploration is made tractable by a
//! partial-order argument specific to this message model. A wire envelope
//! `(ctx, src, dst, wire_tag)` names both a send queue (filled only by
//! rank `src`) and a receive queue (filled only by rank `dst`), and
//! matching is strictly FIFO head-to-head. Within a *single* instance,
//! every queue therefore has exactly one producer executing in program
//! order: posts to it are confluent, and executing them eagerly in a
//! deterministic closure (`settle`) visits the same reachable states as
//! any interleaving. True nondeterminism arises **only** when two or more
//! instances post into the same side of the same envelope — a *contended*
//! envelope, which exists only under tag-namespace collisions. The
//! explorer branches exclusively over contended posts, with sleep sets
//! (two posts commute unless they hit the same side of the same envelope)
//! and visited-state hashing pruning redundant orders. Shipped plan
//! compositions have zero contended envelopes, so the exhaustive CI sweep
//! degenerates to one deterministic pass per cutpoint.
//!
//! Protocol soundness: an eager send completes at post time, a rendezvous
//! send at match time — eager only *enables more* schedules, never fewer,
//! and matching itself is protocol-independent, so checking every cutpoint
//! covers every mixed protocol assignment the runtime can realize.
//!
//! ## Findings
//!
//! Violations are reported as [`PlanFinding::Mc`] carrying an
//! [`McCounterexample`]: the stable code, a one-line diagnosis, the
//! eager/rendezvous cutoff in force, and the full interleaving (one
//! executed action per line) that exhibits the bug. Codes:
//!
//! * `mc-deadlock` — some interleaving never finishes;
//! * `mc-cross-match` — a message of one instance consumed by another;
//! * `mc-len-mismatch` — a matched pair disagrees on the byte count;
//! * `mc-chunk-gap` — an output hole/misorder/wrong contributor set, or a
//!   misaligned reduction, on some interleaving;
//! * `mc-double-count` — a contribution reduced twice;
//! * `mc-unmatched` — an eager send no receive ever consumes;
//! * `mc-bad-structure` — a read of a never-produced buffer mid-schedule;
//! * `mc-tag-overlap` — static wire-namespace collision (from
//!   [`check_compose`], reported without a trace).

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};

use super::compose::{check_compose, PlanInstance};
use super::lint::{
    check_structure, expected_output, refine, slice_val, val_len, BufVal, PlanFinding, Seg,
};
use super::{BufId, CollPlan, StepOp};

/// Exploration limits for [`model_check`].
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum branch states explored per protocol cutpoint before the
    /// run is declared truncated. Shipped (non-colliding) compositions
    /// explore zero branch states; the budget only bounds deliberately
    /// adversarial inputs.
    pub max_states: usize,
    /// Explicit cutpoints to check instead of the full symbolic sweep of
    /// [`cutpoints`]. `Some(vec![0])` checks only the all-rendezvous
    /// protocol — the deadlock-dominant extreme (an eager cutoff only
    /// completes sends *earlier*, so every deadlock reachable under some
    /// eager cut is reachable under rendezvous, and FIFO matching — hence
    /// every value/coverage property — is cutoff-independent for
    /// collision-free compositions). Used by wide exhaustive sweeps where
    /// the full per-size cutpoint set would multiply cost without adding
    /// single-instance coverage.
    pub cut_override: Option<Vec<usize>>,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            max_states: 1 << 20,
            cut_override: None,
        }
    }
}

/// One executed action of a counterexample interleaving (compact form;
/// rendered to text when a violation is reported).
#[derive(Debug, Clone, Copy)]
struct TraceStep {
    inst: u32,
    rank: u32,
    step: u32,
    kind: TraceKind,
}

#[derive(Debug, Clone, Copy)]
enum TraceKind {
    PostSend { eager: bool },
    PostRecv,
    Match { pi: u32, pr: u32, ps: u32 },
    Exec,
}

/// A model-checker violation: stable code, diagnosis, the protocol cutoff
/// in force, and the full interleaving that exhibits it.
#[derive(Debug, Clone)]
pub struct McCounterexample {
    /// Stable finding code (`mc-*`).
    pub code: &'static str,
    /// One-line diagnosis.
    pub detail: String,
    /// The eager/rendezvous cutoff the schedule was explored under
    /// (sends of fewer bytes complete at post time); `None` for static
    /// composition findings, which hold at every cutoff.
    pub eager_cut: Option<usize>,
    /// The counterexample interleaving, one executed action per line, in
    /// execution order. Empty for static findings.
    pub trace: Vec<String>,
}

impl fmt::Display for McCounterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.detail)?;
        if let Some(cut) = self.eager_cut {
            write!(f, " [eager_cut={cut}]")?;
        }
        if !self.trace.is_empty() {
            write!(
                f,
                "\n  counterexample interleaving ({} action(s)):",
                self.trace.len()
            )?;
            const SHOW: usize = 48;
            if self.trace.len() <= SHOW {
                for line in &self.trace {
                    write!(f, "\n    {line}")?;
                }
            } else {
                for line in &self.trace[..SHOW / 2] {
                    write!(f, "\n    {line}")?;
                }
                write!(f, "\n    … ({} action(s) elided)", self.trace.len() - SHOW)?;
                for line in &self.trace[self.trace.len() - SHOW / 2..] {
                    write!(f, "\n    {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Result of one [`model_check`] run.
#[derive(Debug)]
pub struct McReport {
    /// Violations, at most one per finding code (the first counterexample
    /// found), across all cutpoints.
    pub findings: Vec<PlanFinding>,
    /// Branch states explored across all cutpoints (0 = every cutpoint
    /// ran as a single deterministic pass — no contended envelopes).
    pub states: usize,
    /// Total plan actions executed across all explored schedules.
    pub actions: usize,
    /// The protocol cutpoints checked.
    pub cutpoints: Vec<usize>,
    /// True if some cutpoint exhausted [`McConfig::max_states`]; absence
    /// of findings is then not a proof.
    pub truncated: bool,
}

impl McReport {
    /// No findings and the exploration was exhaustive.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && !self.truncated
    }
}

/// The message-size cutpoints at which protocol behavior can change:
/// `0` (every send rendezvous) plus `s + 1` for each distinct send size
/// `s` (making sends of `≤ s` bytes eager). Checking each covers every
/// eager-limit the runtime can be configured with.
pub fn cutpoints(insts: &[PlanInstance]) -> Vec<usize> {
    let mut sizes: BTreeSet<usize> = BTreeSet::new();
    for inst in insts {
        for plan in &inst.plans {
            for step in &plan.steps {
                if let StepOp::Send { buf, .. } = step.op {
                    sizes.insert(plan.buf_len(buf));
                }
            }
        }
    }
    let mut cuts = vec![0usize];
    cuts.extend(sizes.into_iter().map(|s| s + 1));
    cuts
}

/// Wire envelope: `(ctx, src, dst, wire_tag)`.
type Key = (u64, usize, usize, u64);
/// A posted operation: `(inst, rank, step, bytes, eager)`.
type Post = (usize, usize, usize, usize, bool);

/// Mutable exploration state — cloned at branch points.
#[derive(Clone)]
struct St {
    pcs: Vec<Vec<usize>>,
    done: Vec<Vec<Vec<bool>>>,
    pending: Vec<Vec<usize>>,
    poisoned: Vec<Vec<bool>>,
    vals: Vec<Vec<Vec<Option<BufVal>>>>,
    sends: BTreeMap<Key, VecDeque<Post>>,
    recvs: BTreeMap<Key, VecDeque<Post>>,
    trace: Vec<TraceStep>,
}

struct Mc<'a> {
    insts: &'a [PlanInstance],
    producers: &'a [Vec<Vec<Option<usize>>>],
    /// Flattened `(inst, rank)` schedule agents.
    agents: Vec<(usize, usize)>,
    agent_ids: Vec<Vec<usize>>,
    eager_cut: usize,
    send_contended: BTreeSet<Key>,
    recv_contended: BTreeSet<Key>,
    max_states: usize,
    findings: Vec<PlanFinding>,
    visited: HashSet<u64>,
    states: usize,
    actions: usize,
    truncated: bool,
    stop: bool,
}

impl<'a> Mc<'a> {
    fn new(
        insts: &'a [PlanInstance],
        producers: &'a [Vec<Vec<Option<usize>>>],
        eager_cut: usize,
        max_states: usize,
    ) -> Mc<'a> {
        let mut agents = Vec::new();
        let mut agent_ids = Vec::with_capacity(insts.len());
        for (i, inst) in insts.iter().enumerate() {
            let mut ids = Vec::with_capacity(inst.plans.len());
            for r in 0..inst.plans.len() {
                ids.push(agents.len());
                agents.push((i, r));
            }
            agent_ids.push(ids);
        }
        // An envelope side is contended iff two or more instances post
        // into it — the only source of match-order nondeterminism.
        let mut send_by: BTreeMap<Key, BTreeSet<usize>> = BTreeMap::new();
        let mut recv_by: BTreeMap<Key, BTreeSet<usize>> = BTreeMap::new();
        for (i, inst) in insts.iter().enumerate() {
            for (r, plan) in inst.plans.iter().enumerate() {
                for step in &plan.steps {
                    match step.op {
                        StepOp::Send { peer, tag, .. } => {
                            send_by
                                .entry((inst.ctx, r, peer, inst.wire_tag(tag)))
                                .or_default()
                                .insert(i);
                        }
                        StepOp::Recv { peer, tag, .. } => {
                            recv_by
                                .entry((inst.ctx, peer, r, inst.wire_tag(tag)))
                                .or_default()
                                .insert(i);
                        }
                        _ => {}
                    }
                }
            }
        }
        let contended = |m: BTreeMap<Key, BTreeSet<usize>>| {
            m.into_iter()
                .filter(|(_, s)| s.len() >= 2)
                .map(|(k, _)| k)
                .collect::<BTreeSet<Key>>()
        };
        Mc {
            insts,
            producers,
            agents,
            agent_ids,
            eager_cut,
            send_contended: contended(send_by),
            recv_contended: contended(recv_by),
            max_states,
            findings: Vec::new(),
            visited: HashSet::new(),
            states: 0,
            actions: 0,
            truncated: false,
            stop: false,
        }
    }

    fn initial(&self) -> St {
        St {
            pcs: self
                .insts
                .iter()
                .map(|inst| vec![0; inst.plans.len()])
                .collect(),
            done: self
                .insts
                .iter()
                .map(|inst| {
                    inst.plans
                        .iter()
                        .map(|pl| vec![false; pl.steps.len()])
                        .collect()
                })
                .collect(),
            pending: self
                .insts
                .iter()
                .map(|inst| vec![0; inst.plans.len()])
                .collect(),
            poisoned: self
                .insts
                .iter()
                .map(|inst| vec![false; inst.plans.len()])
                .collect(),
            vals: self
                .insts
                .iter()
                .map(|inst| {
                    let p = inst.plans.len();
                    inst.plans
                        .iter()
                        .map(|pl| {
                            pl.bufs
                                .iter()
                                .map(|b| match b.input_off {
                                    Some(off) => {
                                        let base = pl.input.map(|(o, _)| o).unwrap_or(0);
                                        Some(if b.len == 0 {
                                            Vec::new()
                                        } else {
                                            vec![Seg {
                                                len: b.len,
                                                lo: base + off,
                                                mask: super::lint::RankSet::single(pl.me, p),
                                            }]
                                        })
                                    }
                                    None if b.len == 0 => Some(Vec::new()),
                                    None => None,
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            trace: Vec::new(),
        }
    }

    /// Record a violation (first one wins per cutpoint) and stop this
    /// cutpoint's exploration.
    fn emit(&mut self, st: &St, code: &'static str, detail: String) {
        if self.stop {
            return;
        }
        self.stop = true;
        self.findings.push(PlanFinding::Mc(McCounterexample {
            code,
            detail,
            eager_cut: Some(self.eager_cut),
            trace: self.render_trace(&st.trace),
        }));
    }

    fn short_op(plan: &CollPlan, idx: usize) -> String {
        match &plan.steps[idx].op {
            StepOp::Slack => "slack".to_string(),
            StepOp::Send { peer, buf, tag } => format!(
                "send b{}({}B) -> r{peer} tag {tag}",
                buf.0,
                plan.buf_len(*buf)
            ),
            StepOp::Recv { peer, into, tag } => format!(
                "recv b{}({}B) <- r{peer} tag {tag}",
                into.0,
                plan.buf_len(*into)
            ),
            StepOp::Reduce { a, b, into } => {
                format!("reduce b{} + b{} -> b{}", a.0, b.0, into.0)
            }
            StepOp::Copy { parts, into } => {
                format!("copy {} part(s) -> b{}", parts.len(), into.0)
            }
        }
    }

    fn render_trace(&self, trace: &[TraceStep]) -> Vec<String> {
        trace
            .iter()
            .enumerate()
            .map(|(k, t)| {
                let plan = &self.insts[t.inst as usize].plans[t.rank as usize];
                let desc = Mc::short_op(plan, t.step as usize);
                let body = match t.kind {
                    TraceKind::PostSend { eager } => format!(
                        "post {desc} [{}]",
                        if eager { "eager" } else { "rendezvous" }
                    ),
                    TraceKind::PostRecv => format!("post {desc}"),
                    TraceKind::Match { pi, pr, ps } => {
                        format!("{desc} matched send i{pi} r{pr} s{ps}")
                    }
                    TraceKind::Exec => desc,
                };
                format!("#{k} i{} r{} s{}: {body}", t.inst, t.rank, t.step)
            })
            .collect()
    }

    /// Can `(i, r)`'s step `idx` run now? All explicit deps and all
    /// recv-producers of read buffers must be complete (mirrors the
    /// executor's implicit drain of producing receives).
    fn runnable(&self, st: &St, i: usize, r: usize, idx: usize) -> bool {
        let plan = &self.insts[i].plans[r];
        let step = &plan.steps[idx];
        if step.deps.iter().any(|d| !st.done[i][r][d.0 as usize]) {
            return false;
        }
        let reads: Vec<BufId> = match &step.op {
            StepOp::Slack | StepOp::Recv { .. } => Vec::new(),
            StepOp::Send { buf, .. } => vec![*buf],
            StepOp::Reduce { a, b, .. } => vec![*a, *b],
            StepOp::Copy { parts, .. } => parts.iter().map(|c| c.buf).collect(),
        };
        reads
            .iter()
            .all(|b| match self.producers[i][r][b.0 as usize] {
                Some(ps) if matches!(plan.steps[ps].op, StepOp::Recv { .. }) => st.done[i][r][ps],
                _ => true,
            })
    }

    /// The envelope side a post step targets (`0` send, `1` recv).
    fn side_key(&self, i: usize, r: usize, idx: usize) -> Option<(u8, Key)> {
        let inst = &self.insts[i];
        match inst.plans[r].steps[idx].op {
            StepOp::Send { peer, tag, .. } => Some((0, (inst.ctx, r, peer, inst.wire_tag(tag)))),
            StepOp::Recv { peer, tag, .. } => Some((1, (inst.ctx, peer, r, inst.wire_tag(tag)))),
            _ => None,
        }
    }

    fn is_contended(&self, sk: &(u8, Key)) -> bool {
        if sk.0 == 0 {
            self.send_contended.contains(&sk.1)
        } else {
            self.recv_contended.contains(&sk.1)
        }
    }

    /// Read a buffer's provenance, poisoning the agent if never produced.
    fn val(&mut self, st: &mut St, i: usize, r: usize, b: BufId) -> Option<BufVal> {
        if let Some(v) = st.vals[i][r][b.0 as usize].clone() {
            return Some(v);
        }
        st.poisoned[i][r] = true;
        self.emit(
            st,
            "mc-bad-structure",
            format!(
                "instance #{i} rank {r} reads buffer b{} before it is produced",
                b.0
            ),
        );
        None
    }

    /// Match the heads of both queues of one envelope, if both present.
    /// Returns the two agent ids to re-wake.
    fn try_match(&mut self, st: &mut St, key: Key) -> Option<(usize, usize)> {
        let have_both = st.sends.get(&key).is_some_and(|q| !q.is_empty())
            && st.recvs.get(&key).is_some_and(|q| !q.is_empty());
        if !have_both {
            return None;
        }
        let (si, sr, ss, sbytes, eager) = st.sends.get_mut(&key).and_then(VecDeque::pop_front)?;
        let (ri, rr, rs, rbytes, _) = st.recvs.get_mut(&key).and_then(VecDeque::pop_front)?;
        st.trace.push(TraceStep {
            inst: ri as u32,
            rank: rr as u32,
            step: rs as u32,
            kind: TraceKind::Match {
                pi: si as u32,
                pr: sr as u32,
                ps: ss as u32,
            },
        });
        if si != ri {
            self.emit(
                st,
                "mc-cross-match",
                format!(
                    "message of instance #{si} (ctx {}, seq {}) rank {sr} step s{ss} consumed \
                     by instance #{ri} (seq {}) rank {rr} step s{rs} on wire tag {:#x}: \
                     composed instances are not match-isolated",
                    self.insts[si].ctx, self.insts[si].seq, self.insts[ri].seq, key.3,
                ),
            );
        }
        if sbytes != rbytes {
            self.emit(
                st,
                "mc-len-mismatch",
                format!(
                    "instance #{si} rank {sr} sends {sbytes}B but instance #{ri} rank {rr} \
                     expects {rbytes}B on wire tag {:#x}",
                    key.3
                ),
            );
        }
        let sent_val = match &self.insts[si].plans[sr].steps[ss].op {
            StepOp::Send { buf, .. } => st.vals[si][sr][buf.0 as usize].clone().unwrap_or_default(),
            _ => Vec::new(),
        };
        if let StepOp::Recv { into, .. } = self.insts[ri].plans[rr].steps[rs].op {
            let fitted = if val_len(&sent_val) == rbytes {
                sent_val
            } else {
                slice_val(&sent_val, 0, rbytes)
            };
            st.vals[ri][rr][into.0 as usize] = Some(fitted);
        }
        if !eager {
            st.done[si][sr][ss] = true;
            st.pending[si][sr] -= 1;
        }
        st.done[ri][rr][rs] = true;
        st.pending[ri][rr] -= 1;
        Some((self.agent_ids[si][sr], self.agent_ids[ri][rr]))
    }

    /// Execute step `idx` of `(i, r)` (already known runnable; the pc has
    /// already been advanced). Returns agent ids to re-wake.
    fn execute(&mut self, st: &mut St, i: usize, r: usize, idx: usize) -> Vec<usize> {
        self.actions += 1;
        let op = self.insts[i].plans[r].steps[idx].op.clone();
        let (iu, ru, su) = (i as u32, r as u32, idx as u32);
        let mut wake = Vec::new();
        match op {
            StepOp::Slack => {
                st.done[i][r][idx] = true;
                st.trace.push(TraceStep {
                    inst: iu,
                    rank: ru,
                    step: su,
                    kind: TraceKind::Exec,
                });
            }
            StepOp::Send { peer, buf, tag } => {
                if self.val(st, i, r, buf).is_none() {
                    return wake;
                }
                let bytes = self.insts[i].plans[r].buf_len(buf);
                let eager = bytes < self.eager_cut;
                let key = (self.insts[i].ctx, r, peer, self.insts[i].wire_tag(tag));
                st.trace.push(TraceStep {
                    inst: iu,
                    rank: ru,
                    step: su,
                    kind: TraceKind::PostSend { eager },
                });
                st.sends
                    .entry(key)
                    .or_default()
                    .push_back((i, r, idx, bytes, eager));
                if eager {
                    st.done[i][r][idx] = true;
                } else {
                    st.pending[i][r] += 1;
                }
                if let Some((a, b)) = self.try_match(st, key) {
                    wake.push(a);
                    wake.push(b);
                }
            }
            StepOp::Recv { peer, into, tag } => {
                let bytes = self.insts[i].plans[r].buf_len(into);
                let key = (self.insts[i].ctx, peer, r, self.insts[i].wire_tag(tag));
                st.trace.push(TraceStep {
                    inst: iu,
                    rank: ru,
                    step: su,
                    kind: TraceKind::PostRecv,
                });
                st.recvs
                    .entry(key)
                    .or_default()
                    .push_back((i, r, idx, bytes, false));
                st.pending[i][r] += 1;
                if let Some((a, b)) = self.try_match(st, key) {
                    wake.push(a);
                    wake.push(b);
                }
            }
            StepOp::Reduce { a, b, into } => {
                st.trace.push(TraceStep {
                    inst: iu,
                    rank: ru,
                    step: su,
                    kind: TraceKind::Exec,
                });
                let (Some(va), Some(vb)) = (self.val(st, i, r, a), self.val(st, i, r, b)) else {
                    return wake;
                };
                let (ra, rb) = refine(&va, &vb);
                let mut out = Vec::with_capacity(ra.len());
                for (sa, sb) in ra.iter().zip(rb.iter()) {
                    if sa.lo != sb.lo {
                        self.emit(
                            st,
                            "mc-chunk-gap",
                            format!(
                                "instance #{i} rank {r} step s{idx}: reduction combines \
                                 misaligned ranges: logical {}..{} with {}..{}",
                                sa.lo,
                                sa.lo + sa.len,
                                sb.lo,
                                sb.lo + sb.len
                            ),
                        );
                    }
                    if sa.mask.intersects(&sb.mask) {
                        self.emit(
                            st,
                            "mc-double-count",
                            format!(
                                "instance #{i} rank {r} step s{idx}: logical bytes {}..{} \
                                 reduced over overlapping contributor sets {} and {}",
                                sa.lo,
                                sa.lo + sa.len,
                                sa.mask,
                                sb.mask
                            ),
                        );
                    }
                    out.push(Seg {
                        len: sa.len,
                        lo: sa.lo,
                        mask: sa.mask.union(&sb.mask),
                    });
                }
                st.vals[i][r][into.0 as usize] = Some(out);
                st.done[i][r][idx] = true;
            }
            StepOp::Copy { parts, into } => {
                st.trace.push(TraceStep {
                    inst: iu,
                    rank: ru,
                    step: su,
                    kind: TraceKind::Exec,
                });
                let mut out: BufVal = Vec::new();
                for part in &parts {
                    let Some(v) = self.val(st, i, r, part.buf) else {
                        return wake;
                    };
                    out.extend(slice_val(&v, part.off, part.len));
                }
                st.vals[i][r][into.0 as usize] = Some(out);
                st.done[i][r][idx] = true;
            }
        }
        wake
    }

    /// Deterministic closure: run every agent as far as it can go without
    /// executing a contended post. Confluent, so no branching is needed.
    fn settle(&mut self, st: &mut St) {
        let mut queue: VecDeque<usize> = (0..self.agents.len()).collect();
        let mut queued = vec![true; self.agents.len()];
        while let Some(a) = queue.pop_front() {
            queued[a] = false;
            let (i, r) = self.agents[a];
            loop {
                if self.stop || st.poisoned[i][r] {
                    return;
                }
                let idx = st.pcs[i][r];
                if idx >= self.insts[i].plans[r].steps.len() {
                    break;
                }
                if !self.runnable(st, i, r, idx) {
                    break;
                }
                if let Some(sk) = self.side_key(i, r, idx) {
                    if self.is_contended(&sk) {
                        break; // branch point: the explorer owns this post
                    }
                }
                st.pcs[i][r] = idx + 1;
                for w in self.execute(st, i, r, idx) {
                    if !queued[w] {
                        queued[w] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
    }

    /// Runnable contended posts (the branch alternatives) after a settle.
    fn enabled(&self, st: &St) -> Vec<(usize, usize, (u8, Key))> {
        let mut out = Vec::new();
        for &(i, r) in &self.agents {
            if st.poisoned[i][r] {
                continue;
            }
            let idx = st.pcs[i][r];
            if idx >= self.insts[i].plans[r].steps.len() {
                continue;
            }
            if !self.runnable(st, i, r, idx) {
                continue;
            }
            if let Some(sk) = self.side_key(i, r, idx) {
                if self.is_contended(&sk) {
                    out.push((i, r, sk));
                }
            }
        }
        out
    }

    fn hash_state(&self, st: &St) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        st.pcs.hash(&mut h);
        st.pending.hash(&mut h);
        st.poisoned.hash(&mut h);
        st.done.hash(&mut h);
        for (k, q) in &st.sends {
            k.hash(&mut h);
            q.hash(&mut h);
        }
        0xfeedu16.hash(&mut h);
        for (k, q) in &st.recvs {
            k.hash(&mut h);
            q.hash(&mut h);
        }
        st.vals.hash(&mut h);
        h.finish()
    }

    /// No enabled actions: either everything finished (check outputs) or
    /// some agents can never finish (deadlock).
    fn check_terminal(&mut self, st: &St) {
        if self.stop {
            return;
        }
        let stuck: Vec<(usize, usize)> = self
            .agents
            .iter()
            .copied()
            .filter(|&(i, r)| {
                !st.poisoned[i][r]
                    && (st.pcs[i][r] < self.insts[i].plans[r].steps.len() || st.pending[i][r] > 0)
            })
            .collect();
        if let Some(&(i, r)) = stuck.first() {
            let plan = &self.insts[i].plans[r];
            let what = if st.pcs[i][r] < plan.steps.len() {
                format!(
                    "blocked at step s{} ({})",
                    st.pcs[i][r],
                    Mc::short_op(plan, st.pcs[i][r])
                )
            } else {
                format!(
                    "finished its steps but {} posted operation(s) never complete",
                    st.pending[i][r]
                )
            };
            self.emit(
                st,
                "mc-deadlock",
                format!(
                    "{} agent(s) can never finish; first: instance #{i} rank {r} {what}",
                    stuck.len()
                ),
            );
            return;
        }
        // Everything finished: leftover queue entries are eager sends no
        // receive ever consumed (pending receives would be a deadlock).
        for q in st.sends.values() {
            if let Some(&(si, sr, ss, bytes, _)) = q.front() {
                self.emit(
                    st,
                    "mc-unmatched",
                    format!(
                        "instance #{si} rank {sr} step s{ss}: eager send of {bytes}B is never \
                         received"
                    ),
                );
                return;
            }
        }
        // Output coverage, per instance, against the collective's promise.
        for (i, inst) in self.insts.iter().enumerate() {
            let p = inst.plans.len();
            for (r, plan) in inst.plans.iter().enumerate() {
                let expect = expected_output(plan.kind, p, plan.n, plan.root, r);
                match (&expect, plan.output) {
                    (None, Some(_)) => self.emit(
                        st,
                        "mc-chunk-gap",
                        format!(
                            "instance #{i} rank {r} declares an output this collective does \
                             not give it"
                        ),
                    ),
                    (Some(_), None) => self.emit(
                        st,
                        "mc-chunk-gap",
                        format!(
                            "instance #{i} rank {r} is owed a result but the plan produces none"
                        ),
                    ),
                    (None, None) => {}
                    (Some(want), Some(out)) => {
                        let got = st.vals[i][r][out.0 as usize].clone().unwrap_or_default();
                        if val_len(&got) != val_len(want) {
                            self.emit(
                                st,
                                "mc-chunk-gap",
                                format!(
                                    "instance #{i} rank {r}: output holds {}B but the \
                                     collective promises {}B",
                                    val_len(&got),
                                    val_len(want)
                                ),
                            );
                            continue;
                        }
                        let (rg, rw) = refine(&got, want);
                        let mut pos = 0usize;
                        for (g, w) in rg.iter().zip(rw.iter()) {
                            if g.lo != w.lo {
                                self.emit(
                                    st,
                                    "mc-chunk-gap",
                                    format!(
                                        "instance #{i} rank {r}: output byte {pos} holds \
                                         logical byte {} but should hold {}",
                                        g.lo, w.lo
                                    ),
                                );
                            } else if g.mask != w.mask {
                                self.emit(
                                    st,
                                    "mc-chunk-gap",
                                    format!(
                                        "instance #{i} rank {r}: logical bytes {}..{} reduced \
                                         over {} but should cover {}",
                                        g.lo,
                                        g.lo + g.len,
                                        g.mask,
                                        w.mask
                                    ),
                                );
                            }
                            pos += g.len;
                        }
                    }
                }
                if self.stop {
                    return;
                }
            }
        }
    }

    /// Sleep-set DFS over contended posts. `sleep` holds agents whose
    /// pending action is covered by a sibling branch; an agent wakes only
    /// when a dependent action (same envelope side) executes.
    fn dfs(&mut self, mut st: St, sleep: Vec<(usize, usize)>) {
        self.settle(&mut st);
        if self.stop {
            return;
        }
        let enabled = self.enabled(&st);
        if enabled.is_empty() {
            self.check_terminal(&st);
            return;
        }
        let h = self.hash_state(&st);
        if !self.visited.insert(h) {
            return;
        }
        self.states += 1;
        if self.states > self.max_states {
            self.truncated = true;
            self.stop = true;
            return;
        }
        let mut explored: Vec<(usize, usize, (u8, Key))> = Vec::new();
        for (i, r, sk) in enabled {
            if self.stop {
                return;
            }
            if sleep.contains(&(i, r)) {
                continue;
            }
            // Branch sleep set: everything already covered that commutes
            // with this action (different envelope side).
            let mut ns: Vec<(usize, usize)> = Vec::new();
            for &(si, sr) in &sleep {
                if self.side_key(si, sr, st.pcs[si][sr]) != Some(sk) {
                    ns.push((si, sr));
                }
            }
            for (ei, er, esk) in &explored {
                if *esk != sk {
                    ns.push((*ei, *er));
                }
            }
            let mut st2 = st.clone();
            let idx = st2.pcs[i][r];
            st2.pcs[i][r] = idx + 1;
            self.execute(&mut st2, i, r, idx);
            self.dfs(st2, ns);
            explored.push((i, r, sk));
        }
    }
}

/// Producer step of every buffer, validating single production.
fn producers_of(plans: &[CollPlan]) -> Result<Vec<Vec<Option<usize>>>, Vec<PlanFinding>> {
    let mut producer: Vec<Vec<Option<usize>>> =
        plans.iter().map(|pl| vec![None; pl.bufs.len()]).collect();
    let mut findings = Vec::new();
    for (r, plan) in plans.iter().enumerate() {
        for (i, step) in plan.steps.iter().enumerate() {
            let into = match &step.op {
                StepOp::Recv { into, .. }
                | StepOp::Reduce { into, .. }
                | StepOp::Copy { into, .. } => Some(*into),
                _ => None,
            };
            if let Some(b) = into {
                let slot = &mut producer[r][b.0 as usize];
                if slot.is_some() || plan.bufs[b.0 as usize].input_off.is_some() {
                    findings.push(PlanFinding::BadStructure {
                        rank: r,
                        detail: format!("buffer b{} produced more than once", b.0),
                    });
                } else {
                    *slot = Some(i);
                }
            }
        }
    }
    if findings.is_empty() {
        Ok(producer)
    } else {
        Err(findings)
    }
}

/// Model-check composed plan instances: static tag-namespace disjointness
/// plus exhaustive exploration of match-order and protocol nondeterminism
/// at every cutpoint. At most one finding per code is reported, each with
/// its counterexample interleaving.
pub fn model_check(insts: &[PlanInstance], cfg: &McConfig) -> McReport {
    let mut findings = check_compose(insts);
    let mut producers = Vec::with_capacity(insts.len());
    let mut structural = Vec::new();
    for inst in insts {
        if inst.plans.is_empty() {
            structural.push(PlanFinding::BadStructure {
                rank: 0,
                detail: "empty plan set".to_string(),
            });
            continue;
        }
        structural.extend(check_structure(&inst.plans));
        match producers_of(&inst.plans) {
            Ok(p) => producers.push(p),
            Err(f) => structural.extend(f),
        }
    }
    if !structural.is_empty() {
        findings.extend(structural);
        return McReport {
            findings,
            states: 0,
            actions: 0,
            cutpoints: Vec::new(),
            truncated: false,
        };
    }
    let cuts = match &cfg.cut_override {
        Some(cuts) => cuts.clone(),
        None => cutpoints(insts),
    };
    let mut seen: BTreeSet<&'static str> = findings.iter().map(|f| f.code()).collect();
    let mut states = 0;
    let mut actions = 0;
    let mut truncated = false;
    for &cut in &cuts {
        let mut mc = Mc::new(insts, &producers, cut, cfg.max_states);
        let init = mc.initial();
        mc.dfs(init, Vec::new());
        states += mc.states;
        actions += mc.actions;
        truncated |= mc.truncated;
        for f in mc.findings {
            if seen.insert(f.code()) {
                findings.push(f);
            }
        }
    }
    McReport {
        findings,
        states,
        actions,
        cutpoints: cuts,
        truncated,
    }
}

/// Model-check a single instance (one collective on one communicator).
pub fn model_check_single(plans: &[CollPlan], cfg: &McConfig) -> McReport {
    model_check(&[PlanInstance::new(0, 0, plans.to_vec())], cfg)
}

#[cfg(test)]
mod tests {
    use super::super::builders::build_all;
    use super::super::compose::{dup_instances, seq_instances, PlanInstance};
    use super::super::{CollAlgo, PlanBuilder};
    use super::*;
    use crate::event::CollKind;

    #[test]
    fn builders_are_mc_clean_small() {
        let cfg = McConfig::default();
        for &algo in CollAlgo::all() {
            for p in [1usize, 2, 3, 4, 5, 8] {
                for n in [0usize, 64, 1000] {
                    let root = p.saturating_sub(1);
                    let root = match algo.kind() {
                        CollKind::Allreduce | CollKind::Allgather | CollKind::Barrier => 0,
                        _ => root,
                    };
                    let plans = build_all(algo.kind(), algo, p, n, root);
                    let rep = model_check_single(&plans, &cfg);
                    assert!(
                        rep.clean(),
                        "{algo} p={p} n={n} root={root}: {:?}",
                        rep.findings
                            .iter()
                            .map(|f| f.to_string())
                            .collect::<Vec<_>>()
                    );
                    // No contended envelopes: fully deterministic.
                    assert_eq!(rep.states, 0, "{algo} p={p} n={n}");
                    assert!(!rep.cutpoints.is_empty());
                }
            }
        }
    }

    #[test]
    fn dup_and_seq_compositions_are_isolated() {
        let cfg = McConfig::default();
        let plans = build_all(CollKind::Allreduce, CollAlgo::AllreduceRing, 4, 256, 0);
        for insts in [dup_instances(&plans, 3), seq_instances(&plans, 3)] {
            let rep = model_check(&insts, &cfg);
            assert!(rep.clean(), "{:?}", rep.findings);
            assert_eq!(rep.states, 0);
        }
    }

    #[test]
    fn colliding_namespaces_cross_match() {
        let cfg = McConfig::default();
        let plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, 2, 64, 0);
        let insts = vec![
            PlanInstance::new(0, 0, plans.clone()),
            PlanInstance::new(0, 0, plans),
        ];
        let rep = model_check(&insts, &cfg);
        let codes: Vec<_> = rep.findings.iter().map(|f| f.code()).collect();
        assert!(codes.contains(&"mc-tag-overlap"), "{codes:?}");
        assert!(codes.contains(&"mc-cross-match"), "{codes:?}");
        // The cross-match counterexample carries a rendered interleaving.
        let ce = rep
            .findings
            .iter()
            .find_map(|f| match f {
                PlanFinding::Mc(ce) if ce.code == "mc-cross-match" => Some(ce),
                _ => None,
            })
            .unwrap();
        assert!(!ce.trace.is_empty());
        assert!(rep.states > 0, "collision must force branching");
    }

    #[test]
    fn rendezvous_cycle_is_cut_dependent() {
        // Both ranks: blocking send, then blocking recv. Deadlocks under
        // rendezvous (cut 0); safe when the 8B sends are eager (cut 9).
        let mk = |me: usize| {
            let peer = 1 - me;
            let mut pb = PlanBuilder::new(
                CollKind::Allreduce,
                CollAlgo::AllreduceRecursiveDoubling,
                2,
                me,
                8,
                0,
                Some((0, 8)),
            );
            let mine = pb.input_buf();
            pb.send(peer, 0, mine);
            let theirs = pb.recv(peer, 0, 8);
            let s = pb.reduce(mine, theirs);
            pb.set_output(s);
            pb.finish()
        };
        let plans = vec![mk(0), mk(1)];
        let rep = model_check_single(&plans, &McConfig::default());
        assert_eq!(rep.cutpoints, vec![0, 9]);
        let dl = rep
            .findings
            .iter()
            .find_map(|f| match f {
                PlanFinding::Mc(ce) if ce.code == "mc-deadlock" => Some(ce),
                _ => None,
            })
            .expect("rendezvous deadlock must be found");
        // Caught at the all-rendezvous cutpoint specifically.
        assert_eq!(dl.eager_cut, Some(0));
    }

    #[test]
    fn eager_unmatched_send_is_found() {
        let mut pb0 = PlanBuilder::new(
            CollKind::Bcast,
            CollAlgo::BcastBinomial,
            2,
            0,
            8,
            0,
            Some((0, 8)),
        );
        let b = pb0.input_buf();
        pb0.isend(1, 0, b);
        pb0.set_output(b);
        let mut pb1 = PlanBuilder::new(CollKind::Bcast, CollAlgo::BcastBinomial, 2, 1, 8, 0, None);
        let got = pb1.recv(0, 1, 8); // wrong tag: never matches
        pb1.set_output(got);
        let rep = model_check_single(&[pb0.finish(), pb1.finish()], &McConfig::default());
        let codes: Vec<_> = rep.findings.iter().map(|f| f.code()).collect();
        // Rendezvous: deadlock. Eager: the send completes but is never
        // consumed, and rank 1 still blocks on its recv.
        assert!(codes.contains(&"mc-deadlock"), "{codes:?}");
    }
}
