//! Multi-plan composition: several collective instances in flight at once.
//!
//! The paper's technique posts many nonblocking collectives concurrently —
//! on dup'd communicators (`N_DUP`) or back-to-back on one communicator —
//! and lets their schedules interleave. A [`PlanInstance`] is one such
//! in-flight collective: the per-rank [`CollPlan`]s plus the communicator
//! context and per-communicator sequence number that scope its messages on
//! the wire. Both backends tag every plan message as
//!
//! ```text
//! wire_tag = INTERNAL_BIT | (seq << STEP_TAG_BITS) | step_tag
//! ```
//!
//! so two instances can interfere **only** if their wire-tag namespaces
//! overlap on the same context. [`check_compose`] proves that statically
//! (tag-namespace disjointness); [`super::mc::model_check`] then explores
//! the interleavings to prove match-isolation dynamically — and, when the
//! namespaces do collide, produces the concrete interleaving where one
//! instance steals another's message.

use std::collections::{BTreeMap, BTreeSet};

use super::lint::PlanFinding;
use super::mc::McCounterexample;
use super::{CollPlan, StepOp};

/// Number of low wire-tag bits holding the per-instance step tag.
pub const STEP_TAG_BITS: u32 = 24;
/// High bit marking internal (collective) traffic in both backends' tag
/// namespaces (mirrors `ovcomm_verify::INTERNAL_TAG_BIT`).
pub const INTERNAL_BIT: u64 = 1 << 63;

/// One in-flight collective: the plans of all ranks plus the wire
/// namespace (communicator context, collective sequence number) they run
/// under.
#[derive(Debug, Clone)]
pub struct PlanInstance {
    /// Communicator context id. Dup'd communicators get distinct contexts;
    /// messages never match across contexts.
    pub ctx: u64,
    /// Per-communicator collective sequence number (shifted into the wire
    /// tag so successive collectives on one communicator stay disjoint).
    pub seq: u64,
    /// One plan per communicator rank, indexed by rank.
    pub plans: Vec<CollPlan>,
}

impl PlanInstance {
    /// Wrap `plans` as the instance `(ctx, seq)`.
    pub fn new(ctx: u64, seq: u64, plans: Vec<CollPlan>) -> PlanInstance {
        PlanInstance { ctx, seq, plans }
    }

    /// The wire tag a step tag maps to under this instance's namespace.
    pub fn wire_tag(&self, step_tag: u32) -> u64 {
        INTERNAL_BIT | (self.seq << STEP_TAG_BITS) | u64::from(step_tag)
    }
}

/// The same plan set posted concurrently on `copies` dup'd communicators
/// (distinct contexts, sequence 0) — the paper's `N_DUP` shape.
pub fn dup_instances(plans: &[CollPlan], copies: usize) -> Vec<PlanInstance> {
    (0..copies)
        .map(|i| PlanInstance::new(i as u64, 0, plans.to_vec()))
        .collect()
}

/// The same plan set posted `copies` times back-to-back on **one**
/// communicator (same context, increasing sequence numbers) — the
/// successive-nonblocking-collectives shape.
pub fn seq_instances(plans: &[CollPlan], copies: usize) -> Vec<PlanInstance> {
    (0..copies)
        .map(|i| PlanInstance::new(0, i as u64, plans.to_vec()))
        .collect()
}

fn overlap(code: &'static str, detail: String) -> PlanFinding {
    PlanFinding::Mc(McCounterexample {
        code,
        detail,
        eager_cut: None,
        trace: Vec::new(),
    })
}

/// Statically verify that composed instances cannot interfere on the
/// wire: every step tag fits the 24-bit step-tag field, every sequence
/// number fits its 24-bit field, and no two instances sharing a context
/// use the same `(src, dst, wire_tag)` envelope. Violations are reported
/// as `mc-tag-overlap` findings; an empty result means the instances'
/// message namespaces are provably disjoint.
pub fn check_compose(insts: &[PlanInstance]) -> Vec<PlanFinding> {
    /// Wire envelopes one instance posts into: `(src, dst, wire_tag)`.
    type EnvSet = BTreeSet<(usize, usize, u64)>;
    let mut out = Vec::new();
    // ctx -> [(instance index, envelope set)]
    let mut by_ctx: BTreeMap<u64, Vec<(usize, EnvSet)>> = BTreeMap::new();
    for (ii, inst) in insts.iter().enumerate() {
        if inst.seq >> STEP_TAG_BITS != 0 {
            out.push(overlap(
                "mc-tag-overlap",
                format!(
                    "instance #{ii}: sequence number {} overflows its 24-bit wire-tag field",
                    inst.seq
                ),
            ));
            continue;
        }
        let mut envs = BTreeSet::new();
        for (r, plan) in inst.plans.iter().enumerate() {
            for (si, step) in plan.steps.iter().enumerate() {
                let (env, tag) = match step.op {
                    StepOp::Send { peer, tag, .. } => ((r, peer, inst.wire_tag(tag)), tag),
                    StepOp::Recv { peer, tag, .. } => ((peer, r, inst.wire_tag(tag)), tag),
                    _ => continue,
                };
                if u64::from(tag) >> STEP_TAG_BITS != 0 {
                    out.push(overlap(
                        "mc-tag-overlap",
                        format!(
                            "instance #{ii} rank {r} step s{si}: step tag {tag} overflows the \
                             24-bit step-tag field and corrupts the sequence namespace"
                        ),
                    ));
                }
                envs.insert(env);
            }
        }
        by_ctx.entry(inst.ctx).or_default().push((ii, envs));
    }
    for (ctx, members) in &by_ctx {
        for (a, (ia, ea)) in members.iter().enumerate() {
            for (ib, eb) in &members[a + 1..] {
                if let Some(&(src, dst, tag)) = ea.intersection(eb).next() {
                    let shared = ea.intersection(eb).count();
                    out.push(overlap(
                        "mc-tag-overlap",
                        format!(
                            "instances #{ia} (seq {}) and #{ib} (seq {}) on ctx {ctx} share \
                             {shared} wire envelope(s), e.g. rank {src} -> rank {dst} tag \
                             {:#x} (step tag {}): their messages can cross-match",
                            insts[*ia].seq,
                            insts[*ib].seq,
                            tag,
                            tag & ((1 << STEP_TAG_BITS) - 1),
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::builders::build_all;
    use super::super::CollAlgo;
    use super::*;
    use crate::event::CollKind;

    #[test]
    fn dup_and_seq_instances_are_disjoint() {
        let plans = build_all(CollKind::Allreduce, CollAlgo::AllreduceRing, 4, 256, 0);
        assert!(check_compose(&dup_instances(&plans, 4)).is_empty());
        assert!(check_compose(&seq_instances(&plans, 4)).is_empty());
    }

    #[test]
    fn same_ctx_same_seq_collides() {
        let plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, 4, 64, 0);
        let insts = vec![
            PlanInstance::new(0, 7, plans.clone()),
            PlanInstance::new(0, 7, plans),
        ];
        let f = check_compose(&insts);
        assert!(
            f.iter().any(|x| x.code() == "mc-tag-overlap"),
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oversized_step_tag_is_flagged() {
        let mut plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, 2, 64, 0);
        for plan in &mut plans {
            for step in &mut plan.steps {
                match &mut step.op {
                    StepOp::Send { tag, .. } | StepOp::Recv { tag, .. } => *tag = 1 << 24,
                    _ => {}
                }
            }
        }
        let f = check_compose(&[PlanInstance::new(0, 0, plans)]);
        assert!(f.iter().any(|x| x.code() == "mc-tag-overlap"), "{f:?}");
    }

    #[test]
    fn wire_tag_matches_runtime_scheme() {
        let inst = PlanInstance::new(3, 5, Vec::new());
        assert_eq!(inst.wire_tag(9), (1 << 63) | (5 << 24) | 9);
    }
}
