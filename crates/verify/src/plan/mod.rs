//! The collective schedule IR: `CollPlan`.
//!
//! A [`CollPlan`] is one rank's schedule for one collective instance — a
//! DAG of primitive steps (`Send`, `Recv`, `Reduce`, `Copy`, `Slack`) over
//! byte-range *buffers*, produced by a pure [algorithm builder](builders)
//! and executed by the simulator's shared plan executor. Because plans are
//! plain data built without touching the network, they can be
//! [statically linted](lint) across all ranks before a single message is
//! posted: per-instance send/recv matching, chunk-coverage completeness,
//! and in-plan deadlock freedom.
//!
//! ## Execution contract
//!
//! The executor interprets a plan's steps **in order**. `Send`/`Recv`
//! steps *post* nonblocking operations when reached; every other step runs
//! to completion before the next begins. A step's `deps` name previously
//! posted `Send`/`Recv` steps that must *complete* before the step begins
//! — this is how builders express the blocking structure of the classical
//! algorithms (a blocking send is `Send` + a dep on it from the next
//! step). Steps still outstanding when the plan ends are drained in post
//! order.
//!
//! Buffers are immutable byte strings: produced once (by the local input,
//! a `Recv`, a `Reduce` or a `Copy`), then read any number of times.
//! Offsets follow `chunk_bounds`, the 8-byte-aligned contiguous partition
//! used by every chunked algorithm.

pub mod builders;
pub mod compose;
pub mod lint;
pub mod mc;

use std::fmt;

use crate::event::CollKind;

pub use builders::{build_all, build_plan};
pub use compose::{check_compose, dup_instances, seq_instances, PlanInstance};
pub use lint::{lint_plans, PlanFinding};
pub use mc::{cutpoints, model_check, model_check_single, McConfig, McCounterexample, McReport};

/// Which algorithm a plan encodes. The selector picks one per
/// (collective, message size, communicator size); benches can force one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollAlgo {
    /// Binomial-tree broadcast (short messages).
    BcastBinomial,
    /// Van de Geijn scatter + ring allgather broadcast (long messages).
    BcastScatterAllgather,
    /// Binomial-tree reduction (short messages).
    ReduceBinomial,
    /// Rabenseifner reduce-scatter + binomial gather (long, power-of-two).
    ReduceRabenseifner,
    /// Ring reduce-scatter + direct gather to root (long, any size).
    ReduceRing,
    /// Recursive-doubling allreduce (short messages).
    AllreduceRecursiveDoubling,
    /// Reduce-scatter + ring allgather allreduce (long, power-of-two).
    AllreduceRsag,
    /// Ring allreduce (long, any communicator size).
    AllreduceRing,
    /// Binomial-tree gather (short messages).
    GatherBinomial,
    /// Linear gather: every rank sends its chunk straight to the root,
    /// which drains them concurrently (long messages).
    GatherLinear,
    /// Range-halving scatter tree.
    ScatterTree,
    /// Ring allgather.
    AllgatherRing,
    /// Dissemination barrier.
    BarrierDissemination,
}

impl CollAlgo {
    /// Every algorithm, in a stable order (for sweeps).
    pub fn all() -> &'static [CollAlgo] {
        &[
            CollAlgo::BcastBinomial,
            CollAlgo::BcastScatterAllgather,
            CollAlgo::ReduceBinomial,
            CollAlgo::ReduceRabenseifner,
            CollAlgo::ReduceRing,
            CollAlgo::AllreduceRecursiveDoubling,
            CollAlgo::AllreduceRsag,
            CollAlgo::AllreduceRing,
            CollAlgo::GatherBinomial,
            CollAlgo::GatherLinear,
            CollAlgo::ScatterTree,
            CollAlgo::AllgatherRing,
            CollAlgo::BarrierDissemination,
        ]
    }

    /// The collective this algorithm implements.
    pub fn kind(&self) -> CollKind {
        match self {
            CollAlgo::BcastBinomial | CollAlgo::BcastScatterAllgather => CollKind::Bcast,
            CollAlgo::ReduceBinomial | CollAlgo::ReduceRabenseifner | CollAlgo::ReduceRing => {
                CollKind::Reduce
            }
            CollAlgo::AllreduceRecursiveDoubling
            | CollAlgo::AllreduceRsag
            | CollAlgo::AllreduceRing => CollKind::Allreduce,
            CollAlgo::GatherBinomial | CollAlgo::GatherLinear => CollKind::Gather,
            CollAlgo::ScatterTree => CollKind::Scatter,
            CollAlgo::AllgatherRing => CollKind::Allgather,
            CollAlgo::BarrierDissemination => CollKind::Barrier,
        }
    }

    /// The algorithms implementing `kind`, in sweep order.
    pub fn for_kind(kind: CollKind) -> Vec<CollAlgo> {
        CollAlgo::all()
            .iter()
            .copied()
            .filter(|a| a.kind() == kind)
            .collect()
    }

    /// Whether the algorithm can run on a `p`-rank communicator. All
    /// current algorithms handle any `p ≥ 1` (the recursive-halving cores
    /// fold non-power-of-two surplus ranks in and out); the hook exists so
    /// selectors never have to special-case future restricted algorithms.
    pub fn supports(&self, p: usize) -> bool {
        p >= 1
    }

    /// Short algorithm name, unique within one collective (the
    /// `--coll-select <coll>:<algo>` spelling).
    pub fn short(&self) -> &'static str {
        match self {
            CollAlgo::BcastBinomial | CollAlgo::ReduceBinomial | CollAlgo::GatherBinomial => {
                "binomial"
            }
            CollAlgo::BcastScatterAllgather => "scatter-allgather",
            CollAlgo::ReduceRabenseifner => "rabenseifner",
            CollAlgo::ReduceRing | CollAlgo::AllreduceRing | CollAlgo::AllgatherRing => "ring",
            CollAlgo::AllreduceRecursiveDoubling => "recursive-doubling",
            CollAlgo::AllreduceRsag => "rsag",
            CollAlgo::GatherLinear => "linear",
            CollAlgo::ScatterTree => "tree",
            CollAlgo::BarrierDissemination => "dissemination",
        }
    }

    /// Resolve an algorithm from its [`CollAlgo::short`] name within a
    /// collective.
    pub fn parse_for(kind: CollKind, name: &str) -> Option<CollAlgo> {
        CollAlgo::for_kind(kind).into_iter().find(|a| {
            a.short() == name
                // `rdbl` and `vdg` are accepted shorthands.
                || (name == "rdbl" && *a == CollAlgo::AllreduceRecursiveDoubling)
                || (name == "vdg" && *a == CollAlgo::BcastScatterAllgather)
        })
    }
}

/// Lowercase collective name used in selector specs and plan dumps
/// (`bcast`, `reduce`, …).
pub fn kind_short(kind: CollKind) -> &'static str {
    match kind {
        CollKind::Bcast => "bcast",
        CollKind::Reduce => "reduce",
        CollKind::Allreduce => "allreduce",
        CollKind::Barrier => "barrier",
        CollKind::Scatter => "scatter",
        CollKind::Gather => "gather",
        CollKind::Allgather => "allgather",
        CollKind::Dup => "dup",
        CollKind::Split => "split",
    }
}

/// Resolve a collective from its [`kind_short`] name.
pub fn parse_kind(name: &str) -> Option<CollKind> {
    [
        CollKind::Bcast,
        CollKind::Reduce,
        CollKind::Allreduce,
        CollKind::Barrier,
        CollKind::Scatter,
        CollKind::Gather,
        CollKind::Allgather,
    ]
    .into_iter()
    .find(|&k| kind_short(k) == name)
}

impl fmt::Display for CollAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", kind_short(self.kind()), self.short())
    }
}

/// Index of a buffer within one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId(pub u32);

/// Index of a step within one plan (steps execute in index order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StepId(pub u32);

/// One immutable byte buffer of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buf {
    /// Byte length.
    pub len: usize,
    /// `Some(off)` if the buffer is the byte range `off..off+len` of this
    /// rank's local contribution; `None` for buffers produced by steps (or
    /// the empty literal).
    pub input_off: Option<usize>,
}

/// One source range of a [`StepOp::Copy`] assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyPart {
    /// Source buffer.
    pub buf: BufId,
    /// Start offset within the source.
    pub off: usize,
    /// Bytes taken.
    pub len: usize,
}

/// A primitive plan step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOp {
    /// Charge one round of per-round software slack.
    Slack,
    /// Post a nonblocking send of `buf` to communicator index `peer`,
    /// tagged with the per-instance step tag `tag`.
    Send {
        /// Destination communicator index.
        peer: usize,
        /// Payload buffer.
        buf: BufId,
        /// Step tag (combined with the instance sequence number on the wire).
        tag: u32,
    },
    /// Post a nonblocking receive from communicator index `peer` into
    /// `into` (whose `len` is the expected byte count).
    Recv {
        /// Source communicator index.
        peer: usize,
        /// Destination buffer.
        into: BufId,
        /// Step tag.
        tag: u32,
    },
    /// Element-wise `f64` sum of two equal-length buffers into `into`,
    /// charged through the rank's shared reduction-CPU resource.
    Reduce {
        /// Left operand.
        a: BufId,
        /// Right operand.
        b: BufId,
        /// Result buffer.
        into: BufId,
    },
    /// Assemble `into` by concatenating byte ranges of other buffers
    /// (zero modeled time; a single whole-buffer part is a free view).
    Copy {
        /// Source ranges, in output order.
        parts: Vec<CopyPart>,
        /// Result buffer.
        into: BufId,
    },
}

/// A step plus the completions it must wait for before beginning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// What the step does.
    pub op: StepOp,
    /// Earlier `Send`/`Recv` steps that must complete first, in wait order.
    pub deps: Vec<StepId>,
}

/// One rank's schedule for one collective instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollPlan {
    /// Which collective.
    pub kind: CollKind,
    /// Which algorithm produced the plan.
    pub algo: CollAlgo,
    /// Communicator size.
    pub p: usize,
    /// This rank's communicator index.
    pub me: usize,
    /// Total logical payload size in bytes.
    pub n: usize,
    /// Communicator-relative root (0 for rootless collectives).
    pub root: usize,
    /// Logical byte range `(offset, len)` of this rank's input
    /// contribution within the collective's `n`-byte vector (`None` when
    /// the rank contributes nothing, e.g. non-root bcast ranks).
    pub input: Option<(usize, usize)>,
    /// All buffers.
    pub bufs: Vec<Buf>,
    /// All steps, in execution order.
    pub steps: Vec<Step>,
    /// The buffer holding this rank's result (`None` when the rank
    /// produces no output, e.g. non-root reduce ranks or barriers).
    pub output: Option<BufId>,
}

impl CollPlan {
    /// Byte length of a buffer.
    pub fn buf_len(&self, b: BufId) -> usize {
        self.bufs[b.0 as usize].len
    }

    /// Number of `Send`/`Recv` steps (the plan's message count).
    pub fn messages(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Send { .. } | StepOp::Recv { .. }))
            .count()
    }

    /// Render the plan as a readable listing (one line per step), used by
    /// `docs/coll-plans.md` and debugging.
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        // Infallible: `write!` to a String cannot fail.
        let _ = writeln!(
            out,
            "plan {} p={} me={} n={} root={} input={:?} output={:?}",
            self.algo, self.p, self.me, self.n, self.root, self.input, self.output,
        );
        for (i, s) in self.steps.iter().enumerate() {
            let _ = write!(out, "  s{i}: ");
            match &s.op {
                StepOp::Slack => {
                    let _ = write!(out, "slack");
                }
                StepOp::Send { peer, buf, tag } => {
                    let _ = write!(
                        out,
                        "send b{}({}B) -> rank {peer} tag {tag}",
                        buf.0,
                        self.buf_len(*buf)
                    );
                }
                StepOp::Recv { peer, into, tag } => {
                    let _ = write!(
                        out,
                        "recv b{}({}B) <- rank {peer} tag {tag}",
                        into.0,
                        self.buf_len(*into)
                    );
                }
                StepOp::Reduce { a, b, into } => {
                    let _ = write!(
                        out,
                        "reduce b{} + b{} -> b{}({}B)",
                        a.0,
                        b.0,
                        into.0,
                        self.buf_len(*into)
                    );
                }
                StepOp::Copy { parts, into } => {
                    let _ = write!(out, "copy [");
                    for (k, part) in parts.iter().enumerate() {
                        if k > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(
                            out,
                            "b{}[{}..{}]",
                            part.buf.0,
                            part.off,
                            part.off + part.len
                        );
                    }
                    let _ = write!(out, "] -> b{}({}B)", into.0, self.buf_len(*into));
                }
            }
            if !s.deps.is_empty() {
                let _ = write!(out, "  after [");
                for (k, d) in s.deps.iter().enumerate() {
                    if k > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "s{}", d.0);
                }
                let _ = write!(out, "]");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Incremental [`CollPlan`] construction with blocking-call emulation.
///
/// Builders write algorithms in the same shape as classical blocking MPI
/// code; the builder turns blocking calls into posted steps plus a
/// *fence*: the step ids of pending blocking operations, attached as
/// `deps` of the next step pushed (and drained by the executor's final
/// wait if the plan ends first). This reproduces the virtual-time behavior
/// of the original hand-written blocking implementations exactly.
#[derive(Debug)]
pub struct PlanBuilder {
    plan: CollPlan,
    fence: Vec<StepId>,
}

impl PlanBuilder {
    /// Start a plan. `input` is the logical byte range this rank
    /// contributes (see [`CollPlan::input`]).
    pub fn new(
        kind: CollKind,
        algo: CollAlgo,
        p: usize,
        me: usize,
        n: usize,
        root: usize,
        input: Option<(usize, usize)>,
    ) -> PlanBuilder {
        assert!(p >= 1 && me < p && root < p, "bad plan shape");
        PlanBuilder {
            plan: CollPlan {
                kind,
                algo,
                p,
                me,
                n,
                root,
                input,
                bufs: Vec::new(),
                steps: Vec::new(),
                output: None,
            },
            fence: Vec::new(),
        }
    }

    /// Communicator size.
    pub fn p(&self) -> usize {
        self.plan.p
    }

    /// This rank's communicator index.
    pub fn me(&self) -> usize {
        self.plan.me
    }

    /// Total logical payload size in bytes.
    pub fn n(&self) -> usize {
        self.plan.n
    }

    /// Byte length of a buffer.
    pub fn len_of(&self, b: BufId) -> usize {
        self.plan.buf_len(b)
    }

    fn add_buf(&mut self, len: usize, input_off: Option<usize>) -> BufId {
        let id = BufId(self.plan.bufs.len() as u32);
        self.plan.bufs.push(Buf { len, input_off });
        id
    }

    fn push(&mut self, op: StepOp) -> StepId {
        let id = StepId(self.plan.steps.len() as u32);
        let deps = std::mem::take(&mut self.fence);
        self.plan.steps.push(Step { op, deps });
        id
    }

    /// The whole local contribution as a buffer. Panics if this rank has
    /// no input.
    pub fn input_buf(&mut self) -> BufId {
        let (_, len) = match self.plan.input {
            Some(r) => r,
            None => panic!("plan rank {} has no input", self.plan.me),
        };
        self.add_buf(len, Some(0))
    }

    /// The byte range `off..off+len` of the local contribution.
    pub fn input_slice(&mut self, off: usize, len: usize) -> BufId {
        let (_, total) = match self.plan.input {
            Some(r) => r,
            None => panic!("plan rank {} has no input", self.plan.me),
        };
        assert!(off + len <= total, "input slice out of range");
        self.add_buf(len, Some(off))
    }

    /// A zero-length literal buffer (barrier tokens).
    pub fn empty(&mut self) -> BufId {
        self.add_buf(0, None)
    }

    /// Charge one round of software slack.
    pub fn slack(&mut self) {
        self.push(StepOp::Slack);
    }

    /// Post a nonblocking send (completion not yet awaited).
    pub fn isend(&mut self, dst: usize, tag: u32, buf: BufId) -> StepId {
        assert!(dst < self.plan.p, "send peer out of range");
        self.push(StepOp::Send {
            peer: dst,
            buf,
            tag,
        })
    }

    /// Post a nonblocking receive of `len` bytes (completion not yet
    /// awaited); returns the step and the destination buffer.
    pub fn irecv(&mut self, src: usize, tag: u32, len: usize) -> (StepId, BufId) {
        assert!(src < self.plan.p, "recv peer out of range");
        let into = self.add_buf(len, None);
        let id = self.push(StepOp::Recv {
            peer: src,
            into,
            tag,
        });
        (id, into)
    }

    /// Require `step`'s completion before the next pushed step — the
    /// waitall idiom for draining earlier `isend`/`irecv` posts.
    pub fn fence_on(&mut self, step: StepId) {
        self.fence.push(step);
    }

    /// Blocking send: posted now, completion fenced before the next step.
    pub fn send(&mut self, dst: usize, tag: u32, buf: BufId) {
        let s = self.isend(dst, tag, buf);
        self.fence.push(s);
    }

    /// Blocking receive: posted now, completion fenced before the next
    /// step; returns the destination buffer.
    pub fn recv(&mut self, src: usize, tag: u32, len: usize) -> BufId {
        let (r, buf) = self.irecv(src, tag, len);
        self.fence.push(r);
        buf
    }

    /// Concurrent send-to/receive-from (possibly different peers) — the
    /// pairwise-exchange building block. The receive is posted first, as
    /// in the classical implementations; both completions are fenced
    /// (send first) before the next step.
    pub fn exchange(
        &mut self,
        send_to: usize,
        recv_from: usize,
        tag: u32,
        buf: BufId,
        recv_len: usize,
    ) -> BufId {
        let (r, rbuf) = self.irecv(recv_from, tag, recv_len);
        let s = self.isend(send_to, tag, buf);
        self.fence.push(s);
        self.fence.push(r);
        rbuf
    }

    /// Element-wise `f64` sum of two equal-length buffers.
    pub fn reduce(&mut self, a: BufId, b: BufId) -> BufId {
        let (la, lb) = (self.len_of(a), self.len_of(b));
        assert_eq!(la, lb, "reduce of unequal buffers ({la} vs {lb})");
        let into = self.add_buf(la, None);
        self.push(StepOp::Reduce { a, b, into });
        into
    }

    /// Concatenate whole buffers into a new one.
    pub fn concat(&mut self, parts: &[BufId]) -> BufId {
        assert!(!parts.is_empty(), "concat of no parts");
        let cp: Vec<CopyPart> = parts
            .iter()
            .map(|&b| CopyPart {
                buf: b,
                off: 0,
                len: self.len_of(b),
            })
            .collect();
        let total = cp.iter().map(|c| c.len).sum();
        let into = self.add_buf(total, None);
        self.push(StepOp::Copy { parts: cp, into });
        into
    }

    /// The byte range `off..off+len` of `buf` as a new buffer (zero-copy
    /// view at execution time).
    pub fn slice(&mut self, buf: BufId, off: usize, len: usize) -> BufId {
        assert!(off + len <= self.len_of(buf), "slice out of range");
        let into = self.add_buf(len, None);
        self.push(StepOp::Copy {
            parts: vec![CopyPart { buf, off, len }],
            into,
        });
        into
    }

    /// Split `buf` at byte `at`: `(buf[..at], buf[at..])`.
    pub fn split_at(&mut self, buf: BufId, at: usize) -> (BufId, BufId) {
        let len = self.len_of(buf);
        assert!(at <= len, "split_at {at} beyond length {len}");
        let lo = self.slice(buf, 0, at);
        let hi = self.slice(buf, at, len - at);
        (lo, hi)
    }

    /// Declare this rank's result buffer.
    pub fn set_output(&mut self, buf: BufId) {
        self.plan.output = Some(buf);
    }

    /// Finish. Pending fenced completions are left to the executor's final
    /// drain (equivalent to waiting them at the end, which is what the
    /// classical blocking code did).
    pub fn finish(self) -> CollPlan {
        self.plan
    }
}

/// Contiguous, 8-byte-aligned partition of `n` bytes into `parts` chunks:
/// returns `parts + 1` offsets (monotone, first 0, last `n`). All chunks
/// are multiples of 8 except possibly the last, so `f64` data never splits
/// mid-element. This is the partition every chunked collective uses.
pub fn chunk_bounds(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts >= 1);
    let quantum = 8usize;
    let elems = n / quantum; // full 8-byte elements
    let rem = n - elems * quantum; // trailing ragged bytes go to the last chunk
    let base = elems / parts;
    let extra = elems % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let mut off = 0;
    for i in 0..parts {
        let e = base + usize::from(i < extra);
        off += e * quantum;
        bounds.push(off);
    }
    if let Some(last) = bounds.last_mut() {
        *last += rem;
    }
    debug_assert_eq!(bounds.last().copied(), Some(n));
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partitions_exactly() {
        let b = chunk_bounds(100, 4);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&100));
        assert_eq!(b.len(), 5);
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All but the last boundary 8-aligned.
        for &x in &b[..b.len() - 1] {
            assert_eq!(x % 8, 0);
        }
    }

    #[test]
    fn chunk_bounds_more_parts_than_elements() {
        assert_eq!(chunk_bounds(16, 5), vec![0, 8, 16, 16, 16, 16]);
    }

    #[test]
    fn chunk_bounds_zero_bytes() {
        assert_eq!(chunk_bounds(0, 3), vec![0, 0, 0, 0]);
    }

    #[test]
    fn chunk_bounds_single_part() {
        assert_eq!(chunk_bounds(24, 1), vec![0, 24]);
    }

    #[test]
    fn builder_fences_blocking_ops() {
        let mut pb = PlanBuilder::new(
            CollKind::Bcast,
            CollAlgo::BcastBinomial,
            2,
            0,
            8,
            0,
            Some((0, 8)),
        );
        let b = pb.input_buf();
        pb.send(1, 0, b);
        pb.slack();
        let plan = pb.finish();
        // The slack after a blocking send waits on it.
        assert_eq!(plan.steps[1].deps, vec![StepId(0)]);
    }

    #[test]
    fn exchange_posts_recv_before_send_and_fences_both() {
        let mut pb = PlanBuilder::new(
            CollKind::Barrier,
            CollAlgo::BarrierDissemination,
            2,
            0,
            0,
            0,
            None,
        );
        let e = pb.empty();
        let _ = pb.exchange(1, 1, 5, e, 0);
        pb.slack();
        let plan = pb.finish();
        assert!(matches!(plan.steps[0].op, StepOp::Recv { .. }));
        assert!(matches!(plan.steps[1].op, StepOp::Send { .. }));
        // Send waited before recv, matching the classical exchange.
        assert_eq!(plan.steps[2].deps, vec![StepId(1), StepId(0)]);
    }

    #[test]
    fn algo_names_roundtrip() {
        for &a in CollAlgo::all() {
            assert_eq!(CollAlgo::parse_for(a.kind(), a.short()), Some(a));
        }
        assert_eq!(
            CollAlgo::parse_for(CollKind::Allreduce, "rdbl"),
            Some(CollAlgo::AllreduceRecursiveDoubling)
        );
        assert_eq!(CollAlgo::parse_for(CollKind::Bcast, "ring"), None);
    }

    #[test]
    fn dump_is_readable() {
        let plans = builders::build_all(CollKind::Bcast, CollAlgo::BcastBinomial, 4, 64, 0);
        let d = plans[0].dump();
        assert!(d.contains("send"), "{d}");
        assert!(d.contains("bcast.binomial"), "{d}");
    }
}
