//! Structured deadlock diagnosis: who is blocked on what, and the wait-for
//! cycle among ranks.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::event::{AgentId, Site};

/// What one blocked agent was waiting for.
#[derive(Debug, Clone)]
pub struct PendingOp {
    /// Human-readable operation, e.g. `MPI_Irecv(from rank 1, tag=7) on comm 0`.
    pub op: String,
    /// World ranks whose action would complete this operation.
    pub peers: Vec<u32>,
    /// Post site of the operation.
    pub site: Option<Site>,
}

/// One agent that was parked when the engine declared deadlock.
#[derive(Debug, Clone)]
pub struct BlockedAgent {
    /// Engine actor id.
    pub agent: AgentId,
    /// World rank the agent acts for.
    pub rank: u32,
    /// Is this a nonblocking-collective progress actor (vs. the rank's own
    /// thread)?
    pub is_op_agent: bool,
    /// What it was waiting for, when known.
    pub pending: Option<PendingOp>,
}

/// The full diagnosis attached to `SimError::Deadlock`.
#[derive(Debug, Clone, Default)]
pub struct DeadlockReport {
    /// Every agent parked at deadlock time, sorted by (rank, agent id).
    pub blocked: Vec<BlockedAgent>,
    /// A wait-for cycle among world ranks, if one was found (each rank
    /// waits on the next; the last waits on the first).
    pub cycle: Vec<u32>,
}

impl DeadlockReport {
    /// Report with no per-operation detail (verification was off).
    pub fn unknown(blocked: &[(AgentId, u32)]) -> DeadlockReport {
        let mut b: Vec<BlockedAgent> = blocked
            .iter()
            .map(|&(agent, rank)| BlockedAgent {
                agent,
                rank,
                is_op_agent: agent & 0x8000_0000 != 0,
                pending: None,
            })
            .collect();
        b.sort_by_key(|x| (x.rank, x.agent));
        DeadlockReport {
            blocked: b,
            cycle: Vec::new(),
        }
    }

    /// Ranks appearing in the blocked set (sorted, deduplicated).
    pub fn blocked_ranks(&self) -> Vec<u32> {
        let s: BTreeSet<u32> = self.blocked.iter().map(|b| b.rank).collect();
        s.into_iter().collect()
    }

    /// Extract a wait-for cycle from the rank-level graph implied by the
    /// blocked agents' pending peers, and store it in `self.cycle`.
    pub(crate) fn find_cycle(&mut self) {
        let blocked_ranks: BTreeSet<u32> = self.blocked.iter().map(|b| b.rank).collect();
        let mut succ: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for b in &self.blocked {
            let entry = succ.entry(b.rank).or_default();
            if let Some(p) = &b.pending {
                for &peer in &p.peers {
                    if peer != b.rank && blocked_ranks.contains(&peer) {
                        entry.insert(peer);
                    }
                }
            }
        }
        // Iterative DFS with coloring; return the first cycle found.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<u32, Color> = succ.keys().map(|&r| (r, Color::White)).collect();
        for &start in succ.keys() {
            if color.get(&start) != Some(&Color::White) {
                continue;
            }
            let mut path: Vec<u32> = Vec::new();
            // (node, next successor index)
            let mut stack: Vec<(u32, Vec<u32>)> = vec![(
                start,
                succ.get(&start)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            )];
            color.insert(start, Color::Gray);
            path.push(start);
            while let Some((node, todo)) = stack.last_mut() {
                match todo.pop() {
                    Some(next) => match color.get(&next).copied().unwrap_or(Color::Black) {
                        Color::Gray => {
                            // Found a cycle: slice the path from `next`.
                            if let Some(pos) = path.iter().position(|&r| r == next) {
                                self.cycle = path[pos..].to_vec();
                                return;
                            }
                        }
                        Color::White => {
                            color.insert(next, Color::Gray);
                            path.push(next);
                            let succs = succ
                                .get(&next)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default();
                            stack.push((next, succs));
                        }
                        Color::Black => {}
                    },
                    None => {
                        color.insert(*node, Color::Black);
                        path.pop();
                        stack.pop();
                    }
                }
            }
        }
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation deadlocked: {} agent(s) blocked on {} rank(s)",
            self.blocked.len(),
            self.blocked_ranks().len()
        )?;
        if !self.cycle.is_empty() {
            write!(f, "\n  wait-for cycle: ")?;
            for r in &self.cycle {
                write!(f, "rank {r} -> ")?;
            }
            if let Some(first) = self.cycle.first() {
                write!(f, "rank {first}")?;
            }
        }
        for b in &self.blocked {
            let who = if b.is_op_agent {
                format!("rank {} (progress actor {:#x})", b.rank, b.agent)
            } else {
                format!("rank {}", b.rank)
            };
            match &b.pending {
                Some(p) => {
                    write!(f, "\n  {who}: blocked in {}", p.op)?;
                    if let Some(s) = p.site {
                        write!(f, ", posted at {}:{}", s.file(), s.line())?;
                    }
                }
                None => write!(f, "\n  {who}: blocked (operation unknown)")?,
            }
        }
        Ok(())
    }
}
