//! `CollAlgo::supports` honesty: for every algorithm and every claimed
//! communicator size, building the plans must succeed (no panics) and
//! the result must pass the model checker — or `supports(p)` must
//! return false.
//!
//! The full p ∈ 1..=256 sweep with model checking is exhaustive but
//! expensive in debug builds, so it is `#[ignore]`d here and run in
//! release by the CI model-check job (`algo_sweep --mc-supports
//! --fail-on-lint`, which performs exactly this loop). The non-ignored
//! tests keep a dense low-p model-checked core plus build/lint coverage
//! of the entire range in the tier-1 suite.

use ovcomm_verify::plan::{build_all, lint_plans, model_check_single, CollAlgo, McConfig};
use ovcomm_verify::CollKind;

/// Rootless collectives are built with root 0 by convention.
fn root_for(algo: CollAlgo, p: usize) -> usize {
    match algo.kind() {
        CollKind::Allreduce | CollKind::Allgather | CollKind::Barrier => 0,
        _ => p.saturating_sub(1),
    }
}

/// All-rendezvous cutpoint only: dominant for deadlocks, and matching is
/// cutoff-independent (see `McConfig::cut_override`). Keeps the dense
/// sweeps affordable in debug builds.
fn rendezvous_cfg() -> McConfig {
    McConfig {
        cut_override: Some(vec![0]),
        ..McConfig::default()
    }
}

fn check_one(algo: CollAlgo, p: usize, n: usize, mc: bool) {
    let root = root_for(algo, p);
    let plans = build_all(algo.kind(), algo, p, n, root);
    assert_eq!(plans.len(), p, "{algo} p={p}: wrong plan count");
    let lint = lint_plans(&plans);
    assert!(lint.is_empty(), "{algo} p={p} n={n}: lint {lint:?}");
    if mc {
        let rep = model_check_single(&plans, &rendezvous_cfg());
        assert!(rep.clean(), "{algo} p={p} n={n}: {:?}", rep.findings);
    }
}

/// Every supported p in a dense low range builds and model-checks clean.
#[test]
fn supported_small_p_all_model_check_clean() {
    let top = if cfg!(miri) { 5 } else { 20 };
    for &algo in CollAlgo::all() {
        for p in 1..=top {
            if !algo.supports(p) {
                continue;
            }
            check_one(algo, p, 96, true);
        }
    }
}

/// The rest of the 1..=256 range builds without panicking; lint (full
/// value-flow analysis) is sampled at power-of-two boundaries where the
/// recursive builders change shape. Full model checking of every large
/// p runs in the release CI sweep (`algo_sweep --mc-supports`).
#[test]
#[cfg_attr(miri, ignore = "builds 256-rank plans; covered by small-p test")]
fn supported_large_p_build_and_lint_clean() {
    let lint_at = [31usize, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256];
    for &algo in CollAlgo::all() {
        for p in 21..=256usize {
            if !algo.supports(p) {
                continue;
            }
            if lint_at.contains(&p) {
                check_one(algo, p, 96, false);
            } else {
                let root = root_for(algo, p);
                let plans = build_all(algo.kind(), algo, p, 96, root);
                assert_eq!(plans.len(), p, "{algo} p={p}: wrong plan count");
            }
        }
    }
}

/// The exhaustive satellite: every algorithm × every p ∈ 1..=256 either
/// is unsupported or builds and passes the model checker. Run with
/// `cargo test -p ovcomm-verify --release -- --ignored supports_full`.
#[test]
#[ignore = "exhaustive; run in release (CI: algo_sweep --mc-supports)"]
fn supports_full_range_model_checks_clean() {
    for &algo in CollAlgo::all() {
        for p in 1..=256usize {
            if !algo.supports(p) {
                continue;
            }
            check_one(algo, p, 1024, true);
        }
    }
}
