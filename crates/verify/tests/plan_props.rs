//! Property tests for the plan static-analysis stack: lint, composition,
//! and the model checker. These run under Miri in CI (the job covers
//! `-p ovcomm-verify`), so case counts drop sharply there — the point
//! under Miri is UB detection on the exploration machinery, not coverage.

use proptest::prelude::*;

use ovcomm_verify::plan::{
    build_all, check_compose, cutpoints, dup_instances, lint_plans, model_check,
    model_check_single, seq_instances, CollAlgo, McConfig, PlanInstance,
};

fn algo_strategy() -> impl Strategy<Value = CollAlgo> {
    prop::sample::select(CollAlgo::all().to_vec())
}

const CASES: u32 = if cfg!(miri) { 3 } else { 32 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Every shipped builder, on a random shape, is lint-clean and
    /// model-check-clean at every protocol cutpoint.
    #[test]
    fn builders_are_clean_on_random_shapes(
        algo in algo_strategy(),
        p in 1usize..8,
        n in prop::sample::select(vec![0usize, 8, 64, 1000]),
        root_pick in 0usize..64,
    ) {
        // Miri is ~2 orders of magnitude slower: keep shapes tiny there.
        let (p, n) = if cfg!(miri) { (p.min(3), n.min(64)) } else { (p, n) };
        let root = match algo.kind() {
            ovcomm_verify::CollKind::Allreduce
            | ovcomm_verify::CollKind::Allgather
            | ovcomm_verify::CollKind::Barrier => 0,
            _ => root_pick % p,
        };
        let plans = build_all(algo.kind(), algo, p, n, root);
        prop_assert!(lint_plans(&plans).is_empty(), "{algo} p={p} n={n} root={root} lint");
        let rep = model_check_single(&plans, &McConfig::default());
        prop_assert!(rep.clean(), "{algo} p={p} n={n} root={root}: {:?}", rep.findings);
    }

    /// Cutpoints are always sorted, deduplicated, and start at 0 (the
    /// all-rendezvous protocol).
    #[test]
    fn cutpoints_are_canonical(
        algo in algo_strategy(),
        p in 1usize..8,
        n in prop::sample::select(vec![0usize, 8, 64, 1000]),
    ) {
        let plans = build_all(algo.kind(), algo, p, n, 0);
        let inst = PlanInstance::new(0, 0, plans);
        let cuts = cutpoints(&[inst]);
        prop_assert_eq!(cuts.first(), Some(&0usize));
        prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "not strictly sorted: {:?}", cuts);
    }

    /// Composition helpers always produce disjoint namespaces: any number
    /// of dup'd or sequenced copies of any builder pass the static
    /// composition check.
    #[test]
    fn dup_and_seq_compositions_never_collide(
        algo in algo_strategy(),
        p in 2usize..6,
        copies in 2usize..5,
    ) {
        let plans = build_all(algo.kind(), algo, p, 64, 0);
        prop_assert!(check_compose(&dup_instances(&plans, copies)).is_empty());
        prop_assert!(check_compose(&seq_instances(&plans, copies)).is_empty());
    }

    /// The checker is deterministic: two runs over the same composition
    /// report identical finding codes, state counts, and cutpoints.
    #[test]
    fn model_check_is_deterministic(
        algo in algo_strategy(),
        p in 2usize..6,
        same_ctx_pick in 0usize..2,
    ) {
        let p = if cfg!(miri) { p.min(3) } else { p };
        let plans = build_all(algo.kind(), algo, p, 64, 0);
        // Either a legal dup composition or a colliding one — both must
        // be reproducible.
        let insts = if same_ctx_pick == 1 {
            vec![
                PlanInstance::new(1, 0, plans.clone()),
                PlanInstance::new(1, 0, plans),
            ]
        } else {
            dup_instances(&plans, 2)
        };
        let a = model_check(&insts, &McConfig::default());
        let b = model_check(&insts, &McConfig::default());
        let codes = |r: &ovcomm_verify::plan::McReport| -> Vec<&'static str> {
            r.findings.iter().map(|f| f.code()).collect()
        };
        prop_assert_eq!(codes(&a), codes(&b));
        prop_assert_eq!(a.states, b.states);
        prop_assert_eq!(a.cutpoints, b.cutpoints);
    }
}
