//! Seeded-mutation suite for the CollPlan model checker.
//!
//! Each test plants one representative schedule bug — the classes the
//! checker exists to catch — and asserts that `model_check` produces a
//! counterexample of the expected kind whose rendered interleaving (or
//! blocked-step diagnosis) names the mutated step. Where meaningful, the
//! unmutated twin is also checked to be clean, so the assertions pin the
//! *mutation* as the cause rather than an artifact of the hand-built plan.

use ovcomm_verify::plan::{
    build_all, model_check, model_check_single, CollAlgo, CollPlan, McConfig, McCounterexample,
    McReport, PlanBuilder, PlanFinding, PlanInstance,
};
use ovcomm_verify::CollKind;

fn mc(plans: &[CollPlan]) -> McReport {
    model_check_single(plans, &McConfig::default())
}

fn counterexamples(rep: &McReport) -> Vec<&McCounterexample> {
    rep.findings
        .iter()
        .filter_map(|f| match f {
            PlanFinding::Mc(ce) => Some(ce),
            _ => None,
        })
        .collect()
}

fn codes(rep: &McReport) -> Vec<&'static str> {
    rep.findings.iter().map(|f| f.code()).collect()
}

/// The counterexample with `code`, asserting it exists.
fn expect_ce<'a>(rep: &'a McReport, code: &str) -> &'a McCounterexample {
    match counterexamples(rep).into_iter().find(|ce| ce.code == code) {
        Some(ce) => ce,
        None => panic!("expected a {code} counterexample, got {:?}", codes(rep)),
    }
}

fn trace_mentions(ce: &McCounterexample, needle: &str) -> bool {
    ce.trace.iter().any(|l| l.contains(needle)) || ce.detail.contains(needle)
}

/// Two-rank allreduce by full exchange; `recv_first` selects whether this
/// rank posts its (blocking) receive before or after its (blocking) send.
fn exchange_plan(me: usize, recv_first: bool, n: usize) -> CollPlan {
    let peer = 1 - me;
    let mut b = PlanBuilder::new(
        CollKind::Allreduce,
        CollAlgo::AllreduceRing,
        2,
        me,
        n,
        0,
        Some((0, n)),
    );
    let inp = b.input_buf();
    let got = if recv_first {
        let got = b.recv(peer, 7, n);
        b.send(peer, 7, inp);
        got
    } else {
        b.send(peer, 7, inp);
        b.recv(peer, 7, n)
    };
    let out = b.reduce(inp, got);
    b.set_output(out);
    b.finish()
}

// ---------------------------------------------------------------------------
// 1. Swapped send/recv order
// ---------------------------------------------------------------------------

/// Correct: one side sends first, the other receives first. Mutation:
/// swap rank 0's order so both sides block in a receive before posting
/// their send — an unconditional deadlock at every protocol cutpoint.
#[test]
fn swapped_send_recv_order_deadlocks() {
    let good = [exchange_plan(0, false, 64), exchange_plan(1, true, 64)];
    assert!(mc(&good).clean(), "unmutated exchange must be clean");

    let mutated = [exchange_plan(0, true, 64), exchange_plan(1, true, 64)];
    let rep = mc(&mutated);
    let ce = expect_ce(&rep, "mc-deadlock");
    // The diagnosis names the blocked step: the receive that now comes
    // first and can never be fed.
    assert!(
        trace_mentions(ce, "recv"),
        "counterexample must name the swapped receive:\n{ce}"
    );
    // Deadlocks at *every* cutpoint, not just under rendezvous: findings
    // are deduped by code, and the first cut explored is eager_cut = 0.
    assert_eq!(ce.eager_cut, Some(0));
}

// ---------------------------------------------------------------------------
// 2. Tag collision across dup'd communicators
// ---------------------------------------------------------------------------

/// Correct: `dup_instances` gives each composed plan set a distinct
/// context. Mutation: wire both instances to the same (ctx, seq) — the
/// static namespace check flags the overlap, and the explorer exhibits a
/// concrete cross-instance match.
#[test]
fn tag_collision_across_dup_comms_cross_matches() {
    let plans = build_all(CollKind::Bcast, CollAlgo::BcastBinomial, 4, 256, 0);
    let a = PlanInstance::new(11, 0, plans.clone());
    let b = PlanInstance::new(11, 0, plans);
    let rep = model_check(&[a, b], &McConfig::default());
    assert!(
        codes(&rep).contains(&"mc-tag-overlap"),
        "colliding namespaces must be statically flagged, got {:?}",
        codes(&rep)
    );
    let ce = expect_ce(&rep, "mc-cross-match");
    assert!(!ce.trace.is_empty(), "cross-match needs an interleaving");
    assert!(
        ce.trace.iter().any(|l| l.contains("matched send")),
        "trace must show the cross-instance pairing:\n{}",
        ce.trace.join("\n")
    );
}

// ---------------------------------------------------------------------------
// 3. Dropped fence: a deleted dissemination-barrier round
// ---------------------------------------------------------------------------

/// Dissemination barrier; `skip` deletes one rank's participation in one
/// round (the dropped-synchronization mutation).
fn barrier_plan(p: usize, me: usize, skip: Option<(usize, usize)>) -> CollPlan {
    let mut b = PlanBuilder::new(
        CollKind::Barrier,
        CollAlgo::BarrierDissemination,
        p,
        me,
        0,
        0,
        None,
    );
    let tok = b.empty();
    let mut round = 0usize;
    let mut dist = 1usize;
    while dist < p {
        if skip != Some((me, round)) {
            b.exchange((me + dist) % p, (me + p - dist) % p, round as u32, tok, 0);
        }
        round += 1;
        dist *= 2;
    }
    b.finish()
}

#[test]
fn dropped_barrier_round_deadlocks_partners() {
    let good: Vec<CollPlan> = (0..4).map(|r| barrier_plan(4, r, None)).collect();
    assert!(
        mc(&good).clean(),
        "full dissemination barrier must be clean"
    );

    // Rank 0 silently skips round 0: its round-0 partners can never
    // finish their fenced exchanges.
    let mutated: Vec<CollPlan> = (0..4).map(|r| barrier_plan(4, r, Some((0, 0)))).collect();
    let rep = mc(&mutated);
    let ce = expect_ce(&rep, "mc-deadlock");
    assert!(
        trace_mentions(ce, "tag 0"),
        "diagnosis must point at the dropped round's envelope:\n{ce}"
    );
}

// ---------------------------------------------------------------------------
// 4. Rendezvous cycle
// ---------------------------------------------------------------------------

/// Both ranks send first. Safe while the messages are eager (buffered),
/// a cycle once both sends synchronize — the checker must find the
/// deadlock exactly at the rendezvous cutpoint and stay clean at the
/// eager one.
#[test]
fn rendezvous_cycle_is_caught_at_the_protocol_boundary() {
    let n = 64;
    let mutated = [exchange_plan(0, false, n), exchange_plan(1, false, n)];
    let rep = mc(&mutated);
    // Cutpoints: everything-rendezvous (0) and everything-eager (n+1).
    assert_eq!(rep.cutpoints, vec![0, n + 1]);
    let ce = expect_ce(&rep, "mc-deadlock");
    assert_eq!(
        ce.eager_cut,
        Some(0),
        "the cycle must only exist under rendezvous"
    );
    assert!(
        ce.trace
            .iter()
            .any(|l| l.contains("post send") && l.contains("rendezvous")),
        "trace must show the synchronizing send:\n{}",
        ce.trace.join("\n")
    );
    // Exactly one deadlock (deduped across cutpoints), no eager findings.
    assert_eq!(codes(&rep), vec!["mc-deadlock"]);
}

// ---------------------------------------------------------------------------
// 5. Chunk gap: chunks reassembled in the wrong order
// ---------------------------------------------------------------------------

/// Two-chunk broadcast; `swapped` reassembles tail-before-head at the
/// receiver.
fn two_chunk_bcast(me: usize, swapped: bool, n: usize) -> CollPlan {
    let head = 8usize;
    let mut b = PlanBuilder::new(
        CollKind::Bcast,
        CollAlgo::BcastBinomial,
        2,
        me,
        n,
        0,
        if me == 0 { Some((0, n)) } else { None },
    );
    if me == 0 {
        let inp = b.input_buf();
        let (lo, hi) = b.split_at(inp, head);
        b.send(1, 1, lo);
        b.send(1, 2, hi);
        b.set_output(inp);
    } else {
        let lo = b.recv(0, 1, head);
        let hi = b.recv(0, 2, n - head);
        let out = if swapped {
            b.concat(&[hi, lo])
        } else {
            b.concat(&[lo, hi])
        };
        b.set_output(out);
    }
    b.finish()
}

#[test]
fn swapped_chunk_reassembly_is_a_chunk_gap() {
    let good = [two_chunk_bcast(0, false, 64), two_chunk_bcast(1, false, 64)];
    assert!(mc(&good).clean(), "in-order reassembly must be clean");

    let mutated = [two_chunk_bcast(0, false, 64), two_chunk_bcast(1, true, 64)];
    let rep = mc(&mutated);
    let ce = expect_ce(&rep, "mc-chunk-gap");
    assert!(
        ce.detail.contains("logical byte"),
        "diagnosis must name the misplaced bytes: {}",
        ce.detail
    );
    assert!(
        ce.trace.iter().any(|l| l.contains("copy")),
        "trace must include the mutated reassembly step:\n{}",
        ce.trace.join("\n")
    );
}

// ---------------------------------------------------------------------------
// 6. Wrong root: the result lands on the wrong rank
// ---------------------------------------------------------------------------

#[test]
fn wrong_root_reduce_is_flagged() {
    let n = 64usize;
    // Claimed: reduce to root 0. Actual flow: rank 0 ships its input to
    // rank 1, which keeps the result.
    let mut b0 = PlanBuilder::new(
        CollKind::Reduce,
        CollAlgo::ReduceBinomial,
        2,
        0,
        n,
        0,
        Some((0, n)),
    );
    let inp0 = b0.input_buf();
    b0.send(1, 3, inp0);
    let p0 = b0.finish();

    let mut b1 = PlanBuilder::new(
        CollKind::Reduce,
        CollAlgo::ReduceBinomial,
        2,
        1,
        n,
        0,
        Some((0, n)),
    );
    let inp1 = b1.input_buf();
    let got = b1.recv(0, 3, n);
    let out = b1.reduce(inp1, got);
    b1.set_output(out);
    let p1 = b1.finish();

    let rep = mc(&[p0, p1]);
    let ce = expect_ce(&rep, "mc-chunk-gap");
    assert!(
        ce.detail.contains("owed a result") || ce.detail.contains("does not give it"),
        "diagnosis must blame the misplaced result: {}",
        ce.detail
    );
}

// ---------------------------------------------------------------------------
// 7. Stray send: a message nobody ever receives
// ---------------------------------------------------------------------------

#[test]
fn stray_send_is_unmatched_or_deadlocks() {
    let n = 64;
    // The correct exchange, plus one extra send rank 1 never posts a
    // receive for.
    let peer_ok = exchange_plan(1, true, n);
    let mut b = PlanBuilder::new(
        CollKind::Allreduce,
        CollAlgo::AllreduceRing,
        2,
        0,
        n,
        0,
        Some((0, n)),
    );
    let inp = b.input_buf();
    b.send(1, 7, inp);
    let got = b.recv(1, 7, n);
    let _stray = b.isend(1, 99, inp);
    let out = b.reduce(inp, got);
    b.set_output(out);
    let mutated = [b.finish(), peer_ok];

    let rep = mc(&mutated);
    let cs = codes(&rep);
    // Under rendezvous the stray send blocks the final drain forever;
    // under eager it completes but its payload rots in the mailbox.
    assert!(
        cs.contains(&"mc-deadlock"),
        "rendezvous cut must deadlock on the stray send, got {cs:?}"
    );
    assert!(
        cs.contains(&"mc-unmatched"),
        "eager cut must report the never-received payload, got {cs:?}"
    );
    let ce = expect_ce(&rep, "mc-unmatched");
    assert!(
        ce.detail.contains("never"),
        "diagnosis must say the send is never received: {}",
        ce.detail
    );
}

// ---------------------------------------------------------------------------
// 8. Length mismatch on a matched envelope
// ---------------------------------------------------------------------------

#[test]
fn short_receive_is_a_len_mismatch() {
    let n = 64usize;
    let mut b0 = PlanBuilder::new(
        CollKind::Barrier,
        CollAlgo::BarrierDissemination,
        2,
        0,
        0,
        0,
        Some((0, n)),
    );
    let inp = b0.input_buf();
    b0.send(1, 7, inp);
    let p0 = b0.finish();

    let mut b1 = PlanBuilder::new(
        CollKind::Barrier,
        CollAlgo::BarrierDissemination,
        2,
        1,
        0,
        0,
        None,
    );
    // Mutation: the receiver posts half the sender's length.
    b1.recv(0, 7, n / 2);
    let p1 = b1.finish();

    let rep = mc(&[p0, p1]);
    let ce = expect_ce(&rep, "mc-len-mismatch");
    assert!(
        trace_mentions(ce, "64") && trace_mentions(ce, "32"),
        "diagnosis must show both lengths:\n{ce}"
    );
    assert!(
        ce.trace.iter().any(|l| l.contains("matched send")),
        "trace must include the bad match:\n{}",
        ce.trace.join("\n")
    );
}
