//! Property tests for the dense substrate: the blocked GEMM agrees with
//! the naive reference on arbitrary shapes, partitions tile exactly, and
//! block serialization round-trips.

use proptest::prelude::*;

use ovcomm_densemat::{
    gemm, gemm_naive, symmetric_with_spectrum, BlockBuf, BlockGrid, Matrix, Partition1D,
};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        seed in 0u64..1000,
    ) {
        let a = Matrix::from_fn(m, k, |i, j| (((i * 31 + j * 17) as u64 + seed) % 100) as f64 / 9.0 - 5.0);
        let b = Matrix::from_fn(k, n, |i, j| (((i * 13 + j * 37) as u64 + seed) % 100) as f64 / 9.0 - 5.0);
        let fast = gemm(&a, &b);
        let slow = gemm_naive(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-8);
    }

    #[test]
    fn gemm_distributes_over_addition(ab in matrix(20, 20), c in matrix(20, 20)) {
        // (A + C)·A = A·A + C·A
        let mut sum = ab.clone();
        sum.axpy(1.0, &c);
        let lhs = gemm(&sum, &ab);
        let mut rhs = gemm(&ab, &ab);
        rhs.axpy(1.0, &gemm(&c, &ab));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-7);
    }

    #[test]
    fn partition_tiles_exactly(n in 0usize..10_000, p in 1usize..64) {
        let part = Partition1D::new(n, p);
        let mut next = 0;
        for i in 0..p {
            let (s, l) = part.range(i);
            prop_assert_eq!(s, next);
            next = s + l;
            prop_assert!(l <= part.max_len());
            prop_assert!(part.max_len() - l <= 1, "balanced within 1");
        }
        prop_assert_eq!(next, n);
    }

    #[test]
    fn grid_extract_assemble_roundtrip(n in 1usize..40, p in 1usize..6, seed in 0u64..100) {
        prop_assume!(p <= n);
        let grid = BlockGrid::new(n, p);
        let m = Matrix::from_fn(n, n, |i, j| ((i * n + j) as u64 + seed) as f64);
        let blocks: Vec<Matrix> = (0..p * p)
            .map(|idx| grid.extract(&m, idx / p, idx % p))
            .collect();
        let back = grid.assemble(&blocks);
        prop_assert_eq!(back.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn block_bytes_roundtrip(rows in 1usize..30, cols in 1usize..30, seed in 0u64..50) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * cols + j) as u64 * 7 + seed) as f64 * 0.125);
        let b = BlockBuf::Real(m.clone());
        let back = BlockBuf::from_bytes(&b.to_bytes(), rows, cols);
        prop_assert_eq!(back.unwrap_real().max_abs_diff(&m), 0.0);
    }

    #[test]
    fn spectrum_construction_preserves_invariants(
        eigs in prop::collection::vec(-50.0..50.0f64, 2..24),
        seed in 0u64..200,
    ) {
        let h = symmetric_with_spectrum(&eigs, seed);
        prop_assert!(h.is_symmetric(1e-8));
        let tr: f64 = eigs.iter().sum();
        prop_assert!((h.trace() - tr).abs() < 1e-6 * (1.0 + tr.abs()));
        let frob: f64 = eigs.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((h.frob_norm() - frob).abs() < 1e-6 * (1.0 + frob));
    }

    #[test]
    fn transpose_is_involution(m in 1usize..25, n in 1usize..25, seed in 0u64..50) {
        let a = Matrix::from_fn(m, n, |i, j| ((i * 3 + j * 5) as u64 + seed) as f64);
        prop_assert_eq!(a.transpose().transpose().max_abs_diff(&a), 0.0);
    }
}
