//! Blocked dense matrix multiplication.
//!
//! A cache-tiled `C += A·B` kernel — the stand-in for the MKL DGEMM the
//! paper's kernels call on each node. Correctness-critical (validated
//! against a naive triple loop); at paper scale, the distributed kernels
//! charge modeled time instead of running it.

use crate::matrix::Matrix;

/// Tile edge for the blocked kernel (sized for L1-resident tiles of f64).
const TILE: usize = 64;

/// `C += A · B`. Shapes: A is m×k, B is k×n, C is m×n.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k, "inner dimensions disagree");
    assert_eq!((c.rows(), c.cols()), (m, n), "output shape disagrees");
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();

    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                // i-k-j micro kernel: streams over contiguous rows of B
                // and C, hoisting a[i][kk].
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = ad[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bd[kk * n + j0..kk * n + j1];
                        let crow = &mut cd[i * n + j0..i * n + j1];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `A · B` into a fresh matrix.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b);
    c
}

/// Reference triple loop, used by tests to validate the blocked kernel.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Flops of one `m×k · k×n` multiplication (multiply-add counted as 2).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random fill (xorshift), no RNG dependency.
        let mut s = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f64 - 1000.0) / 250.0
        })
    }

    #[test]
    fn blocked_matches_naive_square() {
        for n in [1, 2, 7, 32, 65, 130] {
            let a = pseudo(n, n, 3);
            let b = pseudo(n, n, 17);
            let fast = gemm(&a, &b);
            let slow = gemm_naive(&a, &b);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "blocked kernel diverges at n={n}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let a = pseudo(33, 90, 5);
        let b = pseudo(90, 21, 7);
        assert!(gemm(&a, &b).max_abs_diff(&gemm_naive(&a, &b)) < 1e-9);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = pseudo(16, 16, 11);
        let b = pseudo(16, 16, 13);
        let mut c = gemm(&a, &b);
        gemm_acc(&mut c, &a, &b);
        let mut twice = gemm_naive(&a, &b);
        twice.scale(2.0);
        assert!(c.max_abs_diff(&twice) < 1e-9);
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo(20, 20, 23);
        let i = Matrix::identity(20);
        assert!(gemm(&a, &i).max_abs_diff(&a) < 1e-12);
        assert!(gemm(&i, &a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        gemm(&a, &b);
    }
}
