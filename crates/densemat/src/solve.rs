//! Small dense linear solves (Gaussian elimination with partial pivoting).
//!
//! Block iterative solvers need s×s solves of the Gram matrices each
//! iteration (s = block width, typically ≤ 32); this is that kernel.

use crate::matrix::Matrix;

/// Solve `A · X = B` for square `A` (n×n) and `B` (n×m), returning `X`.
/// Panics if `A` is numerically singular.
pub fn solve(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.rows();
    assert_eq!(a.cols(), n, "A must be square");
    assert_eq!(b.rows(), n, "B row count must match A");
    let m = b.cols();

    // Augmented working copies.
    let mut lu = a.clone();
    let mut x = b.clone();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = lu[(col, col)].abs();
        for r in col + 1..n {
            let v = lu[(r, col)].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        assert!(
            best > 1e-300,
            "matrix is numerically singular at column {col}"
        );
        if piv != col {
            for c in 0..n {
                let tmp = lu[(col, c)];
                lu[(col, c)] = lu[(piv, c)];
                lu[(piv, c)] = tmp;
            }
            for c in 0..m {
                let tmp = x[(col, c)];
                x[(col, c)] = x[(piv, c)];
                x[(piv, c)] = tmp;
            }
        }
        // Eliminate below.
        let d = lu[(col, col)];
        for r in col + 1..n {
            let f = lu[(r, col)] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = lu[(col, c)];
                lu[(r, c)] -= f * v;
            }
            for c in 0..m {
                let v = x[(col, c)];
                x[(r, c)] -= f * v;
            }
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let d = lu[(col, col)];
        for c in 0..m {
            let mut acc = x[(col, c)];
            for k in col + 1..n {
                acc -= lu[(col, k)] * x[(k, c)];
            }
            x[(col, c)] = acc / d;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    #[test]
    fn solves_identity() {
        let i = Matrix::identity(4);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let x = solve(&i, &b);
        assert!(x.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn solve_then_multiply_roundtrip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            1.0 / (1.0 + (i + j) as f64) + if i == j { 2.0 } else { 0.0 }
        });
        let x_true = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64) * 0.5);
        let b = gemm(&a, &x_true);
        let x = solve(&a, &b);
        assert!(
            x.max_abs_diff(&x_true) < 1e-10,
            "err {}",
            x.max_abs_diff(&x_true)
        );
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let b = Matrix::from_vec(2, 1, vec![3.0, 7.0]);
        let x = solve(&a, &b);
        assert!((x[(0, 0)] - 7.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        solve(&a, &b);
    }
}
