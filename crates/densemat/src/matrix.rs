//! Dense row-major `f64` matrices with the operations the purification
//! kernels need: blocked GEMM, AXPY-style combinations, norms, traces.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// From a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Matrix { rows, cols, data }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Extract the sub-matrix at (`r0`, `c0`) of size `rs` × `cs`.
    pub fn submatrix(&self, r0: usize, c0: usize, rs: usize, cs: usize) -> Matrix {
        assert!(
            r0 + rs <= self.rows && c0 + cs <= self.cols,
            "submatrix out of range"
        );
        let mut out = Matrix::zeros(rs, cs);
        for i in 0..rs {
            let src = (r0 + i) * self.cols + c0;
            out.data[i * cs..(i + 1) * cs].copy_from_slice(&self.data[src..src + cs]);
        }
        out
    }

    /// Write `block` into this matrix at (`r0`, `c0`).
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_submatrix out of range"
        );
        for i in 0..block.rows {
            let dst = (r0 + i) * self.cols + c0;
            self.data[dst..dst + block.cols]
                .copy_from_slice(&block.data[i * block.cols..(i + 1) * block.cols]);
        }
    }

    /// `self += alpha * other` (matching shapes).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Shift the diagonal: `self += alpha * I` (square only).
    pub fn shift_diag(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols, "shift_diag needs a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += alpha;
        }
    }

    /// Trace (square only).
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace needs a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute entry difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the matrix is numerically symmetric to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_trace() {
        let i = Matrix::identity(4);
        assert_eq!(i.trace(), 4.0);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(2, 3)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t[(0, 2)], m[(2, 0)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = Matrix::from_fn(5, 5, |i, j| (10 * i + j) as f64);
        let s = m.submatrix(1, 2, 2, 3);
        assert_eq!(s[(0, 0)], 12.0);
        assert_eq!(s[(1, 2)], 24.0);
        let mut back = Matrix::zeros(5, 5);
        back.set_submatrix(1, 2, &s);
        assert_eq!(back[(1, 2)], 12.0);
        assert_eq!(back[(0, 0)], 0.0);
    }

    #[test]
    fn axpy_scale_shift() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 1)], 5.0);
        a.scale(0.5);
        assert_eq!(a[(1, 1)], 2.5);
        a.shift_diag(1.5);
        assert_eq!(a[(0, 0)], 2.0);
    }

    #[test]
    fn symmetric_check() {
        let s = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert!(!ns.is_symmetric(1e-12));
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn submatrix_bounds_checked() {
        Matrix::zeros(2, 2).submatrix(1, 1, 2, 2);
    }
}
