//! Symmetric test matrices with prescribed spectra.
//!
//! Density matrix purification needs Hamiltonians whose eigenvalue
//! distribution is known (so convergence can be verified analytically).
//! We build `H = Q Λ Qᵀ` with a prescribed diagonal Λ and an orthogonal `Q`
//! assembled from random Householder reflections — the standard synthetic
//! substitute for the paper's 1hsg_* Fock matrices, whose molecular details
//! the paper itself calls "immaterial ... except for the dimension".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Apply the Householder reflection `(I - 2 v vᵀ / vᵀv)` to every column of
/// `m` from the left, in place.
fn apply_householder_left(m: &mut Matrix, v: &[f64]) {
    let n = m.rows();
    assert_eq!(v.len(), n);
    let vtv: f64 = v.iter().map(|x| x * x).sum();
    if vtv == 0.0 {
        return;
    }
    let cols = m.cols();
    for j in 0..cols {
        let mut dot = 0.0;
        for i in 0..n {
            dot += v[i] * m[(i, j)];
        }
        let s = 2.0 * dot / vtv;
        for i in 0..n {
            m[(i, j)] -= s * v[i];
        }
    }
}

/// A symmetric matrix with the exact eigenvalues `eigs` (up to rounding),
/// built as `Q diag(eigs) Qᵀ` for a random orthogonal `Q` (product of
/// `reflections` Householder reflections; 4 is plenty of mixing).
pub fn symmetric_with_spectrum(eigs: &[f64], seed: u64) -> Matrix {
    let n = eigs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    // Start from diag(eigs) and conjugate by reflections: H := P H P for
    // each reflection P (P symmetric, orthogonal) keeps the spectrum.
    let mut h = Matrix::zeros(n, n);
    for i in 0..n {
        h[(i, i)] = eigs[i];
    }
    let reflections = 4.min(n);
    for _ in 0..reflections {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // H := P·H, then H := (P·H)ᵀ·... — conjugation via two one-sided
        // applications: P·H then transpose-apply is equivalent to P H P
        // because P is symmetric.
        apply_householder_left(&mut h, &v);
        let mut ht = h.transpose();
        apply_householder_left(&mut ht, &v);
        h = ht;
    }
    // Clean up rounding asymmetry.
    let mut sym = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            sym[(i, j)] = 0.5 * (h[(i, j)] + h[(j, i)]);
        }
    }
    sym
}

/// Eigenvalue layout of a synthetic "Fock matrix": `nocc` occupied states
/// spread over `[lo_occ, hi_occ]` and the rest over `[lo_virt, hi_virt]`,
/// with a spectral gap between the bands.
pub fn fock_like_spectrum(n: usize, nocc: usize) -> Vec<f64> {
    assert!(nocc <= n);
    let mut eigs = Vec::with_capacity(n);
    for i in 0..nocc {
        // occupied band [-10, -2]
        let t = if nocc > 1 {
            i as f64 / (nocc - 1) as f64
        } else {
            0.0
        };
        eigs.push(-10.0 + 8.0 * t);
    }
    for i in 0..n - nocc {
        // virtual band [0, 6]
        let nv = n - nocc;
        let t = if nv > 1 {
            i as f64 / (nv - 1) as f64
        } else {
            0.0
        };
        eigs.push(6.0 * t);
    }
    eigs
}

/// The exact density matrix for a given Hamiltonian spectrum construction:
/// `D = Q diag(occ) Qᵀ` where `occ_i = 1` for the `nocc` lowest eigenvalues.
/// Rebuilds with the same seed/spectrum as [`symmetric_with_spectrum`], so
/// `(H, D_exact)` pairs share the same eigenbasis.
pub fn exact_density(eigs: &[f64], nocc: usize, seed: u64) -> Matrix {
    let n = eigs.len();
    // Occupation numbers ordered like `eigs`: the nocc smallest get 1.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| eigs[a].total_cmp(&eigs[b]));
    let mut occ = vec![0.0; n];
    for &i in idx.iter().take(nocc) {
        occ[i] = 1.0;
    }
    symmetric_with_spectrum_from(&occ, seed)
}

/// Same construction as [`symmetric_with_spectrum`] — exposed so callers can
/// conjugate *any* diagonal by the same `Q` (same seed ⇒ same reflections).
pub fn symmetric_with_spectrum_from(diag: &[f64], seed: u64) -> Matrix {
    symmetric_with_spectrum(diag, seed)
}

/// Gershgorin bounds (λ_min_lower, λ_max_upper) of a symmetric matrix —
/// what canonical purification uses to scale/shift the initial iterate.
pub fn gershgorin_bounds(h: &Matrix) -> (f64, f64) {
    let n = h.rows();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let d = h[(i, i)];
        let r: f64 = (0..n).filter(|&j| j != i).map(|j| h[(i, j)].abs()).sum();
        lo = lo.min(d - r);
        hi = hi.max(d + r);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    #[test]
    fn constructed_matrix_is_symmetric_with_right_trace() {
        let eigs = fock_like_spectrum(24, 10);
        let h = symmetric_with_spectrum(&eigs, 42);
        assert!(h.is_symmetric(1e-10));
        let want: f64 = eigs.iter().sum();
        assert!(
            (h.trace() - want).abs() < 1e-8,
            "trace preserved by conjugation"
        );
    }

    #[test]
    fn frobenius_norm_matches_spectrum() {
        // ||H||_F² = Σ λ² for symmetric H.
        let eigs = vec![3.0, -1.0, 0.5, 2.0];
        let h = symmetric_with_spectrum(&eigs, 7);
        let want: f64 = eigs.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((h.frob_norm() - want).abs() < 1e-9);
    }

    #[test]
    fn exact_density_is_idempotent_projector() {
        let eigs = fock_like_spectrum(16, 6);
        let d = exact_density(&eigs, 6, 99);
        // D² = D (projector) and tr(D) = nocc.
        let d2 = gemm(&d, &d);
        assert!(d2.max_abs_diff(&d) < 1e-8, "density not idempotent");
        assert!((d.trace() - 6.0).abs() < 1e-8);
    }

    #[test]
    fn h_and_density_commute() {
        // Same eigenbasis ⇒ H·D = D·H.
        let eigs = fock_like_spectrum(12, 5);
        let h = symmetric_with_spectrum(&eigs, 5);
        let d = exact_density(&eigs, 5, 5);
        let hd = gemm(&h, &d);
        let dh = gemm(&d, &h);
        assert!(hd.max_abs_diff(&dh) < 1e-8);
    }

    #[test]
    fn gershgorin_encloses_spectrum() {
        let eigs = fock_like_spectrum(20, 8);
        let h = symmetric_with_spectrum(&eigs, 3);
        let (lo, hi) = gershgorin_bounds(&h);
        let min = eigs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = eigs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo <= min + 1e-9);
        assert!(hi >= max - 1e-9);
    }

    #[test]
    fn fock_spectrum_has_gap() {
        let eigs = fock_like_spectrum(30, 12);
        assert_eq!(eigs.len(), 30);
        let occ_max = eigs[..12].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let virt_min = eigs[12..].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(occ_max < virt_min, "bands must not overlap");
    }
}
