//! Block partitioning of matrices over process meshes.
//!
//! The paper partitions the N×N density matrix into p×p blocks with block
//! (i, j) owned by process P(i, j, 1) of the p×p×p mesh (§IV). Partitions
//! here are *balanced*: the first `N mod p` blocks along a dimension are one
//! larger, so block dimensions are `⌈N/p⌉` or `⌊N/p⌋`.

use crate::matrix::Matrix;

/// A balanced 1-D partition of `n` items into `parts` ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition1D {
    n: usize,
    parts: usize,
}

impl Partition1D {
    /// Partition `n` into `parts` (parts ≥ 1).
    pub fn new(n: usize, parts: usize) -> Partition1D {
        assert!(parts >= 1, "need at least one part");
        Partition1D { n, parts }
    }

    /// Total size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// (start, length) of part `i`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        assert!(i < self.parts, "part {i} out of {}", self.parts);
        let base = self.n / self.parts;
        let rem = self.n % self.parts;
        let len = base + usize::from(i < rem);
        let start = i * base + i.min(rem);
        (start, len)
    }

    /// Length of part `i`.
    pub fn len(&self, i: usize) -> usize {
        self.range(i).1
    }

    /// True iff `n == 0`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Largest part length (`⌈n/parts⌉`).
    pub fn max_len(&self) -> usize {
        self.n.div_ceil(self.parts)
    }
}

/// A square block grid: an N×N matrix cut into p×p blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockGrid {
    part: Partition1D,
}

impl BlockGrid {
    /// N×N matrix in p×p blocks.
    pub fn new(n: usize, p: usize) -> BlockGrid {
        BlockGrid {
            part: Partition1D::new(n, p),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.part.n()
    }

    /// Mesh dimension p.
    pub fn p(&self) -> usize {
        self.part.parts()
    }

    /// Dimensions (rows, cols) of block (i, j).
    pub fn block_dims(&self, i: usize, j: usize) -> (usize, usize) {
        (self.part.len(i), self.part.len(j))
    }

    /// Byte size of block (i, j) as f64 payload.
    pub fn block_bytes(&self, i: usize, j: usize) -> usize {
        let (r, c) = self.block_dims(i, j);
        r * c * 8
    }

    /// Extract block (i, j) from a full matrix.
    pub fn extract(&self, m: &Matrix, i: usize, j: usize) -> Matrix {
        assert_eq!(m.rows(), self.n());
        assert_eq!(m.cols(), self.n());
        let (r0, rs) = self.part.range(i);
        let (c0, cs) = self.part.range(j);
        m.submatrix(r0, c0, rs, cs)
    }

    /// Assemble a full matrix from all p² blocks (row-major block order).
    pub fn assemble(&self, blocks: &[Matrix]) -> Matrix {
        let p = self.p();
        assert_eq!(blocks.len(), p * p, "need p^2 blocks");
        let mut full = Matrix::zeros(self.n(), self.n());
        for i in 0..p {
            for j in 0..p {
                let (r0, rs) = self.part.range(i);
                let (c0, cs) = self.part.range(j);
                let b = &blocks[i * p + j];
                assert_eq!((b.rows(), b.cols()), (rs, cs), "block ({i},{j}) shape");
                full.set_submatrix(r0, c0, b);
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for (n, p) in [(10, 3), (7645, 4), (5, 5), (4, 7), (0, 2)] {
            let part = Partition1D::new(n, p);
            let mut total = 0;
            let mut next = 0;
            for i in 0..p {
                let (s, l) = part.range(i);
                assert_eq!(s, next, "ranges must be contiguous");
                next = s + l;
                total += l;
            }
            assert_eq!(total, n);
        }
    }

    #[test]
    fn partition_is_balanced() {
        let part = Partition1D::new(10, 3);
        assert_eq!(part.len(0), 4);
        assert_eq!(part.len(1), 3);
        assert_eq!(part.len(2), 3);
        assert_eq!(part.max_len(), 4);
    }

    #[test]
    fn paper_block_size_anchor() {
        // §V-A: 1hsg_70 (N=7645) on a 4-mesh has largest block 1912².
        let part = Partition1D::new(7645, 4);
        assert_eq!(part.max_len(), 1912);
    }

    #[test]
    fn extract_assemble_roundtrip() {
        let n = 11;
        let grid = BlockGrid::new(n, 3);
        let m = Matrix::from_fn(n, n, |i, j| (i * n + j) as f64);
        let mut blocks = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                blocks.push(grid.extract(&m, i, j));
            }
        }
        let back = grid.assemble(&blocks);
        assert_eq!(back.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn block_bytes_counts_f64s() {
        let grid = BlockGrid::new(10, 3);
        assert_eq!(grid.block_bytes(0, 0), 4 * 4 * 8);
        assert_eq!(grid.block_bytes(2, 2), 3 * 3 * 8);
    }
}
