//! Real/phantom block storage: the bridge between local matrices and
//! message payloads.
//!
//! Distributed kernels operate on [`BlockBuf`]s. In `Real` mode a block
//! carries an actual [`Matrix`] — arithmetic happens, results are
//! verifiable. In `Phantom` mode only the dimensions exist: the identical
//! communication schedule runs (payload sizes match byte-for-byte) and all
//! modeled virtual time is charged, but no memory is allocated — this is
//! how the paper-scale benchmarks (64–512 ranks, multi-GB matrices) run on
//! one small machine. The equality of virtual times across modes is tested
//! in the kernels crate.

use bytes::Bytes;

use crate::gemm::gemm_acc;
use crate::matrix::Matrix;

/// A matrix block that either holds data or just its shape.
#[derive(Debug, Clone)]
pub enum BlockBuf {
    /// A real block.
    Real(Matrix),
    /// Shape-only block (rows, cols).
    Phantom(usize, usize),
}

/// Byte payload for a block: real bytes or a phantom size. Mirrors
/// `ovcomm_simmpi::Payload` without depending on it (densemat stays
/// simulator-agnostic); the kernels crate converts between the two.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockBytes {
    /// Serialized row-major f64 data.
    Real(Bytes),
    /// Byte count only.
    Phantom(usize),
}

impl BlockBuf {
    /// A zero block (real or phantom according to `phantom`).
    pub fn zeros(rows: usize, cols: usize, phantom: bool) -> BlockBuf {
        if phantom {
            BlockBuf::Phantom(rows, cols)
        } else {
            BlockBuf::Real(Matrix::zeros(rows, cols))
        }
    }

    /// Dimensions.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            BlockBuf::Real(m) => (m.rows(), m.cols()),
            BlockBuf::Phantom(r, c) => (*r, *c),
        }
    }

    /// Whether this block is phantom.
    pub fn is_phantom(&self) -> bool {
        matches!(self, BlockBuf::Phantom(..))
    }

    /// Byte size as an f64 payload.
    pub fn byte_len(&self) -> usize {
        let (r, c) = self.dims();
        r * c * 8
    }

    /// The real matrix, or a panic for phantoms.
    pub fn unwrap_real(&self) -> &Matrix {
        match self {
            BlockBuf::Real(m) => m,
            BlockBuf::Phantom(..) => panic!("block is phantom; no data available"),
        }
    }

    /// `self += a · b` where shapes agree; phantom blocks only shape-check.
    /// (Virtual compute time is charged by the caller.)
    pub fn gemm_acc(&mut self, a: &BlockBuf, b: &BlockBuf) {
        let (m, ka) = a.dims();
        let (kb, n) = b.dims();
        assert_eq!(ka, kb, "inner dimensions disagree");
        assert_eq!(self.dims(), (m, n), "output shape disagrees");
        match (self, a, b) {
            (BlockBuf::Real(c), BlockBuf::Real(am), BlockBuf::Real(bm)) => {
                gemm_acc(c, am, bm);
            }
            (BlockBuf::Phantom(..), _, _) => {}
            _ => panic!("cannot mix real output with phantom inputs"),
        }
    }

    /// Serialize to a byte payload (row-major f64, native endianness).
    pub fn to_bytes(&self) -> BlockBytes {
        match self {
            BlockBuf::Real(m) => {
                let mut out = Vec::with_capacity(m.data().len() * 8);
                for x in m.data() {
                    out.extend_from_slice(&x.to_ne_bytes());
                }
                BlockBytes::Real(Bytes::from(out))
            }
            BlockBuf::Phantom(..) => BlockBytes::Phantom(self.byte_len()),
        }
    }

    /// Deserialize from a byte payload with known dimensions.
    pub fn from_bytes(bytes: &BlockBytes, rows: usize, cols: usize) -> BlockBuf {
        match bytes {
            BlockBytes::Real(b) => {
                assert_eq!(b.len(), rows * cols * 8, "payload size mismatch");
                let data = b
                    .chunks_exact(8)
                    // chunks_exact(8) yields exactly 8-byte slices.
                    .map(|c| f64::from_ne_bytes(c.try_into().unwrap_or([0; 8])))
                    .collect();
                BlockBuf::Real(Matrix::from_vec(rows, cols, data))
            }
            BlockBytes::Phantom(n) => {
                assert_eq!(*n, rows * cols * 8, "phantom size mismatch");
                BlockBuf::Phantom(rows, cols)
            }
        }
    }

    /// Transposed copy (phantom transposes its shape).
    pub fn transpose(&self) -> BlockBuf {
        match self {
            BlockBuf::Real(m) => BlockBuf::Real(m.transpose()),
            BlockBuf::Phantom(r, c) => BlockBuf::Phantom(*c, *r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_roundtrip_through_bytes() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 + 0.5);
        let b = BlockBuf::Real(m.clone());
        let bytes = b.to_bytes();
        let back = BlockBuf::from_bytes(&bytes, 3, 2);
        assert_eq!(back.unwrap_real().max_abs_diff(&m), 0.0);
    }

    #[test]
    fn phantom_roundtrip_preserves_shape() {
        let b = BlockBuf::Phantom(4, 5);
        assert_eq!(b.byte_len(), 160);
        let bytes = b.to_bytes();
        assert_eq!(bytes, BlockBytes::Phantom(160));
        let back = BlockBuf::from_bytes(&bytes, 4, 5);
        assert!(back.is_phantom());
        assert_eq!(back.dims(), (4, 5));
    }

    #[test]
    fn gemm_acc_matches_matrix_gemm() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(3, 5, |i, j| (2 * i + j) as f64);
        let mut c = BlockBuf::zeros(4, 5, false);
        c.gemm_acc(&BlockBuf::Real(a.clone()), &BlockBuf::Real(b.clone()));
        let want = crate::gemm::gemm(&a, &b);
        assert_eq!(c.unwrap_real().max_abs_diff(&want), 0.0);
    }

    #[test]
    fn phantom_gemm_shape_checks() {
        let mut c = BlockBuf::zeros(2, 4, true);
        c.gemm_acc(&BlockBuf::Phantom(2, 3), &BlockBuf::Phantom(3, 4));
        assert_eq!(c.dims(), (2, 4));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn phantom_gemm_still_validates_shapes() {
        let mut c = BlockBuf::zeros(2, 4, true);
        c.gemm_acc(&BlockBuf::Phantom(2, 3), &BlockBuf::Phantom(5, 4));
    }

    #[test]
    #[should_panic(expected = "phantom; no data")]
    fn unwrap_real_panics_on_phantom() {
        BlockBuf::Phantom(1, 1).unwrap_real();
    }
}
