//! # ovcomm-densemat
//!
//! Dense-matrix substrate for the `ovcomm` reproduction: row-major
//! matrices, a blocked DGEMM kernel (the stand-in for MKL), balanced block
//! partitioning over process meshes, real/phantom block storage for
//! paper-scale simulation, and symmetric test matrices with prescribed
//! spectra (synthetic Fock/Hamiltonian matrices for density matrix
//! purification).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blockbuf;
pub mod gemm;
pub mod matrix;
pub mod partition;
pub mod solve;
pub mod spectrum;

pub use blockbuf::{BlockBuf, BlockBytes};
pub use gemm::{gemm, gemm_acc, gemm_flops, gemm_naive};
pub use matrix::Matrix;
pub use partition::{BlockGrid, Partition1D};
pub use solve::solve;
pub use spectrum::{exact_density, fock_like_spectrum, gershgorin_bounds, symmetric_with_spectrum};
