//! Property tests for the overlap library: chunk plans partition exactly,
//! slicing/reassembly is the identity, and the tuning rules behave
//! monotonically.

use proptest::prelude::*;

use ovcomm_core::{n_dup_by_threshold, satisfies_overlap_condition, AlphaBeta, ChunkPlan};
use ovcomm_simmpi::Payload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunk_plan_partitions_exactly(n in 0usize..10_000_000, d in 1usize..32) {
        let plan = ChunkPlan::new(n, d);
        prop_assert_eq!(plan.total(), n);
        prop_assert_eq!(plan.n_dup(), d);
        let mut covered = 0;
        for c in 0..d {
            let (s, e) = plan.range(c);
            prop_assert_eq!(s, covered);
            covered = e;
            if c + 1 < d {
                prop_assert_eq!(e % 8, 0, "interior boundaries must be 8-aligned");
            }
        }
        prop_assert_eq!(covered, n);
        // Balance: chunks differ by at most one 8-byte element (plus the
        // ragged tail on the last chunk).
        let lens: Vec<usize> = (0..d).map(|c| plan.len(c)).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        prop_assert!(max - min <= 8 + n % 8);
    }

    #[test]
    fn chunk_slices_reassemble(elems in prop::collection::vec(-1e9..1e9f64, 0..500), d in 1usize..9) {
        let p = Payload::from_f64s(&elems);
        let plan = ChunkPlan::new(p.len(), d);
        let chunks: Vec<Payload> = (0..d).map(|c| plan.slice(&p, c)).collect();
        prop_assert_eq!(plan.concat(&chunks).to_f64s(), elems);
    }

    #[test]
    fn threshold_rule_is_monotone_in_message_size(
        n1 in 1usize..100_000_000,
        delta in 0usize..100_000_000,
        nt in 1usize..10_000_000,
        maxd in 1usize..32,
    ) {
        let small = n_dup_by_threshold(n1, nt, maxd);
        let large = n_dup_by_threshold(n1 + delta, nt, maxd);
        prop_assert!(large >= small);
        prop_assert!((1..=maxd).contains(&small));
    }

    #[test]
    fn saturating_curves_always_pass_overlap_condition(
        rmax in 1.0e9..50.0e9f64,
        half in 1.0e3..1.0e7f64,
        n in 1usize..100_000_000,
        d in 1usize..32,
    ) {
        let curve = move |m: usize| rmax * m as f64 / (m as f64 + half);
        prop_assert!(satisfies_overlap_condition(&curve, n, d));
    }

    #[test]
    fn alpha_beta_times_scale_linearly_in_bytes(
        p in 2usize..64,
        n in 1.0e3..1.0e9f64,
    ) {
        let ab = AlphaBeta { alpha: 0.0, beta: 1.0 / 12e9 };
        let one = ab.t_bcast(p, n);
        let two = ab.t_bcast(p, 2.0 * n);
        prop_assert!((two - 2.0 * one).abs() < 1e-12 * two.max(1e-12));
        prop_assert!((ab.t_reduce(p, n) - one).abs() < 1e-15, "α=0 ⇒ bcast = reduce");
        prop_assert!(ab.t_baseline_symm_square_cube(p, n) > 0.0);
    }
}
