//! Integration tests: the overlap drivers produce identical results to
//! their blocking counterparts for every N_DUP, and the pipelined forms
//! actually save virtual time on the calibrated machine profile.

use ovcomm_core::{
    overlapped_bcast, overlapped_isend, overlapped_recv, overlapped_reduce, pipelined_reduce_bcast,
    run_stage, NDupComms, StagePlan,
};
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn cfg(nranks: usize, ppn: usize) -> SimConfig {
    SimConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

#[test]
fn overlapped_bcast_matches_blocking_for_all_ndup() {
    for n_dup in [1, 2, 3, 4, 6] {
        let data: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        let expect = data.clone();
        let out = run(cfg(5, 2), move |rc: RankCtx| {
            let w = rc.world();
            let comms = NDupComms::new(&w, n_dup);
            let payload = Payload::from_f64s(&data);
            let got = overlapped_bcast(
                &comms,
                2,
                (rc.rank() == 2).then_some(&payload).map(|p| p as _),
                payload.len(),
            );
            got.to_f64s() == expect
        })
        .unwrap();
        assert!(out.results.iter().all(|&ok| ok), "N_DUP={n_dup}");
    }
}

#[test]
fn overlapped_reduce_matches_blocking_for_all_ndup() {
    for n_dup in [1, 2, 4, 5] {
        let out = run(cfg(6, 2), move |rc: RankCtx| {
            let w = rc.world();
            let comms = NDupComms::new(&w, n_dup);
            let mine: Vec<f64> = (0..300)
                .map(|i| (rc.rank() + 1) as f64 + i as f64)
                .collect();
            let contrib = Payload::from_f64s(&mine);
            overlapped_reduce(&comms, 3, &contrib).map(|p| p.to_f64s())
        })
        .unwrap();
        for (r, res) in out.results.iter().enumerate() {
            if r == 3 {
                let res = res.as_ref().expect("root result");
                for (i, &x) in res.iter().enumerate() {
                    let want: f64 = (1..=6).map(|k| k as f64 + i as f64).sum();
                    assert!((x - want).abs() < 1e-9, "N_DUP={n_dup} elem {i}");
                }
            } else {
                assert!(res.is_none());
            }
        }
    }
}

#[test]
fn pipelined_reduce_bcast_produces_the_reduced_vector_everywhere() {
    for n_dup in [1, 2, 4] {
        let out = run(cfg(4, 2), move |rc: RankCtx| {
            let w = rc.world();
            let red = NDupComms::new(&w, n_dup);
            let bc = NDupComms::new(&w, n_dup);
            let mine: Vec<f64> = (0..257).map(|i| (rc.rank() * 1000 + i) as f64).collect();
            let contrib = Payload::from_f64s(&mine);
            // Reduce to rank 1, broadcast from rank 1.
            pipelined_reduce_bcast(&red, 1, &bc, 1, &contrib, contrib.len()).to_f64s()
        })
        .unwrap();
        for i in 0..257 {
            let want: f64 = (0..4).map(|r| (r * 1000 + i) as f64).sum();
            for r in 0..4 {
                assert!(
                    (out.results[r][i] - want).abs() < 1e-9,
                    "N_DUP={n_dup} rank {r} elem {i}"
                );
            }
        }
    }
}

#[test]
fn chunked_p2p_roundtrip() {
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let comms = NDupComms::new(&w, 3);
        if rc.rank() == 0 {
            let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
            let payload = Payload::from_f64s(&data);
            let reqs = overlapped_isend(&comms, 1, 9, &payload);
            for (c, r) in reqs.iter().enumerate() {
                comms.comm(c).wait(r);
            }
            Vec::new()
        } else {
            overlapped_recv(&comms, 0, 9, 8000).to_f64s()
        }
    })
    .unwrap();
    assert_eq!(out.results[1].len(), 1000);
    assert_eq!(out.results[1][999], 999.0);
}

#[test]
fn ppn_stage_sleeps_inactive_ranks() {
    // 4 ranks, 2 active. Active ones "compute" 35 ms; sleepers must poll
    // ~3-4 times at the profile's 10 ms period and wake after.
    let out = run(cfg(4, 2), |rc: RankCtx| {
        let w = rc.world();
        let plan = StagePlan::first_n(2);
        let (result, polls) = run_stage(&rc, &w, &plan, || {
            rc.advance(ovcomm_simnet::SimDur::from_millis(35));
            rc.rank() * 10
        });
        (result, polls, rc.now().as_secs_f64())
    })
    .unwrap();
    assert_eq!(out.results[0].0, Some(0));
    assert_eq!(out.results[1].0, Some(10));
    assert_eq!(out.results[2].0, None);
    assert_eq!(out.results[3].0, None);
    for r in 2..4 {
        assert!(
            (3..=5).contains(&out.results[r].1),
            "rank {r} polled {} times",
            out.results[r].1
        );
        assert!(out.results[r].2 >= 35e-3, "sleeper woke too early");
    }
    assert_eq!(out.results[0].1, 0, "active ranks do not poll");
}

#[test]
fn algorithm2_pipeline_beats_algorithm1_sequential() {
    // The paper's motivating example (Figs. 1-2): reduce-then-broadcast of
    // a large vector. Algorithm 1 = blocking reduce, then blocking bcast.
    // Algorithm 2 = N_DUP-pipelined ireduce→ibcast. On the calibrated
    // profile the pipeline must be faster.
    let n = 8 << 20;
    let alg1 = run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let w = rc.world();
            let reduced = w.reduce(0, Payload::Phantom(n));
            let data = (rc.rank() == 0).then(|| reduced.unwrap());
            let _ = w.bcast(0, data, n);
        },
    )
    .unwrap()
    .makespan;
    let alg2 = run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let w = rc.world();
            let red = NDupComms::new(&w, 4);
            let bc = NDupComms::new(&w, 4);
            let contrib = Payload::Phantom(n);
            let _ = pipelined_reduce_bcast(&red, 0, &bc, 0, &contrib, n);
        },
    )
    .unwrap()
    .makespan;
    assert!(
        alg2 < alg1,
        "pipelined reduce→bcast ({alg2}) must beat sequential ({alg1})"
    );
    // And the win should be substantial (paper reports tens of percent).
    let speedup = alg1.as_secs_f64() / alg2.as_secs_f64();
    assert!(speedup > 1.15, "speedup only {speedup:.3}");
}

#[test]
fn ndup_bundles_are_independent_contexts() {
    // Traffic on different duplicates must not cross-match even with equal
    // tags and peers.
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let comms = NDupComms::new(&w, 2);
        if rc.rank() == 0 {
            comms.comm(1).send(1, 0, Payload::from_f64s(&[2.0]));
            comms.comm(0).send(1, 0, Payload::from_f64s(&[1.0]));
            (0.0, 0.0)
        } else {
            let a = comms.comm(0).recv(0, 0).to_f64s()[0];
            let b = comms.comm(1).recv(0, 0).to_f64s()[0];
            (a, b)
        }
    })
    .unwrap();
    assert_eq!(out.results[1], (1.0, 2.0));
}
