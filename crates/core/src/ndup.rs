//! N_DUP communicator bundles.
//!
//! The nonblocking-overlap technique needs `N_DUP` independent copies of
//! each communicator so that the pipelined nonblocking collectives of
//! different chunks progress independently (§III-A).

use ovcomm_simmpi::Comm;

use crate::backend::Communicator;

/// `N_DUP` duplicated communicators over one group. Generic over the
/// runtime backend; defaults to the simulator's [`Comm`].
#[derive(Clone)]
pub struct NDupComms<C: Communicator = Comm> {
    comms: Vec<C>,
}

impl<C: Communicator> NDupComms<C> {
    /// Duplicate `base` `n_dup` times. All member ranks must call this in
    /// the same order (it performs collective `dup`s).
    pub fn new(base: &C, n_dup: usize) -> NDupComms<C> {
        assert!(n_dup >= 1, "N_DUP must be at least 1");
        NDupComms {
            comms: base.dup_n(n_dup),
        }
    }

    /// Number of duplicates.
    pub fn n_dup(&self) -> usize {
        self.comms.len()
    }

    /// The communicator for chunk `c`.
    pub fn comm(&self, c: usize) -> &C {
        &self.comms[c]
    }

    /// Iterate over (chunk index, communicator).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &C)> {
        self.comms.iter().enumerate()
    }

    /// Group size (all duplicates share it).
    pub fn size(&self) -> usize {
        self.comms[0].size()
    }

    /// This rank's index within the group.
    pub fn rank(&self) -> usize {
        self.comms[0].rank()
    }
}
