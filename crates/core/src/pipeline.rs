//! Pipelined, overlapped communication drivers — the heart of the paper's
//! nonblocking-overlap technique (§III-A, Algorithms 2 and 5).
//!
//! Each driver divides its payload with a [`ChunkPlan`], issues one
//! nonblocking collective per chunk on that chunk's duplicated communicator,
//! and (for the pipelined forms) forwards each chunk to the next operation as
//! soon as it completes, so the data transfer of one chunk overlaps the
//! synchronization/posting/processing phases of the others.

use ovcomm_simmpi::{Payload, Request};

use crate::backend::Communicator;
use crate::chunk::ChunkPlan;
use crate::ndup::NDupComms;

/// Broadcast `len` bytes from `root`, overlapped with itself: N_DUP chunked
/// `ibcast`s posted back-to-back, waited in order. Equivalent to a blocking
/// broadcast when `comms.n_dup() == 1` but still using the nonblocking path.
///
/// ```
/// use ovcomm_core::{overlapped_bcast, NDupComms};
/// use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
/// use ovcomm_simnet::MachineProfile;
///
/// let out = run(
///     SimConfig::natural(4, 1, MachineProfile::test_profile()),
///     |rc: RankCtx| {
///         let comms = NDupComms::new(&rc.world(), 4);
///         let data = (rc.rank() == 0).then(|| Payload::from_f64s(&[1.0, 2.0, 3.0]));
///         overlapped_bcast(&comms, 0, data.as_ref(), 24).to_f64s()
///     },
/// )
/// .unwrap();
/// for r in 0..4 {
///     assert_eq!(out.results[r], vec![1.0, 2.0, 3.0]);
/// }
/// ```
pub fn overlapped_bcast<C: Communicator>(
    comms: &NDupComms<C>,
    root: usize,
    data: Option<&Payload>,
    len: usize,
) -> Payload {
    let plan = ChunkPlan::new(len, comms.n_dup());
    let parts = plan.split_opt(data);
    let reqs: Vec<Request<Payload>> = comms
        .iter()
        .zip(parts)
        .map(|((c, comm), part)| comm.ibcast(root, part, plan.len(c)))
        .collect();
    // All dup comms share the rank agent, so one handle can drain the batch.
    let chunks = comms.comm(0).wait_all_payloads(&reqs);
    plan.concat(&chunks)
}

/// Sum-reduce `contrib` to `root`, overlapped with itself: N_DUP chunked
/// `ireduce`s. Returns the assembled result on the root.
pub fn overlapped_reduce<C: Communicator>(
    comms: &NDupComms<C>,
    root: usize,
    contrib: &Payload,
) -> Option<Payload> {
    let plan = ChunkPlan::new(contrib.len(), comms.n_dup());
    let reqs: Vec<(usize, Request<Option<Payload>>)> = comms
        .iter()
        .map(|(c, comm)| (c, comm.ireduce(root, plan.slice(contrib, c))))
        .collect();
    let mut chunks = Vec::with_capacity(plan.n_dup());
    let mut any = false;
    for (c, r) in &reqs {
        match comms.comm(*c).wait(r) {
            Some(p) => {
                any = true;
                chunks.push(p);
            }
            None => chunks.push(Payload::Phantom(0)),
        }
    }
    if comms.rank() == root {
        debug_assert!(any || plan.is_empty());
        Some(plan.concat(&chunks))
    } else {
        None
    }
}

/// The pipelined **reduce → broadcast** of Algorithm 2 (and lines 10–17 of
/// Algorithm 5): reduce chunks of `contrib` to `reduce_root` on
/// `reduce_comms`; as each chunk lands, the root immediately posts its
/// broadcast from `bcast_root` on `bcast_comms`; everyone returns the fully
/// broadcast payload (`bcast_len` bytes — it may differ from
/// `contrib.len()` on ranks that reduce one mesh block but receive
/// another, as in SymmSquareCube; on the pipelining root the two lengths
/// must agree).
///
/// The reduce group and the bcast group may be different communicators over
/// different axes of a process mesh (column vs. row), which is exactly how
/// the kernels use it. The caller must be a member of both bundles.
// The `expect` asserts a protocol invariant: the reduce root always
// receives the reduced chunk from its own ireduce.
#[allow(clippy::expect_used)]
pub fn pipelined_reduce_bcast<C: Communicator>(
    reduce_comms: &NDupComms<C>,
    reduce_root: usize,
    bcast_comms: &NDupComms<C>,
    bcast_root: usize,
    contrib: &Payload,
    bcast_len: usize,
) -> Payload {
    let n_dup = reduce_comms.n_dup();
    assert_eq!(
        n_dup,
        bcast_comms.n_dup(),
        "reduce and bcast bundles must have the same N_DUP"
    );
    let red_plan = ChunkPlan::new(contrib.len(), n_dup);
    let bc_plan = ChunkPlan::new(bcast_len, n_dup);
    let am_reduce_root = reduce_comms.rank() == reduce_root;
    let am_pipeliner = am_reduce_root && bcast_comms.rank() == bcast_root;
    if am_pipeliner {
        assert_eq!(
            contrib.len(),
            bcast_len,
            "the pipelining root forwards reduced chunks, so lengths must agree"
        );
    }

    // Post all chunked reductions (Algorithm 2, lines 3–5).
    let red_reqs: Vec<Request<Option<Payload>>> = reduce_comms
        .iter()
        .map(|(c, comm)| comm.ireduce(reduce_root, red_plan.slice(contrib, c)))
        .collect();

    // Pipeline: as chunk c's reduction completes on the root, post its
    // broadcast; other ranks post their broadcast receive immediately
    // (Algorithm 2, lines 6–10).
    let bcast_reqs: Vec<Request<Payload>> = (0..n_dup)
        .map(|c| {
            let data = if am_pipeliner {
                let reduced = reduce_comms.comm(c).wait_traced_chunk(
                    &red_reqs[c],
                    "wait MPI_Ireduce",
                    c as u32,
                );
                Some(reduced.expect("reduce root must receive the chunk"))
            } else {
                None
            };
            bcast_comms.comm(c).ibcast(bcast_root, data, bc_plan.len(c))
        })
        .collect();

    // Wait for all outstanding broadcasts (Algorithm 2, line 11).
    let chunks: Vec<Payload> = bcast_reqs
        .iter()
        .enumerate()
        .map(|(c, r)| {
            bcast_comms
                .comm(c)
                .wait_traced_chunk(r, "wait MPI_Ibcast", c as u32)
        })
        .collect();

    // Ranks that are reduce roots but not bcast roots still need their
    // reduced result consumed; all others drain their (already completed)
    // ireduce requests.
    if !am_pipeliner {
        for (c, r) in red_reqs.iter().enumerate() {
            let _ = reduce_comms.comm(c).wait(r);
        }
    }
    bc_plan.concat(&chunks)
}

/// Sum-allreduce overlapped with itself: N_DUP chunked `iallreduce`s (used
/// by the 2.5D SymmSquareCube, Algorithm 6 step 3).
pub fn overlapped_allreduce<C: Communicator>(comms: &NDupComms<C>, contrib: &Payload) -> Payload {
    let plan = ChunkPlan::new(contrib.len(), comms.n_dup());
    let reqs: Vec<Request<Payload>> = comms
        .iter()
        .map(|(c, comm)| comm.iallreduce(plan.slice(contrib, c)))
        .collect();
    let chunks = comms.comm(0).wait_all_payloads(&reqs);
    plan.concat(&chunks)
}

/// Overlapped point-to-point: send `payload` to `dst` as N_DUP chunked
/// `isend`s on the duplicated communicators (Algorithm 5, lines 22–26 use
/// this for the D² and D³ hand-backs).
pub fn overlapped_isend<C: Communicator>(
    comms: &NDupComms<C>,
    dst: usize,
    tag: u32,
    payload: &Payload,
) -> Vec<Request<()>> {
    let plan = ChunkPlan::new(payload.len(), comms.n_dup());
    comms
        .iter()
        .map(|(c, comm)| comm.isend(dst, tag, plan.slice(payload, c)))
        .collect()
}

/// Matching chunked receive: post all N_DUP `irecv`s, wait in order,
/// reassemble.
pub fn overlapped_recv<C: Communicator>(
    comms: &NDupComms<C>,
    src: usize,
    tag: u32,
    len: usize,
) -> Payload {
    let plan = ChunkPlan::new(len, comms.n_dup());
    let reqs: Vec<Request<Payload>> = comms.iter().map(|(_, comm)| comm.irecv(src, tag)).collect();
    let chunks = comms.comm(0).wait_all_payloads(&reqs);
    for (c, chunk) in chunks.iter().enumerate() {
        assert_eq!(
            chunk.len(),
            plan.len(c),
            "received chunk {c} has wrong size"
        );
    }
    plan.concat(&chunks)
}
