//! Empirical N_DUP auto-tuning.
//!
//! §III-A: "the best N_DUP value could be different for different
//! operations, and the best value should be chosen according to the size of
//! the communicated data". The [`AutoTuner`] measures an effective-bandwidth
//! curve once (user-supplied probe — typically a micro-benchmark run in the
//! simulator or on the real machine) and answers per-message-size N_DUP
//! queries with the paper's two rules: the threshold rule `n/N_DUP ≥ n_t`
//! and the curve condition `N_DUP·f_BW(n/N_DUP) ≥ f_BW(n)`.

use ovcomm_simmpi::CollSelector;

use crate::tuning::{n_dup_by_threshold, satisfies_overlap_condition, BandwidthCurve};

/// A piecewise-log-linear effective-bandwidth curve built from measured
/// (message size, bandwidth) samples.
#[derive(Debug, Clone)]
pub struct MeasuredCurve {
    /// (bytes, bytes/sec) samples, sorted by size.
    samples: Vec<(usize, f64)>,
}

impl MeasuredCurve {
    /// Build from samples (any order; must be non-empty, sizes unique).
    pub fn new(mut samples: Vec<(usize, f64)>) -> MeasuredCurve {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_by_key(|&(n, _)| n);
        samples.dedup_by_key(|&mut (n, _)| n);
        for &(n, bw) in &samples {
            assert!(
                n > 0 && bw.is_finite() && bw > 0.0,
                "bad sample ({n}, {bw})"
            );
        }
        MeasuredCurve { samples }
    }

    /// The message size above which the curve stays within `frac` of its
    /// maximum — the paper's threshold `n_t` ("where f_BW(n_t) is close to
    /// the achievable network bandwidth").
    // `samples` is non-empty by construction (asserted in `new`).
    #[allow(clippy::unwrap_used)]
    pub fn threshold(&self, frac: f64) -> usize {
        let peak = self
            .samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0f64, f64::max);
        for &(n, bw) in &self.samples {
            if bw >= frac * peak {
                return n;
            }
        }
        self.samples.last().unwrap().0
    }
}

impl BandwidthCurve for MeasuredCurve {
    // `samples` is non-empty by construction (asserted in `new`).
    #[allow(clippy::unwrap_used)]
    fn bw(&self, n: usize) -> f64 {
        let n = n.max(1);
        // Below/above the sampled range: clamp.
        if n <= self.samples[0].0 {
            return self.samples[0].1;
        }
        if n >= self.samples.last().unwrap().0 {
            return self.samples.last().unwrap().1;
        }
        // Log-linear interpolation between neighbouring samples.
        let idx = self.samples.partition_point(|&(m, _)| m < n);
        let (n0, b0) = self.samples[idx - 1];
        let (n1, b1) = self.samples[idx];
        let t = ((n as f64).ln() - (n0 as f64).ln()) / ((n1 as f64).ln() - (n0 as f64).ln());
        b0 + t * (b1 - b0)
    }
}

/// Chooses N_DUP per message size from a measured curve.
///
/// ```
/// use ovcomm_core::{AutoTuner, MeasuredCurve};
///
/// // A Fig-3-shaped bandwidth curve (bytes → bytes/sec).
/// let curve = MeasuredCurve::new(vec![
///     (16 * 1024, 0.7e9),
///     (256 * 1024, 4.0e9),
///     (1 << 20, 9.6e9),
///     (16 << 20, 11.9e9),
/// ]);
/// let tuner = AutoTuner::new(curve, 8);
/// assert!(tuner.n_dup_for(28 << 20) >= 4); // big blocks: chunk aggressively
/// assert_eq!(tuner.n_dup_for(4 * 1024), 1); // tiny messages: leave alone
/// ```
#[derive(Debug, Clone)]
pub struct AutoTuner {
    curve: MeasuredCurve,
    n_t: usize,
    max_n_dup: usize,
    coll: Option<CollSelector>,
}

impl AutoTuner {
    /// Build from a measured curve; `max_n_dup` bounds resource use (the
    /// paper warns that very large N_DUP "would heavily consume system
    /// resources"). The threshold `n_t` is where the curve reaches half of
    /// peak — a deliberately loose reading of "close to the achievable
    /// bandwidth", because the paper notes that chunking below n_t "is
    /// still possible and likely to accelerate communications".
    pub fn new(curve: MeasuredCurve, max_n_dup: usize) -> AutoTuner {
        assert!(max_n_dup >= 1);
        let n_t = curve.threshold(0.5);
        AutoTuner {
            curve,
            n_t,
            max_n_dup,
            coll: None,
        }
    }

    /// Attach a fitted collective-algorithm selector (see
    /// [`fit_selector`](crate::collsel::fit_selector)), so one tuner
    /// carries both knobs the paper's auto-tuning story exposes: N_DUP and
    /// the per-collective algorithm choice. Pass the result to
    /// `SimConfig::with_coll_select`.
    pub fn with_coll_selector(mut self, sel: CollSelector) -> AutoTuner {
        self.coll = Some(sel);
        self
    }

    /// The fitted collective-algorithm selector, if one was attached.
    pub fn coll_selector(&self) -> Option<&CollSelector> {
        self.coll.as_ref()
    }

    /// The derived threshold n_t.
    pub fn threshold(&self) -> usize {
        self.n_t
    }

    /// Recommended N_DUP for an `n`-byte operation: the largest value that
    /// keeps chunks at/above n_t *and* satisfies the curve condition; at
    /// least 1.
    pub fn n_dup_for(&self, n: usize) -> usize {
        let by_threshold = n_dup_by_threshold(n, self.n_t.max(1), self.max_n_dup);
        let mut best = 1;
        for d in 1..=by_threshold {
            if satisfies_overlap_condition(&self.curve, n, d) {
                best = d;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skylake_like() -> MeasuredCurve {
        // Shape of the paper's Fig. 3 PPN=1 curve.
        MeasuredCurve::new(vec![
            (64, 4e6),
            (1024, 80e6),
            (16 * 1024, 700e6),
            (128 * 1024, 3.8e9),
            (1 << 20, 9.6e9),
            (4 << 20, 11.4e9),
            (16 << 20, 11.9e9),
        ])
    }

    #[test]
    fn interpolation_is_monotone_here() {
        let c = skylake_like();
        let mut prev = 0.0;
        for n in [64usize, 500, 4096, 60_000, 300_000, 2 << 20, 10 << 20] {
            let b = c.bw(n);
            assert!(b >= prev, "curve must be non-decreasing at {n}");
            prev = b;
        }
    }

    #[test]
    fn threshold_lands_in_the_paper_band() {
        // The paper: "usually 16 KB ≤ n_t ≤ 1 MB".
        let c = skylake_like();
        let nt = c.threshold(0.5);
        assert!(
            (16 * 1024..=(1 << 20)).contains(&nt),
            "n_t = {nt} out of band"
        );
    }

    #[test]
    fn big_messages_get_big_ndup_small_get_one() {
        let tuner = AutoTuner::new(skylake_like(), 16);
        let big = tuner.n_dup_for(28 << 20); // the kernel's 28 MB blocks
        let small = tuner.n_dup_for(8 * 1024);
        assert!(big >= 4, "28MB should chunk at least 4 ways, got {big}");
        assert_eq!(small, 1, "8KB messages must not be chunked");
        assert!(tuner.n_dup_for(0) == 1);
    }

    #[test]
    fn max_n_dup_is_respected() {
        let tuner = AutoTuner::new(skylake_like(), 3);
        assert!(tuner.n_dup_for(64 << 20) <= 3);
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn empty_curve_rejected() {
        MeasuredCurve::new(vec![]);
    }
}
