//! # ovcomm-core
//!
//! The primary contribution of *Huang & Chow, "Overlapping Communications
//! with Other Communications and its Application to Distributed Dense
//! Matrix Computations"* (IPDPS 2019), as a reusable library:
//!
//! * [`ndup`] — N_DUP duplicated-communicator bundles;
//! * [`chunk`] — contiguous, aligned chunk plans (the N_DUP data division);
//! * [`pipeline`] — overlapped/pipelined drivers: self-overlapped broadcast
//!   and reduction, the pipelined reduce→broadcast of Algorithm 2, and
//!   chunked point-to-point;
//! * [`ppn`] — multiple-PPN overlap: per-kernel process activation with the
//!   Ibarrier + test + usleep sleep/poll mechanism of §III-B;
//! * [`tuning`] — the `N_DUP · f_BW(n/N_DUP) ≥ f_BW(n)` condition and the
//!   `n/N_DUP ≥ n_t` threshold rule for choosing N_DUP;
//! * [`collsel`] — fitting a collective-algorithm selector from
//!   algorithm-sweep measurements (the same empirical tuning applied to
//!   the collective algorithm choice itself);
//! * [`model`] — the α–β cost models of §V-A;
//! * [`backend`] — the [`Communicator`]/[`RankHandle`] traits that make
//!   all of the above generic over the runtime backend (virtual-time
//!   simulator or the `ovcomm-rt` wall-clock runtime).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod autotune;
pub mod backend;
pub mod chunk;
pub mod collsel;
pub mod model;
pub mod ndup;
pub mod pipeline;
pub mod ppn;
pub mod tuning;

pub use autotune::{AutoTuner, MeasuredCurve};
pub use backend::{Communicator, RankHandle, Window};
pub use chunk::ChunkPlan;
pub use collsel::{fit_selector, AlgoSample};
pub use model::{block_bytes, AlphaBeta};
pub use ndup::NDupComms;
pub use pipeline::{
    overlapped_allreduce, overlapped_bcast, overlapped_isend, overlapped_recv, overlapped_reduce,
    pipelined_reduce_bcast,
};
pub use ppn::{run_stage, StagePlan};
pub use tuning::{best_n_dup_by_condition, n_dup_by_threshold, satisfies_overlap_condition};
