//! Fitting a collective-algorithm selector from sweep measurements.
//!
//! The paper's auto-tuning story (§III-A) picks N_DUP from a measured
//! bandwidth curve; the same empirical approach extends to the collective
//! algorithm choice itself. An algorithm sweep (the bench harness's
//! `algo_sweep` binary) measures every [`CollAlgo`] of each collective at
//! several message sizes, and [`fit_selector`] turns those samples into a
//! [`CollSelector`]: per-collective short/long thresholds at the measured
//! crossover point between the short-message algorithm and the best
//! long-message one.

use ovcomm_simmpi::{CollAlgo, CollKind, CollSelector};

/// One measured point of an algorithm sweep.
#[derive(Debug, Clone)]
pub struct AlgoSample {
    /// Which algorithm was forced.
    pub algo: CollAlgo,
    /// Communicator size.
    pub p: usize,
    /// Logical payload bytes.
    pub n: usize,
    /// Measured (virtual) completion time in seconds.
    pub seconds: f64,
}

/// The short-message algorithm of a collective, whose crossover against
/// the long-message alternatives defines the fitted threshold.
fn short_algo(kind: CollKind) -> Option<CollAlgo> {
    match kind {
        CollKind::Bcast => Some(CollAlgo::BcastBinomial),
        CollKind::Reduce => Some(CollAlgo::ReduceBinomial),
        CollKind::Allreduce => Some(CollAlgo::AllreduceRecursiveDoubling),
        CollKind::Gather => Some(CollAlgo::GatherBinomial),
        _ => None,
    }
}

/// Fit per-collective short/long thresholds from sweep samples: for each
/// collective with a threshold, the fitted value is the largest sampled
/// size at which the short-message algorithm is still the fastest
/// (averaged over sampled communicator sizes). Collectives with no
/// samples, or where the short algorithm always wins, keep a threshold of
/// `usize::MAX`; where it never wins, the threshold is 0 (always long).
/// The pow2-vs-ring arbitration among long algorithms stays with the
/// selector's built-in rules.
pub fn fit_selector(samples: &[AlgoSample]) -> CollSelector {
    let mut sel = CollSelector::default();
    for kind in [
        CollKind::Bcast,
        CollKind::Reduce,
        CollKind::Allreduce,
        CollKind::Gather,
    ] {
        let Some(short) = short_algo(kind) else {
            continue;
        };
        let of_kind: Vec<&AlgoSample> = samples
            .iter()
            .filter(|s| s.algo.kind() == kind && s.seconds.is_finite() && s.seconds > 0.0)
            .collect();
        if of_kind.is_empty() {
            continue;
        }
        // Mean time per (algo, n) across communicator sizes.
        let mut sizes: Vec<usize> = of_kind.iter().map(|s| s.n).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let mean = |algo: CollAlgo, n: usize| -> Option<f64> {
            let ts: Vec<f64> = of_kind
                .iter()
                .filter(|s| s.algo == algo && s.n == n)
                .map(|s| s.seconds)
                .collect();
            if ts.is_empty() {
                None
            } else {
                Some(ts.iter().sum::<f64>() / ts.len() as f64)
            }
        };
        let short_wins = |n: usize| -> Option<bool> {
            let t_short = mean(short, n)?;
            let best_long = CollAlgo::for_kind(kind)
                .into_iter()
                .filter(|&a| a != short)
                .filter_map(|a| mean(a, n))
                .fold(f64::INFINITY, f64::min);
            if best_long.is_finite() {
                Some(t_short <= best_long)
            } else {
                None
            }
        };
        // Largest size where the short algorithm still wins; `usize::MAX`
        // if it wins everywhere sampled, 0 if nowhere.
        let mut threshold: Option<usize> = None;
        let mut decided = false;
        for &n in sizes.iter().rev() {
            match short_wins(n) {
                Some(true) => {
                    // Everything at or below the first winning size (from
                    // the top) is treated as short.
                    threshold = Some(if decided { n } else { usize::MAX });
                    break;
                }
                Some(false) => decided = true,
                None => {}
            }
        }
        let fitted = match threshold {
            Some(t) => t,
            None if decided => 0,
            None => continue, // no comparable samples: keep the default
        };
        match kind {
            CollKind::Bcast => sel.bcast_large = fitted,
            CollKind::Reduce => sel.reduce_large = fitted,
            CollKind::Allreduce => sel.allreduce_large = fitted,
            CollKind::Gather => sel.gather_large = fitted,
            _ => {}
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(algo: CollAlgo, n: usize, seconds: f64) -> AlgoSample {
        AlgoSample {
            algo,
            p: 8,
            n,
            seconds,
        }
    }

    #[test]
    fn crossover_is_found() {
        // Binomial wins at 1 KiB and 16 KiB, loses at 256 KiB and 4 MiB.
        let samples = vec![
            s(CollAlgo::BcastBinomial, 1024, 1.0),
            s(CollAlgo::BcastScatterAllgather, 1024, 3.0),
            s(CollAlgo::BcastBinomial, 16 << 10, 2.0),
            s(CollAlgo::BcastScatterAllgather, 16 << 10, 2.5),
            s(CollAlgo::BcastBinomial, 256 << 10, 9.0),
            s(CollAlgo::BcastScatterAllgather, 256 << 10, 5.0),
            s(CollAlgo::BcastBinomial, 4 << 20, 40.0),
            s(CollAlgo::BcastScatterAllgather, 4 << 20, 12.0),
        ];
        let sel = fit_selector(&samples);
        assert_eq!(sel.bcast_large, 16 << 10);
        // Unsampled collectives keep their defaults.
        assert_eq!(sel.allreduce_large, ovcomm_simmpi::collsel::DEFAULT_LARGE);
    }

    #[test]
    fn short_always_winning_means_no_long_switch() {
        let samples = vec![
            s(CollAlgo::GatherBinomial, 1024, 1.0),
            s(CollAlgo::GatherLinear, 1024, 2.0),
            s(CollAlgo::GatherBinomial, 4 << 20, 3.0),
            s(CollAlgo::GatherLinear, 4 << 20, 4.0),
        ];
        let sel = fit_selector(&samples);
        assert_eq!(sel.gather_large, usize::MAX);
    }

    #[test]
    fn long_always_winning_means_threshold_zero() {
        let samples = vec![
            s(CollAlgo::ReduceBinomial, 1024, 5.0),
            s(CollAlgo::ReduceRing, 1024, 1.0),
        ];
        let sel = fit_selector(&samples);
        assert_eq!(sel.reduce_large, 0);
    }
}
