//! Choosing N_DUP (§III-A).
//!
//! The paper gives a necessary condition for nonblocking overlap to further
//! utilize bandwidth:
//!
//! ```text
//! N_DUP · f_BW(n / N_DUP)  ≥  f_BW(n)
//! ```
//!
//! and a simpler rule of thumb: keep `n / N_DUP ≥ n_t`, where `n_t` is the
//! message size at which `f_BW` approaches the achievable bandwidth
//! (machine-dependent, usually 16 KB ≤ n_t ≤ 1 MB).

/// Measured or modeled effective-bandwidth curve: bytes → bytes/second.
pub trait BandwidthCurve {
    /// Effective bandwidth at message size `n`.
    fn bw(&self, n: usize) -> f64;
}

impl<F: Fn(usize) -> f64> BandwidthCurve for F {
    fn bw(&self, n: usize) -> f64 {
        self(n)
    }
}

/// The paper's necessary condition: does splitting `n` bytes into `n_dup`
/// pipelined parts still offer at least the single-message bandwidth?
pub fn satisfies_overlap_condition(curve: &impl BandwidthCurve, n: usize, n_dup: usize) -> bool {
    assert!(n_dup >= 1);
    if n == 0 {
        return true;
    }
    let chunk = (n / n_dup).max(1);
    n_dup as f64 * curve.bw(chunk) >= curve.bw(n)
}

/// The largest N_DUP in `1..=max_n_dup` that satisfies the overlap
/// condition (checked cumulatively from 1 upward; returns the last value
/// that still passes).
pub fn best_n_dup_by_condition(curve: &impl BandwidthCurve, n: usize, max_n_dup: usize) -> usize {
    let mut best = 1;
    for d in 1..=max_n_dup {
        if satisfies_overlap_condition(curve, n, d) {
            best = d;
        }
    }
    best
}

/// The simpler threshold rule: the largest N_DUP keeping chunks at or above
/// `n_t` bytes (at least 1, at most `max_n_dup`). The paper uses N_DUP = 4
/// as its default operating point.
pub fn n_dup_by_threshold(n: usize, n_t: usize, max_n_dup: usize) -> usize {
    assert!(n_t >= 1 && max_n_dup >= 1);
    (n / n_t).clamp(1, max_n_dup)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A saturating curve like the paper's Fig. 3: bw(n) = R·n/(n+h).
    fn curve(r: f64, h: f64) -> impl BandwidthCurve {
        move |n: usize| r * n as f64 / (n as f64 + h)
    }

    #[test]
    fn saturating_curves_always_satisfy_condition() {
        // For bw(m) = R·m/(m+h), N·bw(n/N) = n/(h/R·1 + n/(N·R))·… ≥ bw(n):
        // pipelining a saturating curve never loses bandwidth. The paper's
        // warning targets curves with protocol steps (below).
        let c = curve(12e9, 200_000.0);
        for n in [4 * 1024, 64 * 1024, 16 << 20] {
            for d in [2, 4, 16] {
                assert!(satisfies_overlap_condition(&c, n, d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn protocol_step_curves_fail_condition_for_small_chunks() {
        // A curve with an eager→rendezvous protocol step: tiny messages get
        // terrible bandwidth, so splitting a 64 KB message 16 ways (4 KB
        // chunks) lands every chunk below the step and loses badly.
        let step = |n: usize| {
            if n < 8 * 1024 {
                n as f64 * 1e4 // latency-bound regime
            } else {
                12e9 * n as f64 / (n as f64 + 1e5)
            }
        };
        assert!(!satisfies_overlap_condition(&step, 64 * 1024, 16));
        // Chunks that stay above the step are fine.
        assert!(satisfies_overlap_condition(&step, 64 * 1024, 4));
        assert!(satisfies_overlap_condition(&step, 16 << 20, 16));
    }

    #[test]
    fn threshold_rule_matches_paper_ranges() {
        // 27.89 MB messages (1hsg_70 blocks) with n_t = 1 MB: chunks stay
        // well above threshold for N_DUP ≤ 16.
        let n = 27_890_000;
        assert_eq!(n_dup_by_threshold(n, 1 << 20, 16), 16);
        assert_eq!(n_dup_by_threshold(n, 1 << 20, 4), 4);
        // 100 KB messages with n_t = 64 KB: only 1 chunk.
        assert_eq!(n_dup_by_threshold(100_000, 64 * 1024, 16), 1);
    }

    #[test]
    fn best_by_condition_grows_with_message_size() {
        let with_latency = |n: usize| {
            let t = 1e-5 + n as f64 / 12e9;
            n as f64 / t
        };
        let small = best_n_dup_by_condition(&with_latency, 64 * 1024, 16);
        let large = best_n_dup_by_condition(&with_latency, 16 << 20, 16);
        assert!(small <= large);
        assert!(large >= 4);
    }
}
