//! The backend abstraction: one communication surface, two runtimes.
//!
//! Everything above the message-passing layer — the N_DUP pipelined
//! drivers, the process meshes, SUMMA/SymmSquareCube, purification — is
//! written against two traits instead of concrete simulator types:
//!
//! * [`Communicator`] — the MPI-like per-rank communicator handle:
//!   dup/split, point-to-point, requests with wait/test, and the blocking
//!   and nonblocking collectives;
//! * [`RankHandle`] — the per-rank execution context: identity, clock,
//!   modeled compute, tracing, and the world communicator.
//!
//! Two backends implement them:
//!
//! * the **virtual-time simulator** (`ovcomm-simmpi`) — deterministic,
//!   models time analytically, implemented in this module for
//!   [`ovcomm_simmpi::Comm`] / [`ovcomm_simmpi::RankCtx`];
//! * the **wall-clock runtime** (`ovcomm-rt`) — ranks are real OS threads
//!   moving real payloads through shared memory; it implements the same
//!   traits in its own crate.
//!
//! Both backends share the *concrete* [`Payload`] and [`Request`] types
//! (a request is backend-agnostic: a completion flag, a value slot, and
//! waiter cells), so the traits need no associated request machinery and
//! generic code reads exactly like the direct simulator code it replaced.
//! Default type parameters (`NDupComms<C = Comm>`, `Mesh3D<C = Comm>`)
//! keep existing simulator call sites source-compatible.

use ovcomm_simmpi::{Comm, Payload, RankCtx, Request};
use ovcomm_simnet::{MachineProfile, NodeMap, SimDur, SimTime, SpanKind};

/// An MPI-like communicator handle, generic over the runtime backend.
///
/// Semantics follow `ovcomm_simmpi::Comm` (its methods document the
/// contract): no wildcard receives, `f64`-sum reductions, owned payloads,
/// and collective calls made by every member in the same order.
pub trait Communicator: Clone + Send + Sync + Sized + 'static {
    // -- identity -----------------------------------------------------

    /// Number of ranks in this communicator.
    fn size(&self) -> usize;
    /// This rank's index within the communicator.
    fn rank(&self) -> usize;
    /// World rank of communicator index `idx`.
    fn world_rank(&self, idx: usize) -> usize;

    // -- communicator management --------------------------------------

    /// Duplicate: a new context over the same group (all members call in
    /// the same order).
    fn dup(&self) -> Self;
    /// `n` duplicates (the N_DUP bundles of the overlap technique).
    fn dup_n(&self, n: usize) -> Vec<Self> {
        (0..n).map(|_| self.dup()).collect()
    }
    /// Split by color/key (like `MPI_Comm_split`); negative colors get
    /// `None`. Synchronizes all members.
    fn split(&self, color: i64, key: u64) -> Option<Self>;

    // -- point-to-point -----------------------------------------------

    /// Nonblocking send to communicator rank `dst`.
    fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()>;
    /// Nonblocking receive from communicator rank `src`.
    fn irecv(&self, src: usize, tag: u32) -> Request<Payload>;
    /// Blocking send.
    fn send(&self, dst: usize, tag: u32, payload: Payload);
    /// Blocking receive.
    fn recv(&self, src: usize, tag: u32) -> Payload;
    /// Blocking concurrent send+receive (`MPI_Sendrecv`).
    fn sendrecv(&self, dst: usize, src: usize, tag: u32, payload: Payload) -> Payload;

    // -- requests -----------------------------------------------------

    /// Wait for a request (`MPI_Wait`).
    fn wait<T>(&self, req: &Request<T>) -> T;
    /// Wait, recording a `Wait` trace span with `label`.
    fn wait_traced<T>(&self, req: &Request<T>, label: &str) -> T;
    /// Wait, recording a `Wait` span tagged with a pipeline chunk index.
    fn wait_traced_chunk<T>(&self, req: &Request<T>, label: &str, chunk: u32) -> T;
    /// Nonblocking completion probe (`MPI_Test`).
    fn test<T>(&self, req: &Request<T>) -> bool;
    /// Wait for all requests in order (`MPI_Waitall` for sends).
    fn wait_all(&self, reqs: &[Request<()>]) {
        for r in reqs {
            self.wait(r);
        }
    }
    /// Wait for all requests in order, returning their values.
    fn wait_all_payloads<T>(&self, reqs: &[Request<T>]) -> Vec<T> {
        reqs.iter().map(|r| self.wait(r)).collect()
    }

    // -- blocking collectives -----------------------------------------

    /// Blocking broadcast from `root` (`data` must be `Some` at the root).
    fn bcast(&self, root: usize, data: Option<Payload>, len: usize) -> Payload;
    /// Blocking sum-reduction to `root`; `Some` at the root.
    fn reduce(&self, root: usize, contrib: Payload) -> Option<Payload>;
    /// Blocking sum-allreduce.
    fn allreduce(&self, contrib: Payload) -> Payload;
    /// Blocking barrier.
    fn barrier(&self);
    /// Blocking scatter of `len` bytes from `root`.
    fn scatter(&self, root: usize, data: Option<Payload>, len: usize) -> Payload;
    /// Blocking gather (inverse of scatter); `Some` at the root.
    fn gather(&self, root: usize, chunk: Payload, len: usize) -> Option<Payload>;
    /// Blocking allgather; `len` is the assembled size.
    fn allgather(&self, chunk: Payload, len: usize) -> Payload;

    // -- nonblocking collectives --------------------------------------

    /// Nonblocking broadcast (`MPI_Ibcast`).
    fn ibcast(&self, root: usize, data: Option<Payload>, len: usize) -> Request<Payload>;
    /// Nonblocking reduction (`MPI_Ireduce`); root's request yields `Some`.
    fn ireduce(&self, root: usize, contrib: Payload) -> Request<Option<Payload>>;
    /// Nonblocking allreduce (`MPI_Iallreduce`).
    fn iallreduce(&self, contrib: Payload) -> Request<Payload>;
    /// Nonblocking barrier (`MPI_Ibarrier`).
    fn ibarrier(&self) -> Request<()>;

    // -- one-sided (RMA) ----------------------------------------------

    /// This backend's one-sided window type.
    type Win: Window;
    /// Collective: every member exposes `local` as its window segment and
    /// gets back a [`Window`] handle over all segments (like
    /// `MPI_Win_create`). The window starts outside any epoch — call
    /// [`Window::fence`] to open the first access epoch, or take a
    /// passive-target [`Window::lock`].
    fn win_create(&self, local: Payload) -> Self::Win;
}

/// A one-sided RMA window, generic over the runtime backend: every member
/// of the creating communicator exposes a byte segment; any member reads
/// (`get`), writes (`put`) or sum-accumulates (`accumulate`) any segment
/// without the target posting anything.
///
/// Synchronization is epoch-based and identical on both backends:
///
/// * **Active target:** [`Window::fence`] is collective; it closes the
///   current epoch (all puts/accumulates staged during it are applied to
///   the target segments, in deterministic `(origin rank, post order)`
///   order) and opens the next. Gets read the *committed* segment state,
///   which is stable within an epoch — so results are bit-identical
///   across backends.
/// * **Passive target:** [`Window::lock`]`/`[`Window::unlock`] bracket an
///   epoch against a single target; staged operations apply at unlock,
///   and the lock serializes origins.
///
/// Overlapping conflicting accesses inside one epoch (put/put, put/get,
/// put/accumulate) are flagged by the verifier (`rma-conflict`);
/// accumulate/accumulate commutes and is allowed.
pub trait Window {
    /// Number of ranks spanning the window (the creating communicator's
    /// size).
    fn size(&self) -> usize;
    /// This rank's index within the window.
    fn rank(&self) -> usize;
    /// Byte length of `rank`'s exposed segment.
    fn segment_len(&self, rank: usize) -> usize;
    /// One-sided write of `data` into `target`'s segment at byte `offset`.
    /// Applied when the epoch closes (fence or unlock); the call returns
    /// immediately and the origin buffer is reusable.
    fn put(&self, target: usize, offset: usize, data: Payload);
    /// One-sided read of `len` bytes from `target`'s segment at `offset`.
    /// The request completes with the data once the transfer lands; it
    /// reads the committed (epoch-stable) segment state.
    fn get(&self, target: usize, offset: usize, len: usize) -> Request<Payload>;
    /// One-sided element-wise `f64` sum of `data` into `target`'s segment
    /// at byte `offset` (8-aligned). Applied at epoch close in
    /// deterministic origin order.
    fn accumulate(&self, target: usize, offset: usize, data: Payload);
    /// Wait for a [`Window::get`] request and take its payload.
    fn wait(&self, req: &Request<Payload>) -> Payload;
    /// Active-target epoch boundary (collective, like `MPI_Win_fence`):
    /// completes all outstanding transfers, applies staged operations to
    /// every segment, and opens the next epoch.
    fn fence(&self);
    /// Acquire the passive-target lock on `target`'s segment (exclusive;
    /// blocks until granted).
    fn lock(&self, target: usize);
    /// Release the passive-target lock on `target`, applying this origin's
    /// staged operations to the segment first.
    fn unlock(&self, target: usize);
    /// Snapshot of this rank's committed local segment.
    fn local(&self) -> Payload;
    /// Collective: tear the window down (like `MPI_Win_free`). Dropping a
    /// window without calling this is reported by the verifier as a
    /// `win-leak`.
    fn free(self);
}

/// The per-rank execution context, generic over the runtime backend:
/// identity and topology, the rank's clock (virtual or wall), modeled
/// compute charging, sleep, tracing, and the world communicator.
pub trait RankHandle {
    /// The backend's communicator type.
    type Comm: Communicator;

    /// World rank of this process.
    fn rank(&self) -> usize;
    /// Total number of ranks.
    fn nranks(&self) -> usize;
    /// Node hosting this rank.
    fn node(&self) -> usize;
    /// Number of ranks sharing this rank's node.
    fn ppn(&self) -> usize;
    /// Processes per node to use for compute-rate models (launched PPN, or
    /// the override set by [`RankHandle::set_active_ppn`]).
    fn compute_ppn(&self) -> usize;
    /// Declare how many of this node's processes are actually computing
    /// (0 restores the default).
    fn set_active_ppn(&self, active: usize);
    /// The world communicator (all ranks).
    fn world(&self) -> Self::Comm;
    /// This rank's clock. Virtual time on the simulator; wall-clock
    /// nanoseconds since the run's epoch on the real runtime.
    fn now(&self) -> SimTime;
    /// Charge modeled local computation time (a clock bump on the
    /// simulator; the real runtime skips or emulates it per its compute
    /// mode).
    fn advance(&self, d: SimDur);
    /// Charge `flops` of dense-kernel computation at `rate` flop/s.
    fn compute_flops(&self, flops: f64, rate: f64);
    /// Sleep for `d` (the `usleep` of the sleep/poll mechanism, §III-B).
    fn sleep(&self, d: SimDur);
    /// The machine profile (for compute-rate lookups).
    fn profile(&self) -> &MachineProfile;
    /// The rank→node map.
    fn nodemap(&self) -> &NodeMap;
    /// Record a custom trace span.
    fn trace_span(&self, kind: SpanKind, start: SimTime, end: SimTime, label: String);
    /// Record a custom trace span tagged with a pipeline chunk index.
    fn trace_span_chunk(
        &self,
        kind: SpanKind,
        chunk: u32,
        start: SimTime,
        end: SimTime,
        label: String,
    );
    /// Record a `Phase` span from `start` to now.
    fn phase_span(&self, start: SimTime, label: String);
    /// `"sim"` or `"rt"` — recorded into metrics/bench output so every
    /// result names the backend that produced it.
    fn backend_name(&self) -> &'static str;
}

// ---------------------------------------------------------------------
// Virtual-time simulator backend
// ---------------------------------------------------------------------

impl Communicator for Comm {
    fn size(&self) -> usize {
        Comm::size(self)
    }
    fn rank(&self) -> usize {
        Comm::rank(self)
    }
    fn world_rank(&self, idx: usize) -> usize {
        Comm::world_rank(self, idx)
    }
    fn dup(&self) -> Self {
        Comm::dup(self)
    }
    fn dup_n(&self, n: usize) -> Vec<Self> {
        Comm::dup_n(self, n)
    }
    fn split(&self, color: i64, key: u64) -> Option<Self> {
        Comm::split(self, color, key)
    }
    fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()> {
        Comm::isend(self, dst, tag, payload)
    }
    fn irecv(&self, src: usize, tag: u32) -> Request<Payload> {
        Comm::irecv(self, src, tag)
    }
    fn send(&self, dst: usize, tag: u32, payload: Payload) {
        Comm::send(self, dst, tag, payload)
    }
    fn recv(&self, src: usize, tag: u32) -> Payload {
        Comm::recv(self, src, tag)
    }
    fn sendrecv(&self, dst: usize, src: usize, tag: u32, payload: Payload) -> Payload {
        Comm::sendrecv(self, dst, src, tag, payload)
    }
    fn wait<T>(&self, req: &Request<T>) -> T {
        Comm::wait(self, req)
    }
    fn wait_traced<T>(&self, req: &Request<T>, label: &str) -> T {
        Comm::wait_traced(self, req, label)
    }
    fn wait_traced_chunk<T>(&self, req: &Request<T>, label: &str, chunk: u32) -> T {
        Comm::wait_traced_chunk(self, req, label, chunk)
    }
    fn test<T>(&self, req: &Request<T>) -> bool {
        Comm::test(self, req)
    }
    fn wait_all(&self, reqs: &[Request<()>]) {
        Comm::wait_all(self, reqs)
    }
    fn wait_all_payloads<T>(&self, reqs: &[Request<T>]) -> Vec<T> {
        Comm::wait_all_payloads(self, reqs)
    }
    fn bcast(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        Comm::bcast(self, root, data, len)
    }
    fn reduce(&self, root: usize, contrib: Payload) -> Option<Payload> {
        Comm::reduce(self, root, contrib)
    }
    fn allreduce(&self, contrib: Payload) -> Payload {
        Comm::allreduce(self, contrib)
    }
    fn barrier(&self) {
        Comm::barrier(self)
    }
    fn scatter(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        Comm::scatter(self, root, data, len)
    }
    fn gather(&self, root: usize, chunk: Payload, len: usize) -> Option<Payload> {
        Comm::gather(self, root, chunk, len)
    }
    fn allgather(&self, chunk: Payload, len: usize) -> Payload {
        Comm::allgather(self, chunk, len)
    }
    fn ibcast(&self, root: usize, data: Option<Payload>, len: usize) -> Request<Payload> {
        Comm::ibcast(self, root, data, len)
    }
    fn ireduce(&self, root: usize, contrib: Payload) -> Request<Option<Payload>> {
        Comm::ireduce(self, root, contrib)
    }
    fn iallreduce(&self, contrib: Payload) -> Request<Payload> {
        Comm::iallreduce(self, contrib)
    }
    fn ibarrier(&self) -> Request<()> {
        Comm::ibarrier(self)
    }
    type Win = ovcomm_simmpi::SimWin;
    fn win_create(&self, local: Payload) -> ovcomm_simmpi::SimWin {
        Comm::win_create(self, local)
    }
}

impl Window for ovcomm_simmpi::SimWin {
    fn size(&self) -> usize {
        ovcomm_simmpi::SimWin::size(self)
    }
    fn rank(&self) -> usize {
        ovcomm_simmpi::SimWin::rank(self)
    }
    fn segment_len(&self, rank: usize) -> usize {
        ovcomm_simmpi::SimWin::segment_len(self, rank)
    }
    fn put(&self, target: usize, offset: usize, data: Payload) {
        ovcomm_simmpi::SimWin::put(self, target, offset, data)
    }
    fn get(&self, target: usize, offset: usize, len: usize) -> Request<Payload> {
        ovcomm_simmpi::SimWin::get(self, target, offset, len)
    }
    fn accumulate(&self, target: usize, offset: usize, data: Payload) {
        ovcomm_simmpi::SimWin::accumulate(self, target, offset, data)
    }
    fn wait(&self, req: &Request<Payload>) -> Payload {
        ovcomm_simmpi::SimWin::wait(self, req)
    }
    fn fence(&self) {
        ovcomm_simmpi::SimWin::fence(self)
    }
    fn lock(&self, target: usize) {
        ovcomm_simmpi::SimWin::lock(self, target)
    }
    fn unlock(&self, target: usize) {
        ovcomm_simmpi::SimWin::unlock(self, target)
    }
    fn local(&self) -> Payload {
        ovcomm_simmpi::SimWin::local(self)
    }
    fn free(self) {
        ovcomm_simmpi::SimWin::free(self)
    }
}

impl RankHandle for RankCtx {
    type Comm = Comm;

    fn rank(&self) -> usize {
        RankCtx::rank(self)
    }
    fn nranks(&self) -> usize {
        RankCtx::nranks(self)
    }
    fn node(&self) -> usize {
        RankCtx::node(self)
    }
    fn ppn(&self) -> usize {
        RankCtx::ppn(self)
    }
    fn compute_ppn(&self) -> usize {
        RankCtx::compute_ppn(self)
    }
    fn set_active_ppn(&self, active: usize) {
        RankCtx::set_active_ppn(self, active)
    }
    fn world(&self) -> Comm {
        RankCtx::world(self)
    }
    fn now(&self) -> SimTime {
        RankCtx::now(self)
    }
    fn advance(&self, d: SimDur) {
        RankCtx::advance(self, d)
    }
    fn compute_flops(&self, flops: f64, rate: f64) {
        RankCtx::compute_flops(self, flops, rate)
    }
    fn sleep(&self, d: SimDur) {
        RankCtx::sleep(self, d)
    }
    fn profile(&self) -> &MachineProfile {
        RankCtx::profile(self)
    }
    fn nodemap(&self) -> &NodeMap {
        RankCtx::nodemap(self)
    }
    fn trace_span(&self, kind: SpanKind, start: SimTime, end: SimTime, label: String) {
        RankCtx::trace_span(self, kind, start, end, label)
    }
    fn trace_span_chunk(
        &self,
        kind: SpanKind,
        chunk: u32,
        start: SimTime,
        end: SimTime,
        label: String,
    ) {
        RankCtx::trace_span_chunk(self, kind, chunk, start, end, label)
    }
    fn phase_span(&self, start: SimTime, label: String) {
        RankCtx::phase_span(self, start, label)
    }
    fn backend_name(&self) -> &'static str {
        "sim"
    }
}
