//! α–β cost models from §V-A of the paper.
//!
//! For long messages the paper assumes recursive doubling for broadcast and
//! Rabenseifner's algorithm for reduction:
//!
//! ```text
//! T_Bcast  = α (log p + p − 1) + 2 β (p − 1) n / p
//! T_Reduce = 2 α log p         + 2 β (p − 1) n / p
//! T_P2P    = α + n β
//! T_baseline = 2 (T_P2P + T_Reduce) + 3 T_Bcast
//! ```
//!
//! With p = 4, n = 27.89 MB, β = 1/12000 MB/s, the paper computes
//! `T_baseline = 0.02208 s` against a measured 0.07312 s — i.e. the machine
//! achieves only 30.19 % of peak, which is the motivation for overlapping
//! communications. The same numbers fall out of these functions (tested
//! below), and the bench harness compares them with the simulator.

/// α–β machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct AlphaBeta {
    /// Per-message latency (seconds).
    pub alpha: f64,
    /// Per-byte transfer time (seconds) — inverse bandwidth.
    pub beta: f64,
}

impl AlphaBeta {
    /// The paper's §V-A parameters: latency ignored (large-message
    /// analysis), 12 000 MB/s peak bandwidth.
    pub fn paper_sec5a() -> AlphaBeta {
        AlphaBeta {
            alpha: 0.0,
            beta: 1.0 / 12_000e6,
        }
    }

    /// Point-to-point time for `n` bytes.
    pub fn t_p2p(&self, n: f64) -> f64 {
        self.alpha + n * self.beta
    }

    /// Broadcast time over `p` processes for `n` bytes.
    pub fn t_bcast(&self, p: usize, n: f64) -> f64 {
        let pf = p as f64;
        self.alpha * ((pf).log2() + pf - 1.0) + 2.0 * self.beta * (pf - 1.0) * n / pf
    }

    /// Reduction time over `p` processes for `n` bytes.
    pub fn t_reduce(&self, p: usize, n: f64) -> f64 {
        let pf = p as f64;
        2.0 * self.alpha * pf.log2() + 2.0 * self.beta * (pf - 1.0) * n / pf
    }

    /// Communication time of the baseline SymmSquareCube (Algorithm 4):
    /// three broadcasts, two reductions, two point-to-point hand-backs
    /// of one block each.
    pub fn t_baseline_symm_square_cube(&self, p: usize, block_bytes: f64) -> f64 {
        2.0 * (self.t_p2p(block_bytes) + self.t_reduce(p, block_bytes))
            + 3.0 * self.t_bcast(p, block_bytes)
    }
}

/// The message (block) size of an N×N matrix on a p×p×p mesh: the largest
/// block is ⌈N/p⌉², 8 bytes per element — §V-A's 27.89 MB for 1hsg_70.
pub fn block_bytes(n_dim: usize, p: usize) -> f64 {
    let b = n_dim.div_ceil(p) as f64;
    b * b * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sec5a_numbers_reproduce() {
        // p³ = 64 ⇒ p = 4; N = 7645 ⇒ block 1912² ⇒ 27.89 MBize.
        let ab = AlphaBeta::paper_sec5a();
        let n = block_bytes(7645, 4);
        assert!(
            (n / 1e6 - 29.24).abs() < 0.1,
            "block ≈ 29.24 MB decimal ({n})"
        );
        // The paper quotes 27.89 MB using binary MB; both feed the same β.
        let t_p2p = ab.t_p2p(n);
        let t_bcast = ab.t_bcast(4, n);
        let t_reduce = ab.t_reduce(4, n);
        assert!((t_p2p - 2.437e-3).abs() < 2e-4, "t_p2p {t_p2p}");
        assert!((t_bcast - 3.655e-3).abs() < 3e-4, "t_bcast {t_bcast}");
        assert!((t_reduce - t_bcast).abs() < 1e-9, "α=0 ⇒ equal β terms");
        let t = ab.t_baseline_symm_square_cube(4, n);
        // Paper: 0.02208 s (with its binary-MB rounding; we land within 5%).
        assert!((t - 0.02208).abs() < 0.0015, "t_baseline {t}");
    }

    #[test]
    fn alpha_terms_matter_for_small_messages() {
        let ab = AlphaBeta {
            alpha: 1e-5,
            beta: 1.0 / 12e9,
        };
        let tiny = ab.t_bcast(16, 8.0);
        // Dominated by latency: (log2 16 + 15)·α = 19·10us
        assert!((tiny - 19e-5).abs() < 1e-6);
    }

    #[test]
    fn block_bytes_anchor() {
        // 1912² × 8 bytes = 29.24 MB (decimal) = 27.89 MiB — the paper's
        // quoted "27.89 MB".
        let b = block_bytes(7645, 4);
        assert!((b / (1024.0 * 1024.0) - 27.89).abs() < 0.01);
    }
}
