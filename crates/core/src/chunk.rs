//! Chunk plans: the contiguous N_DUP division of a payload.
//!
//! §III-A of the paper: "data to be communicated is divided into multiple
//! parts and communicated using separate MPI communicators". Chunks are
//! contiguous (the paper warns that repacking costs can cancel the benefit
//! of overlap) and 8-byte aligned so `f64` elements never split.

use ovcomm_simmpi::Payload;

/// A contiguous, aligned partition of `n` bytes into `n_dup` chunks.
///
/// ```
/// use ovcomm_core::ChunkPlan;
/// use ovcomm_simmpi::Payload;
///
/// let payload = Payload::from_f64s(&[0.0, 1.0, 2.0, 3.0, 4.0]);
/// let plan = ChunkPlan::new(payload.len(), 2);
/// let chunks: Vec<Payload> = (0..2).map(|c| plan.slice(&payload, c)).collect();
/// assert_eq!(chunks[0].len() + chunks[1].len(), 40);
/// assert_eq!(plan.concat(&chunks).to_f64s(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    bounds: Vec<usize>,
}

impl ChunkPlan {
    /// Plan for `n` bytes in `n_dup` chunks. Chunks are balanced, 8-byte
    /// aligned (except possibly the last), and cover `n` exactly.
    pub fn new(n: usize, n_dup: usize) -> ChunkPlan {
        assert!(n_dup >= 1, "N_DUP must be at least 1");
        let quantum = 8usize;
        let elems = n / quantum;
        let rem = n - elems * quantum;
        let base = elems / n_dup;
        let extra = elems % n_dup;
        let mut bounds = Vec::with_capacity(n_dup + 1);
        bounds.push(0);
        let mut off = 0;
        for i in 0..n_dup {
            off += (base + usize::from(i < extra)) * quantum;
            bounds.push(off);
        }
        if let Some(last) = bounds.last_mut() {
            *last += rem;
        }
        debug_assert_eq!(bounds.last().copied(), Some(n));
        ChunkPlan { bounds }
    }

    /// Number of chunks.
    pub fn n_dup(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.bounds.last().copied().unwrap_or(0)
    }

    /// (start, end) byte offsets of chunk `c`.
    pub fn range(&self, c: usize) -> (usize, usize) {
        (self.bounds[c], self.bounds[c + 1])
    }

    /// Byte length of chunk `c`.
    pub fn len(&self, c: usize) -> usize {
        self.bounds[c + 1] - self.bounds[c]
    }

    /// True iff the plan covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Zero-copy view of chunk `c` of `payload` (which must have exactly
    /// `total()` bytes).
    pub fn slice(&self, payload: &Payload, c: usize) -> Payload {
        let _ = &payload; // lifetimes: Payload slicing is by value (refcount)
        assert_eq!(payload.len(), self.total(), "payload does not match plan");
        let (s, e) = self.range(c);
        payload.slice(s, e)
    }

    /// Split an optional payload (present only on roots) into per-chunk
    /// options.
    pub fn split_opt(&self, payload: Option<&Payload>) -> Vec<Option<Payload>> {
        (0..self.n_dup())
            .map(|c| payload.map(|p| self.slice(p, c)))
            .collect()
    }

    /// Reassemble chunks (in order) into the full payload.
    pub fn concat(&self, chunks: &[Payload]) -> Payload {
        assert_eq!(chunks.len(), self.n_dup(), "wrong number of chunks");
        for (c, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.len(), self.len(c), "chunk {c} has wrong length");
        }
        Payload::concat(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_exactly_and_aligned() {
        for (n, d) in [(100usize, 4usize), (1 << 20, 6), (24, 5), (0, 3), (7, 2)] {
            let plan = ChunkPlan::new(n, d);
            assert_eq!(plan.total(), n);
            assert_eq!(plan.n_dup(), d);
            let mut covered = 0;
            for c in 0..d {
                let (s, e) = plan.range(c);
                assert_eq!(s, covered);
                covered = e;
                if c + 1 < d {
                    assert_eq!(e % 8, 0, "interior boundary must be aligned");
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let p = Payload::from_f64s(&data);
        let plan = ChunkPlan::new(p.len(), 3);
        let chunks: Vec<Payload> = (0..3).map(|c| plan.slice(&p, c)).collect();
        assert_eq!(plan.concat(&chunks).to_f64s(), data);
    }

    #[test]
    fn phantom_chunks() {
        let p = Payload::Phantom(1000);
        let plan = ChunkPlan::new(1000, 4);
        let total: usize = (0..4).map(|c| plan.slice(&p, c).len()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn split_opt_roots_only() {
        let plan = ChunkPlan::new(32, 2);
        let p = Payload::from_f64s(&[1.0, 2.0, 3.0, 4.0]);
        let on_root = plan.split_opt(Some(&p));
        assert!(on_root.iter().all(Option::is_some));
        let off_root = plan.split_opt(None);
        assert!(off_root.iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "N_DUP must be at least 1")]
    fn zero_ndup_rejected() {
        ChunkPlan::new(8, 0);
    }
}
