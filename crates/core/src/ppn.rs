//! Multiple-PPN overlap support: per-kernel process activation.
//!
//! §III-B: "we advocate a mechanism where many processes are launched per
//! node and utilizing just the right number of these processes for each
//! stage of the code. At the beginning of the purification kernel,
//! processes that will be inactive call `MPI_Ibarrier`. Then these processes
//! use `MPI_Test` and `usleep` ... every 10 milliseconds. Processes that are
//! active perform the work ... and then call `MPI_Ibarrier` when they are
//! finished, in order to release the inactive processes."

use ovcomm_simnet::SimDur;

use crate::backend::{Communicator, RankHandle};

/// Which ranks participate in a kernel stage.
#[derive(Debug, Clone)]
pub enum StagePlan {
    /// The first `n` world ranks are active (uses fewer nodes, all full).
    FirstN(usize),
    /// The first `active_per_node` of every node's `ppn` ranks are active —
    /// the paper's per-kernel PPN selection: same node count, smaller PPN,
    /// surplus processes asleep.
    PerNode {
        /// Active processes per node.
        active_per_node: usize,
        /// Processes launched per node.
        ppn: usize,
    },
}

impl StagePlan {
    /// The first `active_ranks` world ranks are active.
    pub fn first_n(active_ranks: usize) -> StagePlan {
        assert!(active_ranks >= 1);
        StagePlan::FirstN(active_ranks)
    }

    /// `active_per_node` of each node's `ppn` ranks are active (natural
    /// placement: rank r lives on node r / ppn at local index r % ppn).
    pub fn per_node(active_per_node: usize, ppn: usize) -> StagePlan {
        assert!(active_per_node >= 1 && active_per_node <= ppn);
        StagePlan::PerNode {
            active_per_node,
            ppn,
        }
    }

    /// Active processes per node during the stage, if the plan keeps whole
    /// nodes partially awake (`PerNode`); `None` for `FirstN` (fewer nodes,
    /// each still fully packed).
    pub fn active_ppn(&self) -> Option<usize> {
        match *self {
            StagePlan::FirstN(_) => None,
            StagePlan::PerNode {
                active_per_node, ..
            } => Some(active_per_node),
        }
    }

    /// Is `rank` active?
    pub fn is_active(&self, rank: usize) -> bool {
        match *self {
            StagePlan::FirstN(n) => rank < n,
            StagePlan::PerNode {
                active_per_node,
                ppn,
            } => rank % ppn < active_per_node,
        }
    }
}

/// Run a kernel stage with per-stage PPN: active ranks execute `f`;
/// inactive ranks sleep-poll an `MPI_Ibarrier` with the profile's poll
/// period until the active ranks finish. Returns `Some(f's result)` on
/// active ranks, `None` on sleepers, plus the number of polls performed.
pub fn run_stage<R: RankHandle, T>(
    rc: &R,
    world: &R::Comm,
    plan: &StagePlan,
    f: impl FnOnce() -> T,
) -> (Option<T>, usize) {
    let poll: SimDur = rc.profile().sleep_poll;
    if plan.is_active(rc.rank()) {
        let out = f();
        // Release the sleepers.
        let req = world.ibarrier();
        world.wait(&req);
        (Some(out), 0)
    } else {
        let req = world.ibarrier();
        let mut polls = 0usize;
        while !world.test(&req) {
            rc.sleep(poll);
            polls += 1;
        }
        world.wait(&req);
        (None, polls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_plan_actives() {
        let p = StagePlan::first_n(3);
        assert!(p.is_active(0));
        assert!(p.is_active(2));
        assert!(!p.is_active(3));
    }

    #[test]
    fn per_node_plan_spreads_actives() {
        // 4 PPN, 2 active per node: local indices 0,1 active on every node.
        let p = StagePlan::per_node(2, 4);
        assert!(p.is_active(0));
        assert!(p.is_active(1));
        assert!(!p.is_active(2));
        assert!(!p.is_active(3));
        assert!(p.is_active(4));
        assert!(p.is_active(5));
        assert!(!p.is_active(7));
    }
}
