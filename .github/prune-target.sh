#!/usr/bin/env sh
# Swatinem/rust-cache-style size guard for the per-job target/ caches:
# drop per-commit incremental artifacts unconditionally, and drop the
# whole tree when it exceeds the budget — the next run rebuilds from the
# still-cached registry instead of uploading an ever-growing cache.
set -eu
budget_kb=$((4 * 1024 * 1024)) # 4 GiB
rm -rf target/*/incremental 2>/dev/null || true
size_kb=$(du -sk target 2>/dev/null | cut -f1)
echo "target/ is ${size_kb:-0} KiB (budget ${budget_kb} KiB)"
if [ "${size_kb:-0}" -gt "${budget_kb}" ]; then
  echo "over budget: pruning target/ before the cache save"
  rm -rf target
fi
