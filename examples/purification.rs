//! Density matrix purification end to end: builds a synthetic Hamiltonian,
//! runs canonical purification on a 2×2×2 process mesh through the
//! baseline and the optimized SymmSquareCube kernels, verifies both
//! converge to the same idempotent projector, and reports the kernels'
//! virtual-time performance.
//!
//! Run with: `cargo run --release --example purification`

use ovcomm::densemat::{exact_density, fock_like_spectrum, gemm, BlockGrid, Matrix};
use ovcomm::prelude::*;
use ovcomm::purify::{purify_rank, KernelChoice, PurifyConfig};

const N: usize = 60;
const NOCC: usize = 20;
const RANKS: usize = 8; // 2x2x2 mesh
const SEED: u64 = 2024;

fn drive(choice: KernelChoice) -> (Matrix, usize, f64) {
    let cfg = PurifyConfig {
        n: N,
        nocc: NOCC,
        tol: 1e-9,
        max_iter: 80,
        phantom: false,
        seed: SEED,
    };
    let out = run(
        SimConfig::natural(RANKS, 2, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let res = purify_rank(&rc, &cfg, choice);
            (
                res.iterations,
                res.kernel_flops_per_sec(N),
                res.d_block.map(|b| b.unwrap_real().clone().into_vec()),
                rc.rank(),
            )
        },
    )
    .expect("purification run");

    let p = 2;
    let grid = BlockGrid::new(N, p);
    let mut blocks = vec![Matrix::zeros(0, 0); p * p];
    let mut iterations = 0;
    let mut gflops = 0.0;
    for (iters, f, block, rank) in out.results {
        if let Some(v) = block {
            let (i, j) = (rank / p, rank % p);
            let (r, c) = grid.block_dims(i, j);
            blocks[i * p + j] = Matrix::from_vec(r, c, v);
            iterations = iters;
            gflops = f / 1e9;
        }
    }
    (grid.assemble(&blocks), iterations, gflops)
}

fn main() {
    let (d_base, it_base, gf_base) = drive(KernelChoice::Baseline);
    let (d_opt, it_opt, gf_opt) = drive(KernelChoice::Optimized { n_dup: 4 });

    // Verify: idempotent projector with the right trace, equal to the exact
    // density matrix built in the same eigenbasis.
    let d2 = gemm(&d_base, &d_base);
    let exact = exact_density(&fock_like_spectrum(N, NOCC), NOCC, SEED);
    println!("canonical purification, N = {N}, nocc = {NOCC}, 2x2x2 mesh:");
    println!(
        "  baseline kernel : {it_base} iterations, {gf_base:.1} GFlop/s (virtual), \
         idempotency err {:.2e}",
        d2.max_abs_diff(&d_base)
    );
    println!(
        "  optimized kernel: {it_opt} iterations, {gf_opt:.1} GFlop/s (virtual), \
         agrees with baseline to {:.2e}",
        d_opt.max_abs_diff(&d_base)
    );
    println!(
        "  distance to exact spectral projector: {:.2e}",
        d_base.max_abs_diff(&exact)
    );
    println!("  trace(D) = {:.6} (target {NOCC})", d_base.trace());
    assert!(d2.max_abs_diff(&d_base) < 1e-6);
    assert!(d_opt.max_abs_diff(&d_base) < 1e-8);
    assert!(d_base.max_abs_diff(&exact) < 1e-5);
}
