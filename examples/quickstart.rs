//! Quickstart: overlap a communication with another communication.
//!
//! Spins up a simulated 4-node cluster, broadcasts 8 MB once with a
//! blocking collective and once as four pipelined `MPI_Ibcast`s on
//! duplicated communicators (the paper's "nonblocking overlap" technique),
//! and prints both virtual times.
//!
//! Run with: `cargo run --release --example quickstart`

use ovcomm::prelude::*;

fn main() {
    let n = 8 << 20; // 8 MB

    // Case 1: one blocking broadcast on 4 nodes (1 process per node).
    let blocking = run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let world = rc.world();
            let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
            let _ = world.bcast(0, data, n);
        },
    )
    .expect("blocking run")
    .makespan;

    // Case 2: the same bytes as N_DUP = 4 chunked nonblocking broadcasts,
    // each on its own duplicated communicator, posted back-to-back so the
    // data transfer of one chunk overlaps the synchronization and protocol
    // overheads of the others.
    let overlapped = run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let world = rc.world();
            let comms = NDupComms::new(&world, 4);
            let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
            let _ = overlapped_bcast(&comms, 0, data.as_ref(), n);
        },
    )
    .expect("overlapped run")
    .makespan;

    println!("broadcast of 8 MB across 4 simulated nodes:");
    println!("  blocking MPI_Bcast          : {blocking}");
    println!("  N_DUP=4 overlapped Ibcasts  : {overlapped}");
    println!(
        "  speedup                     : {:.2}x",
        blocking.as_secs_f64() / overlapped.as_secs_f64()
    );
}
