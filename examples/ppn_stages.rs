//! Per-kernel PPN selection (§III-B): launch many processes per node and
//! use just the right number in each stage of the code, putting the rest to
//! sleep with the Ibarrier + MPI_Test + usleep mechanism.
//!
//! This models the paper's GTFock modification: Fock-matrix construction
//! wants all processes, but density-matrix purification may run best at a
//! different PPN — so the surplus processes sleep through that stage.
//!
//! Run with: `cargo run --release --example ppn_stages`

use ovcomm::prelude::*;

const NODES: usize = 4;
const PPN: usize = 4;

fn main() {
    let out = run(
        SimConfig::natural(NODES * PPN, PPN, MachineProfile::stampede2_skylake()),
        |rc: RankCtx| {
            let world = rc.world();
            let mut log: Vec<String> = Vec::new();

            // Stage 1 ("Fock build"): all 16 processes compute.
            let all = StagePlan::first_n(NODES * PPN);
            let (_, _) = run_stage(&rc, &world, &all, || {
                rc.advance(SimDur::from_millis(20));
            });
            log.push(format!("stage1 done at {}", rc.now()));

            // Stage 2 ("purification"): only 1 process per node is active
            // (the first 4 ranks under natural placement); the other 12
            // sleep-poll an MPI_Ibarrier every 10 ms. The active quartet's
            // communicator must be created *before* the stage — splits are
            // collective over the whole world, and the sleepers would never
            // join one issued from inside the stage.
            let one_per_node = StagePlan::first_n(NODES);
            let quartet = world.split(
                if one_per_node.is_active(rc.rank()) {
                    0
                } else {
                    -1
                },
                rc.rank() as u64,
            );
            let (result, polls) = run_stage(&rc, &world, &one_per_node, || {
                // The active quartet exchanges 4 MB all-around and computes.
                let sub = quartet
                    .as_ref()
                    .expect("active ranks have the quartet comm");
                let _ = sub.allreduce(Payload::Phantom(4 << 20));
                rc.advance(SimDur::from_millis(35));
                "worked"
            });
            log.push(format!(
                "stage2 done at {} ({})",
                rc.now(),
                match result {
                    Some(_) => "active".to_string(),
                    None => format!("slept, {polls} polls"),
                }
            ));

            // Stage 3: everyone again.
            let (_, _) = run_stage(&rc, &world, &all, || {
                rc.advance(SimDur::from_millis(10));
            });
            log.push(format!("stage3 done at {}", rc.now()));
            log
        },
    )
    .expect("staged run");

    println!("per-kernel PPN selection on {NODES} nodes x {PPN} PPN:");
    for rank in [0usize, 5] {
        println!("  rank {rank}:");
        for line in &out.results[rank] {
            println!("    {line}");
        }
    }
    println!("  makespan: {}", out.makespan);
    // Everyone leaves stage 3 together (within the final barrier's skew).
    assert!(out.makespan.as_secs_f64() > 0.065 && out.makespan.as_secs_f64() < 0.1);
}
