//! The paper's future work (§VI), working today: a block conjugate-gradient
//! solver whose simultaneous Gram-matrix reductions are overlapped with
//! each other. Solves an SPD system on a 3×3 process mesh, verifies the
//! solution, and shows the overlapped variant's timing at larger meshes.
//!
//! Run with: `cargo run --release --example linear_solver`

use ovcomm::densemat::{gemm, symmetric_with_spectrum, BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm::kernels::{block_cg, BlockCgConfig, CgComms, Mesh2D};
use ovcomm::prelude::*;

const N: usize = 48;
const S: usize = 4;
const P: usize = 3;
const SEED: u64 = 11;

fn spd(n: usize) -> Matrix {
    let eigs: Vec<f64> = (0..n).map(|i| 1.0 + 9.0 * i as f64 / n as f64).collect();
    symmetric_with_spectrum(&eigs, SEED)
}

fn rhs(n: usize, s: usize) -> Matrix {
    Matrix::from_fn(n, s, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0)
}

fn main() {
    let out = run(
        SimConfig::natural(P * P, 1, MachineProfile::stampede2_skylake()),
        |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, P);
            let grid = BlockGrid::new(N, P);
            let part = Partition1D::new(N, P);
            let a = BlockBuf::Real(grid.extract(&spd(N), mesh.i, mesh.j));
            let (st, l) = part.range(mesh.j);
            let b = BlockBuf::Real(rhs(N, S).submatrix(st, 0, l, S));
            let comms = CgComms::new(&mesh, 2);
            let cfg = BlockCgConfig {
                n: N,
                s: S,
                tol: 1e-11,
                max_iter: 100,
                overlap: true,
            };
            let res = block_cg(&rc, &mesh, &comms, &cfg, &a, &b);
            (
                mesh.i,
                mesh.j,
                res.iterations,
                res.converged,
                res.x_segment.unwrap_real().clone().into_vec(),
            )
        },
    )
    .expect("solver run");

    // Assemble X from row 0 and verify A·X = B.
    let part = Partition1D::new(N, P);
    let mut x = Matrix::zeros(N, S);
    let mut iters = 0;
    for (i, j, it, conv, seg) in out.results {
        assert!(conv, "solver must converge");
        if i == 0 {
            let (st, l) = part.range(j);
            x.set_submatrix(st, 0, &Matrix::from_vec(l, S, seg));
            iters = it;
        }
    }
    let a = spd(N);
    let b = rhs(N, S);
    let mut resid = gemm(&a, &x);
    resid.axpy(-1.0, &b);
    let rel = resid.frob_norm() / b.frob_norm();
    println!("block CG on a {P}x{P} mesh, N = {N}, s = {S} right-hand sides:");
    println!("  converged in {iters} iterations, true relative residual {rel:.2e}");
    println!("  virtual makespan: {}", out.makespan);
    assert!(rel < 1e-9);
    println!(
        "\n(the Gram reductions of each iteration run as concurrent nonblocking\n\
         collectives on duplicated communicators — see `blockcg_overlap` in the\n\
         bench crate for the scaling of that overlap across mesh sizes)"
    );
}
