//! The paper's motivating example (Figures 1–2): parallel matrix–vector
//! multiplication on a 4×4 process mesh, comparing Algorithm 1 (blocking
//! reduce + broadcast) with Algorithm 2 (N_DUP pipelined ireduce→ibcast),
//! verifying the results agree and printing the virtual-time speedup.
//!
//! Run with: `cargo run --release --example matvec_pipeline`

use ovcomm::core::pipelined_reduce_bcast;
use ovcomm::densemat::{BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm::kernels::{matvec_blocking, matvec_pipelined, MatvecInput, Mesh2D, VecBuf};
use ovcomm::prelude::*;

const P: usize = 4;
const N: usize = 4096;

fn drive(n_dup: Option<usize>) -> (Vec<f64>, f64) {
    let out = run(
        SimConfig::natural(P * P, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, P);
            let grid = BlockGrid::new(N, P);
            let part = Partition1D::new(N, P);
            // Deterministic test matrix and vector, built locally.
            let full = Matrix::from_fn(N, N, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
            let a = BlockBuf::Real(grid.extract(&full, mesh.i, mesh.j));
            let x_full: Vec<f64> = (0..N).map(|t| ((t % 29) as f64) * 0.1 - 1.0).collect();
            let (s, l) = part.range(mesh.j);
            let input = MatvecInput {
                n: N,
                a,
                x: VecBuf::Real(x_full[s..s + l].to_vec()),
            };
            rc.world().barrier();
            let t0 = rc.now();
            let y = match n_dup {
                None => matvec_blocking(&rc, &mesh, &input),
                Some(d) => {
                    let row_ndup = NDupComms::new(&mesh.row, d);
                    let col_ndup = NDupComms::new(&mesh.col, d);
                    matvec_pipelined(&rc, &mesh, &row_ndup, &col_ndup, &input)
                }
            };
            rc.world().barrier();
            let elapsed = (rc.now() - t0).as_secs_f64();
            let seg = match y {
                VecBuf::Real(v) => v,
                VecBuf::Phantom(_) => unreachable!(),
            };
            (mesh.i, mesh.j, seg, elapsed)
        },
    )
    .expect("matvec run");

    let part = Partition1D::new(N, P);
    let mut y = vec![0.0; N];
    let mut elapsed: f64 = 0.0;
    for (i, j, seg, t) in out.results {
        elapsed = elapsed.max(t);
        if i == 0 {
            let (s, l) = part.range(j);
            y[s..s + l].copy_from_slice(&seg[..l]);
        }
    }
    (y, elapsed)
}

fn main() {
    let (y1, t1) = drive(None);
    let (y2, t2) = drive(Some(4));

    // Verify against a locally computed reference.
    let full = Matrix::from_fn(N, N, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
    let x: Vec<f64> = (0..N).map(|t| ((t % 29) as f64) * 0.1 - 1.0).collect();
    let want = full.matvec(&x);
    let err1 = y1
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let err2 = y2
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);

    println!("y = A·x on a {P}x{P} process mesh, N = {N}:");
    println!("  Algorithm 1 (blocking)       : {t1:.6}s  (max err {err1:.2e})");
    println!("  Algorithm 2 (N_DUP=4 pipeline): {t2:.6}s  (max err {err2:.2e})");
    println!("  speedup                      : {:.2}x", t1 / t2);
    assert!(
        err1 < 1e-6 && err2 < 1e-6,
        "results must match the reference"
    );

    // The communication phases in the bandwidth-bound regime (big vector
    // segments, phantom data). Matvec compute grows as N²/p² while its
    // communication grows as N/p, so to see the communication pipeline —
    // the part Figures 1-2 illustrate — we time the reduce+broadcast phase
    // alone.
    let big = 32 << 20; // 32M elements → 64 MB segments per mesh row
    let tb1 = timed_comm_phase(big, None);
    let tb2 = timed_comm_phase(big, Some(4));
    println!(
        "communication phase only, N = {big} ({} MB segments):",
        big / P * 8 / (1 << 20)
    );
    println!("  Algorithm 1 (blocking reduce+bcast)   : {tb1:.6}s");
    println!("  Algorithm 2 (N_DUP=4 ireduce->ibcast) : {tb2:.6}s");
    println!(
        "  speedup                               : {:.2}x",
        tb1 / tb2
    );
}

/// Time just the reduce+broadcast phase of the two algorithms with phantom
/// segments of an N-element vector on the mesh.
fn timed_comm_phase(n: usize, n_dup: Option<usize>) -> f64 {
    let out = run(
        SimConfig::natural(P * P, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, P);
            let part = Partition1D::new(n, P);
            let contrib = Payload::Phantom(part.len(mesh.i) * 8);
            let bcast_len = part.len(mesh.j) * 8;
            rc.world().barrier();
            let t0 = rc.now();
            match n_dup {
                None => {
                    let reduced = mesh.row.reduce(mesh.i, contrib);
                    let data = (mesh.i == mesh.j).then(|| reduced.unwrap());
                    let _ = mesh.col.bcast(mesh.j, data, bcast_len);
                }
                Some(d) => {
                    let row_ndup = NDupComms::new(&mesh.row, d);
                    let col_ndup = NDupComms::new(&mesh.col, d);
                    let _ = pipelined_reduce_bcast(
                        &row_ndup, mesh.i, &col_ndup, mesh.j, &contrib, bcast_len,
                    );
                }
            }
            rc.world().barrier();
            (rc.now() - t0).as_secs_f64()
        },
    )
    .expect("phantom comm-phase run");
    out.results.into_iter().fold(0.0, f64::max)
}
