//! Choosing N_DUP automatically (§III-A): measure the effective-bandwidth
//! curve with the simulator's micro-benchmark, derive the threshold n_t,
//! and let the tuner pick N_DUP per message size — then verify the picks
//! against brute force.
//!
//! Run with: `cargo run --release --example autotune`

use ovcomm::core::{overlapped_bcast, AutoTuner, MeasuredCurve, NDupComms};
use ovcomm::prelude::*;

/// Measure the blocking-broadcast effective bandwidth at `msg` bytes on 4
/// nodes (volume-normalized, like the paper's Fig. 5).
fn measure_bcast_bw(msg: usize) -> f64 {
    let t = run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let w = rc.world();
            let data = (rc.rank() == 0).then_some(Payload::Phantom(msg));
            let _ = w.bcast(0, data, msg);
        },
    )
    .expect("bandwidth probe")
    .makespan
    .as_secs_f64();
    2.0 * 3.0 / 4.0 * msg as f64 / t
}

/// Virtual time of an N_DUP-overlapped broadcast of `msg` bytes.
fn overlapped_time(msg: usize, n_dup: usize) -> f64 {
    run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let w = rc.world();
            let comms = NDupComms::new(&w, n_dup);
            let data = (rc.rank() == 0).then_some(Payload::Phantom(msg));
            let _ = overlapped_bcast(&comms, 0, data.as_ref(), msg);
        },
    )
    .expect("overlap probe")
    .makespan
    .as_secs_f64()
}

fn main() {
    // Step 1: probe the curve (once per machine, the paper says).
    let sizes = [
        4 * 1024usize,
        16 * 1024,
        64 * 1024,
        256 * 1024,
        1 << 20,
        4 << 20,
        16 << 20,
    ];
    let samples: Vec<(usize, f64)> = sizes.iter().map(|&n| (n, measure_bcast_bw(n))).collect();
    println!("measured broadcast bandwidth curve (4 nodes):");
    for (n, bw) in &samples {
        println!("  {:>9} B : {:>8.0} MB/s", n, bw / 1e6);
    }
    let tuner = AutoTuner::new(MeasuredCurve::new(samples), 8);
    println!(
        "\nderived threshold n_t = {} KB (paper: usually 16 KB <= n_t <= 1 MB)",
        tuner.threshold() / 1024
    );

    // Step 2: ask the tuner, then check its pick against brute force.
    // The threshold rule is meant for messages at/above n_t; below it the
    // paper notes chunking "is still possible and likely to accelerate
    // communications" — so the conservative pick may leave speed on the
    // table there, and we only assert agreement in the rule's regime.
    println!(
        "\n{:>9}  {:>6}  {:>10}  {:>12}  {:>12}",
        "message", "tuned", "brute best", "t(tuned)", "t(brute)"
    );
    for msg in [64 * 1024usize, 1 << 20, 8 << 20, 32 << 20] {
        let pick = tuner.n_dup_for(msg);
        let brute = (1..=8)
            .min_by(|&a, &b| {
                overlapped_time(msg, a)
                    .partial_cmp(&overlapped_time(msg, b))
                    .unwrap()
            })
            .unwrap();
        let t_pick = overlapped_time(msg, pick);
        let t_brute = overlapped_time(msg, brute);
        println!(
            "{:>9}  {:>6}  {:>10}  {:>10.1}us  {:>10.1}us",
            msg,
            pick,
            brute,
            t_pick * 1e6,
            t_brute * 1e6
        );
        // Safety property of the conservative rule: the tuned pick never
        // loses to not chunking at all.
        let t_unchunked = overlapped_time(msg, 1);
        assert!(
            t_pick <= t_unchunked * 1.02,
            "tuned pick {pick} ({t_pick:.6}s) must not lose to N_DUP=1 ({t_unchunked:.6}s)"
        );
    }
    println!(
        "\n(the conservative threshold rule never loses to not chunking; the brute-force \
         column shows that in this simulator — with its ideal asynchronous progress — \
         aggressive chunking can pay even below n_t, as the paper itself anticipates)"
    );
}
